#!/usr/bin/env python3
"""Gate CI on perf regressions against the committed bench baseline.

``BENCH_engine.json`` is a CI artifact, regenerated every run and never
committed; ``BENCH_baseline.json`` is its committed anchor — one known-good
trajectory of the same smoke commands, refreshed deliberately whenever the
engine's cost profile legitimately moves.  This script compares the fresh
trajectory against the anchor:

* Entries match on their *workload signature*, not their position —
  a fleet-sweep entry matches on (figure key, fleet size, horizon,
  registry scale), a stream-replay entry on (spec, chunk epochs), a
  calibrate entry on (mode, profile, parameter) — so reordering or
  adding smoke steps never miscompares.
* The baseline time for a signature is the *minimum* over its matching
  baseline entries: the anchor is "the engine has gone this fast", which
  a noisy CI runner should only beat, never trail by more than the
  allowed factor.
* A fresh entry slower than ``--factor`` (default 1.3x) times its
  baseline fails the gate.  Fresh entries with no baseline match are
  reported and skipped — new smoke steps should not fail CI until a
  baseline for them is committed.

Usage:
    python tools/check_bench_regression.py \
        --baseline BENCH_baseline.json --fresh BENCH_engine.json [--factor 1.3]

Exit codes: 0 clean (or nothing comparable), 1 regression, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple

#: Sources the gate understands; anything else (pytest-benchmark runs,
#: figure-runner checks) is wall-clock dominated by shared-cache warmup
#: and too noisy to gate on.
GATED_SOURCES = ("fleet-sweep", "stream-replay", "calibrate")

Signature = Tuple[Any, ...]


def _load_runs(path: Path) -> List[Dict[str, Any]]:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise SystemExit(f"cannot read {path}: {error}")
    except ValueError as error:
        raise SystemExit(f"{path} is not valid JSON: {error}")
    if not isinstance(document, dict) or not isinstance(document.get("runs"), list):
        raise SystemExit(f"{path} is not a benchlog trajectory (missing 'runs')")
    return [run for run in document["runs"] if isinstance(run, dict)]


def _signatures(run: Dict[str, Any]) -> Iterator[Tuple[Signature, float]]:
    """Yield one (signature, seconds) per figure entry of a gated run."""
    source = run.get("source")
    if source not in GATED_SOURCES:
        return
    figures = run.get("figures")
    if not isinstance(figures, dict):
        return
    for figure, seconds in figures.items():
        if not isinstance(seconds, (int, float)):
            continue
        if source == "fleet-sweep":
            key: Signature = (
                source,
                figure,
                run.get("fleet_size"),
                run.get("horizon_seconds"),
                run.get("registry_scale"),
            )
        elif source == "stream-replay":
            key = (source, figure, run.get("spec"), run.get("chunk_epochs"))
        else:  # calibrate
            key = (
                source,
                figure,
                run.get("mode"),
                run.get("profile"),
                run.get("parameter"),
            )
        yield key, float(seconds)


def _describe(signature: Signature) -> str:
    source, figure = signature[0], signature[1]
    detail = ", ".join(str(part) for part in signature[2:] if part is not None)
    return f"{source}/{figure}" + (f" ({detail})" if detail else "")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when fresh bench entries regress vs the committed baseline"
    )
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--fresh", required=True, type=Path)
    parser.add_argument(
        "--factor",
        type=float,
        default=1.3,
        help="fail when fresh > factor * baseline (default: 1.3)",
    )
    args = parser.parse_args(argv)
    if args.factor <= 1.0:
        print("--factor must be > 1.0", file=sys.stderr)
        return 2

    baseline_best: Dict[Signature, float] = {}
    for run in _load_runs(args.baseline):
        for signature, seconds in _signatures(run):
            best = baseline_best.get(signature)
            if best is None or seconds < best:
                baseline_best[signature] = seconds

    fresh: List[Tuple[Signature, float]] = []
    for run in _load_runs(args.fresh):
        fresh.extend(_signatures(run))

    if not fresh:
        print(
            f"no gated entries ({', '.join(GATED_SOURCES)}) in {args.fresh}; "
            "nothing to compare"
        )
        return 0

    failures = []
    compared = 0
    for signature, seconds in fresh:
        best = baseline_best.get(signature)
        if best is None:
            print(f"SKIP {_describe(signature)}: no baseline entry (new smoke step?)")
            continue
        compared += 1
        ratio = seconds / best if best > 0 else float("inf")
        verdict = "FAIL" if ratio > args.factor else "ok"
        print(
            f"{verdict:4s} {_describe(signature)}: {seconds:.3f}s vs baseline "
            f"{best:.3f}s ({ratio:.2f}x, limit {args.factor:g}x)"
        )
        if ratio > args.factor:
            failures.append((signature, seconds, best, ratio))

    if failures:
        print(
            f"\n{len(failures)} of {compared} compared entr"
            f"{'y' if compared == 1 else 'ies'} regressed beyond "
            f"{args.factor:g}x; refresh BENCH_baseline.json only if the "
            "slowdown is intended",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {compared} compared entries within {args.factor:g}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
