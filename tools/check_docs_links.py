#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans markdown files for inline links/images (``[text](target)``) and
verifies that every *relative* target exists on disk, resolved against the
linking file's directory.  External schemes (http/https/mailto) and
pure-fragment links (``#anchor``) are skipped; a ``#fragment`` suffix on a
file target is stripped before the existence check.  Same-file heading
anchors are validated against the file's ATX headings.

Usage (repo root is the default scan set)::

    python tools/check_docs_links.py [path ...]

Exits 1 listing every broken link; 0 when all resolve.  Run by the CI
``docs`` job and by ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown link or image: [text](target) — target without spaces.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

#: Default scan set, relative to the repo root.
DEFAULT_TARGETS = ("README.md", "docs")


def _anchor_of(heading: str) -> str:
    """GitHub-style slug of one heading line."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def markdown_files(targets: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.md")))
        elif target.suffix.lower() == ".md":
            files.append(target)
    return files


def check_file(path: Path) -> List[Tuple[str, str]]:
    """Broken links in one file as (target, reason) pairs."""
    text = path.read_text(encoding="utf-8")
    anchors = {_anchor_of(h) for h in _HEADING.findall(text)}
    broken: List[Tuple[str, str]] = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_SCHEMES):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                broken.append((target, "no such heading in this file"))
            continue
        file_part = target.split("#", 1)[0]
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            broken.append((target, f"no such file: {resolved}"))
    return broken


def main(argv: List[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    targets = [Path(arg) for arg in argv] or [root / t for t in DEFAULT_TARGETS]
    files = markdown_files(targets)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        for target, reason in check_file(path):
            failures += 1
            print(f"{path}: broken link {target!r} ({reason})", file=sys.stderr)
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"{len(files)} markdown file(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
