"""Setup shim.

The project metadata lives in ``pyproject.toml``.  This file exists so the
package can be installed editable (``pip install -e .``) on environments
whose setuptools/pip combination cannot build PEP 660 editable wheels
offline (no ``wheel`` package available).
"""

from setuptools import setup

setup()
