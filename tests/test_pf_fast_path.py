"""Unit tests for the engine fast path's penalty-signature cache and stats."""

import pytest

from repro.hardware.contention import SharedResourcePenalty
from repro.hardware.cpu import CPU
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.engine import (
    EngineConfig,
    PenaltySignatureCache,
    SimulationEngine,
)
from repro.platform.scheduler import DedicatedCoreScheduler
from repro.workloads.registry import default_registry


def _penalty(workload_id: int, hit: float = 0.5) -> SharedResourcePenalty:
    return SharedResourcePenalty(
        workload_id=workload_id,
        l3_hit_fraction=hit,
        l3_hit_latency_cycles=40.0,
        memory_latency_cycles=220.0,
        ring_utilization=0.1,
        bandwidth_utilization=0.2,
        private_inflation=1.01,
    )


_SIG_A = (3, ((0, 1, 1), (1, 0, 1)))
_SIG_B = (3, ((0, 2, 1), (1, 0, 1)))  # one invocation crossed a phase boundary


class TestPenaltySignatureCache:
    def test_miss_on_empty_cache(self):
        cache = PenaltySignatureCache()
        assert cache.lookup(_SIG_A) is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_hit_requires_convergence(self):
        cache = PenaltySignatureCache()
        penalties = {0: _penalty(0), 1: _penalty(1)}
        cache.store(_SIG_A, penalties, converged=False)
        assert cache.lookup(_SIG_A) is None
        cache.store(_SIG_A, penalties, converged=True)
        assert cache.lookup(_SIG_A) is penalties
        assert cache.hits == 1

    def test_signature_mismatch_misses(self):
        cache = PenaltySignatureCache()
        cache.store(_SIG_A, {0: _penalty(0)}, converged=True)
        assert cache.lookup(_SIG_B) is None

    def test_store_overwrites_previous_entry(self):
        # The cache deliberately keeps one entry: an entry is only provably
        # reusable when the immediately preceding epoch produced it.
        cache = PenaltySignatureCache()
        cache.store(_SIG_A, {0: _penalty(0)}, converged=True)
        cache.store(_SIG_B, {0: _penalty(0, hit=0.4)}, converged=True)
        assert cache.lookup(_SIG_A) is None
        assert cache.lookup(_SIG_B) is not None

    def test_invalidate(self):
        cache = PenaltySignatureCache()
        cache.store(_SIG_A, {0: _penalty(0)}, converged=True)
        cache.invalidate()
        assert not cache.converged
        assert cache.lookup(_SIG_A) is None


class TestEngineFastPathStats:
    def _run(self, fast_path: bool):
        engine = SimulationEngine(
            CPU(CASCADE_LAKE_5218),
            DedicatedCoreScheduler(),
            config=EngineConfig(fast_path=fast_path),
        )
        # Full-length phases (hundreds of epochs each) so the steady
        # stretches are long enough for skip-ahead to engage.
        spec = default_registry().get("auth-py")
        invocation = engine.submit(spec)
        assert engine.run_until(lambda e: invocation.is_completed, max_seconds=30.0)
        return engine, invocation

    def test_solo_run_uses_spans(self):
        engine, _ = self._run(fast_path=True)
        stats = engine.fast_path_stats
        assert stats.spans > 0
        assert stats.span_epochs > 0
        # Most epochs of a steady solo run should be skip-ahead epochs.
        assert stats.span_epochs > stats.stepped_epochs

    def test_disabled_fast_path_never_spans(self):
        engine, _ = self._run(fast_path=False)
        stats = engine.fast_path_stats
        assert stats.spans == 0
        assert stats.span_epochs == 0
        assert stats.fixed_point_reuses == 0

    def test_fast_and_slow_runs_agree_exactly(self):
        fast_engine, fast_inv = self._run(fast_path=True)
        slow_engine, slow_inv = self._run(fast_path=False)
        assert fast_inv.finish_time == slow_inv.finish_time
        assert fast_inv.counters.snapshot() == slow_inv.counters.snapshot()
        assert (
            fast_engine.cpu.global_counters.snapshot()
            == slow_engine.cpu.global_counters.snapshot()
        )

    def test_fast_path_is_faster_in_epoch_work(self):
        engine, _ = self._run(fast_path=True)
        stats = engine.fast_path_stats
        # The fixed point must have been evaluated far fewer times than the
        # number of simulated epochs.
        assert stats.fixed_point_evaluations < stats.total_epochs / 2


class TestEngineConfigFlag:
    def test_fast_path_default_on(self):
        assert EngineConfig().fast_path is True

    def test_validation_unchanged(self):
        with pytest.raises(ValueError):
            EngineConfig(epoch_seconds=0.0)
        with pytest.raises(ValueError):
            EngineConfig(fixed_point_iterations=0)
