"""Shared fixtures.

Expensive artefacts (solo oracle, calibration, price evaluations) are
session-scoped and deliberately small: function bodies are scaled down and
few stress levels are swept, which keeps the whole suite fast while still
exercising every code path end to end.
"""

from __future__ import annotations

import pytest

from repro.core.calibration import CalibrationScenario, Calibrator
from repro.core.estimator import CongestionEstimator
from repro.experiments.config import ExperimentConfig, one_per_core
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.engine import EngineConfig
from repro.platform.oracle import SoloOracle
from repro.workloads.registry import default_registry


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Point the on-disk cache at a per-session temp dir.

    The unit suite must never validate against artifacts a previous code
    version persisted in the user-level cache (a numerics change without a
    ``CACHE_VERSION`` bump would otherwise pass locally against stale
    data), nor pollute that cache with scaled-down test artifacts.
    Individual tests still override ``REPRO_CACHE_DIR``/``REPRO_DISK_CACHE``
    with ``monkeypatch`` where they test the cache itself.
    """
    import os

    cache_dir = tmp_path_factory.mktemp("repro-disk-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def machine():
    """The primary testbed machine description."""
    return CASCADE_LAKE_5218


@pytest.fixture(scope="session")
def registry():
    """The full Table-1 registry."""
    return default_registry()


@pytest.fixture(scope="session")
def small_registry(registry):
    """A body-scaled registry used wherever simulations run."""
    return registry.scaled(0.25)


@pytest.fixture(scope="session")
def oracle(machine):
    """A solo oracle shared across the suite (profiles are cached)."""
    return SoloOracle(machine)


@pytest.fixture(scope="session")
def small_oracle(machine):
    """A solo oracle bound to nothing in particular; used with scaled specs."""
    return SoloOracle(machine)


@pytest.fixture(scope="session")
def small_calibration(machine, small_registry, small_oracle):
    """A cheap dedicated-core calibration shared by estimator/pricing tests."""
    calibrator = Calibrator(
        machine,
        small_registry,
        CalibrationScenario.dedicated(),
        stress_levels=(4, 12),
        oracle=small_oracle,
        engine_config=EngineConfig(),
    )
    return calibrator.calibrate()


@pytest.fixture(scope="session")
def small_estimator(small_calibration):
    return CongestionEstimator(small_calibration)


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """A small one-function-per-core evaluation configuration."""
    return one_per_core(
        name="test-one-per-core",
        total_functions=18,
        eval_physical_cores=18,
        repetitions=1,
        registry_scale=0.25,
        calibration_levels=(4, 12),
    )
