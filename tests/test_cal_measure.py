"""The measured stream: determinism, backend agreement, drift hooks."""

from __future__ import annotations

import pytest

from repro.calibrate import (
    DriftEvent,
    DriftInjector,
    MeasureConfig,
    measure_series,
    perturbed,
    profile_by_name,
)
from repro.hardware.contention import ContentionParameters
from repro.hardware.cpu import CPU
from repro.platform.batch.vector_engine import VectorEngine, VectorEngineConfig
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.scheduler import LeastOccupancyScheduler
from repro.workloads.registry import default_registry
from repro.workloads.synthetic import WorkloadMixer

PATH = "contention.memory_queueing_coefficient"


def _rel(a, b):
    return abs(a - b) / max(abs(b), 1e-12)


@pytest.fixture(scope="module")
def profile():
    return profile_by_name("sg2042-like")


@pytest.fixture(scope="module")
def config():
    return MeasureConfig()


def test_measure_series_is_deterministic(profile, config):
    one = measure_series(profile, config, 24)
    two = measure_series(profile, config, 24)
    assert one == two
    assert len(one) == 24
    # shared-stall fractions live in [0, 1] and the window is non-trivial
    assert all(0.0 <= v <= 1.0 for v in one)
    assert one[-1] > 0.0


def test_same_parameters_reproduce_bit_for_bit(profile, config):
    """A candidate matching the truth coefficients scores exactly zero."""
    truth = measure_series(perturbed(profile, PATH, 1.3), config, 24)
    replay = measure_series(perturbed(profile, PATH, 1.3), config, 24)
    assert truth == replay  # bit-identical, not approximately equal


def test_wrong_parameters_move_the_series(profile, config):
    nominal = measure_series(profile, config, 24)
    drifted = measure_series(perturbed(profile, PATH, 1.3), config, 24)
    assert nominal != drifted


def test_vector_backend_agrees_with_scalar(profile, config):
    scalar = measure_series(profile, config, 24, backend="scalar")
    vector = measure_series(profile, config, 24, backend="vector")
    assert len(scalar) == len(vector)
    for got, expected in zip(vector, scalar):
        assert _rel(got, expected) < 1e-9


def test_backends_segment_mid_window_drift_identically(profile, config):
    injector = DriftInjector(
        profile, (DriftEvent(start_seconds=0.012, path=PATH, scale=1.5),)
    )
    scalar = measure_series(profile, config, 24, drift=injector)
    vector = measure_series(profile, config, 24, drift=injector, backend="vector")
    undrifted = measure_series(profile, config, 24)
    for got, expected in zip(vector, scalar):
        assert _rel(got, expected) < 1e-9
    # the drift boundary at epoch 12 is where the series first diverge
    assert scalar[:12] == undrifted[:12]
    assert scalar[12:] != undrifted[12:]


def test_window_start_places_the_drift_clock(profile, config):
    injector = DriftInjector(
        profile, (DriftEvent(start_seconds=0.012, path=PATH, scale=1.5),)
    )
    # a window starting after the event sees drifted hardware throughout
    late = measure_series(
        profile, config, 24, start_seconds=0.1, drift=injector
    )
    drifted_profile = injector.profile_at(0.1)
    assert late == measure_series(drifted_profile, config, 24)


def test_measure_config_validation(profile):
    with pytest.raises(ValueError):
        MeasureConfig(cores=0)
    with pytest.raises(ValueError):
        MeasureConfig(colocation=0)
    with pytest.raises(ValueError):
        MeasureConfig(epoch_seconds=0.0)
    with pytest.raises(ValueError, match="backend"):
        measure_series(profile, MeasureConfig(), 8, backend="quantum")
    with pytest.raises(ValueError):
        measure_series(profile, MeasureConfig(), 0)
    with pytest.raises(ValueError, match="cores"):
        measure_series(profile, MeasureConfig(cores=64), 8)


def test_recalibrated_engines_stay_bit_exact():
    """Swapped-in coefficients keep vector and scalar in lockstep.

    The repo-wide correctness bar: under recalibrated parameters applied
    mid-run through ``set_contention_parameters``, the vector engine's
    machine counters still match the scalar engine's exactly.
    """
    profile = profile_by_name("sg2042-like")
    recalibrated = ContentionParameters(memory_queueing_coefficient=0.875)
    registry = default_registry().scaled(0.05)
    pool = registry.all()
    epoch = 1e-3

    scalar = SimulationEngine(
        CPU(profile.machine, contention_parameters=profile.contention),
        LeastOccupancyScheduler(),
        config=EngineConfig(epoch_seconds=epoch, record_events=False),
    )
    vector = VectorEngine(
        profile.machine,
        machines=1,
        config=VectorEngineConfig(epoch_seconds=epoch),
        contention_parameters=profile.contention,
        materialize_handles=False,
    )
    for engine, is_vector in ((scalar, False), (vector, True)):
        mixer = WorkloadMixer(pool, seed=7)
        for thread in range(4):
            for _ in range(2):
                if is_vector:
                    engine.submit(mixer.next(), machine=0, thread_id=thread)
                else:
                    engine.submit(mixer.next(), thread_id=thread)
    for _ in range(10):
        scalar.run_epoch()
        vector.run_epoch()
    scalar.set_contention_parameters(recalibrated)
    vector.set_contention_parameters(recalibrated)
    for _ in range(10):
        scalar.run_epoch()
        vector.run_epoch()

    got = vector.machine_counters(0)
    expected = scalar.cpu.global_counters
    assert got.instructions == pytest.approx(expected.instructions, rel=1e-12)
    assert got.cycles == pytest.approx(expected.cycles, rel=1e-12)
    assert got.stall_cycles_l2_miss == pytest.approx(
        expected.stall_cycles_l2_miss, rel=1e-12
    )
