"""Integration tests: characterization, calibration-backed figure modules and
end-to-end pricing on a small one-function-per-core environment.

These tests exercise the full stack (workloads → platform → calibration →
estimator → pricing → experiment harness) on deliberately small
configurations so the whole file runs in well under a minute.
"""

import pytest

from repro.experiments import (
    fig02_corun_slowdown,
    fig03_time_split,
    fig05_tables,
    fig07_probe_timeline,
    fig08_reference_mbgen,
    fig09_regression,
    fig10_interpolation,
    fig11_price_26,
    fig12_price_errors,
    fig13_discount_lines,
)
from repro.experiments.harness import (
    price_evaluation_cached,
    run_characterization,
)


@pytest.fixture(scope="module")
def characterization(quick_config):
    return run_characterization(quick_config)


@pytest.fixture(scope="module")
def price_result(quick_config):
    return price_evaluation_cached(quick_config)


class TestCharacterization:
    def test_covers_all_benchmarks(self, characterization, registry):
        assert len(characterization.functions) == len(registry)

    def test_corunning_slows_functions_down(self, characterization):
        # Paper Figure 2: a noticeable geometric-mean slowdown, nothing absurd.
        assert 1.02 < characterization.gmean_total_slowdown < 1.4
        assert characterization.max_total_slowdown < 2.0

    def test_shared_time_far_more_sensitive_than_private(self, characterization):
        # Paper Figure 3: T_shared inflates by multiples, T_private by a few %.
        assert characterization.gmean_shared_slowdown > 1.5
        assert 1.0 <= characterization.gmean_private_slowdown < 1.1
        assert (
            characterization.gmean_shared_slowdown
            > characterization.gmean_private_slowdown * 1.3
        )

    def test_compute_bound_functions_least_affected(self, characterization):
        by_function = {f.function: f for f in characterization.functions}
        assert by_function["float-py"].total_slowdown < characterization.gmean_total_slowdown
        assert by_function["float-py"].solo_shared_fraction < 0.1


class TestFigure2And3Modules:
    def test_fig02_rows(self, quick_config):
        result = fig02_corun_slowdown.run(quick_config)
        assert result.rows[-1]["function"] == "gmean"
        assert result.summary["gmean_slowdown"] > 1.0

    def test_fig03_rows(self, quick_config):
        result = fig03_time_split.run(quick_config)
        assert result.summary["gmean_shared_slowdown"] > result.summary["gmean_private_slowdown"]


class TestCalibrationBackedFigures:
    def test_fig05_tables_populated(self, quick_config):
        result = fig05_tables.run(quick_config)
        assert result.summary["congestion_entries"] == 2 * 2 * 3  # generators x levels x languages
        assert result.summary["performance_entries"] == 2 * 2

    def test_fig08_reference_slowdowns(self, quick_config):
        result = fig08_reference_mbgen.run(quick_config)
        functions = [row["function"] for row in result.rows]
        assert "gmean" in functions
        assert "start-py" in functions
        assert result.summary["gmean_total_slowdown"] > 1.0

    def test_fig09_regressions_have_good_fit(self, quick_config):
        result = fig09_regression.run(quick_config)
        r2_values = [v for k, v in result.summary.items() if "_r2_" in k]
        assert r2_values
        assert all(value > 0.5 for value in r2_values)

    def test_fig10_interpolation_blends_between_generators(self, quick_config):
        result = fig10_interpolation.run(quick_config)
        discounts = [row["discount"] for row in result.rows]
        weights = [row["mb_weight"] for row in result.rows]
        # The MB-likeness weight grows monotonically with observed L3 misses
        # and the blended discount always stays between the two extremes.
        assert weights == sorted(weights)
        assert weights[0] == pytest.approx(0.0, abs=1e-9)
        assert weights[-1] == pytest.approx(1.0, abs=1e-9)
        assert all(0.0 <= d < 0.6 for d in discounts)
        assert result.summary["mb_expected_l3_misses"] > result.summary["ct_expected_l3_misses"]

    def test_fig07_probe_timeline(self, quick_config):
        result = fig07_probe_timeline.run(quick_config)
        assert result.summary["probes"] >= 4
        assert result.summary["max_estimated_slowdown"] >= result.summary["min_estimated_slowdown"]
        times = [row["time_s"] for row in result.rows]
        assert times == sorted(times)


class TestPriceEvaluation:
    def test_prices_ordered_commercial_litmus_ideal(self, price_result):
        for row in price_result.rows:
            assert 0.5 < row.litmus_normalized_price <= 1.0 + 1e-9
            assert 0.5 < row.ideal_normalized_price <= 1.0 + 1e-9

    def test_average_discounts_are_close(self, price_result):
        # The headline property: Litmus tracks the ideal discount closely.
        assert abs(price_result.discount_gap) < 0.05
        assert price_result.average_litmus_discount > 0.0
        assert price_result.average_ideal_discount > 0.0

    def test_per_function_errors_are_bounded(self, price_result):
        assert price_result.max_abs_error < 0.12
        assert price_result.abs_error_geomean < 0.06

    def test_compute_bound_functions_overcompensated(self, price_result):
        # float-py barely slows down yet receives the system-wide discount,
        # so its Litmus price should undercut its ideal price (paper Sec. 7.1).
        row = price_result.row_for("float-py")
        assert row.litmus_normalized_price <= row.ideal_normalized_price + 0.01

    def test_row_lookup_raises_for_unknown_function(self, price_result):
        with pytest.raises(KeyError):
            price_result.row_for("unknown-fn")

    def test_cache_returns_same_object(self, quick_config):
        assert price_evaluation_cached(quick_config) is price_evaluation_cached(quick_config)


class TestPriceFigureModules:
    def test_fig11_summary(self, quick_config):
        result = fig11_price_26.run(quick_config)
        assert result.rows[-1]["function"] == "gmean"
        assert 0.0 < result.summary["average_litmus_discount"] < 0.5

    def test_fig12_errors(self, quick_config):
        result = fig12_price_errors.run(quick_config)
        assert result.summary["max_abs_error"] < 0.15
        assert len(result.rows) == 15  # 14 test functions + abs geomean row

    def test_fig13_rates(self, quick_config):
        result = fig13_discount_lines.run(quick_config)
        assert 0.5 < result.summary["gmean_private_rate"] <= 1.0
        assert 0.0 < result.summary["gmean_shared_rate"] <= 1.0
        # Shared resources are discounted more heavily than private ones.
        assert result.summary["gmean_shared_rate"] < result.summary["gmean_private_rate"]
