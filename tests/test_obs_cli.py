"""End-to-end obs tooling: one run → one JSONL → summarize/tail/export.

Also pins the two non-negotiables of the observability layer: telemetry
is bit-exact-neutral (tracing on vs off changes no simulated number) and
self-accounted overhead stays under the 5% budget.
"""

from __future__ import annotations

import json
import queue

import pytest

from repro.cli import main

TINY_SWEEP = [
    "sweep",
    "--machines",
    "1",
    "--colocation",
    "2",
    "--horizon",
    "0.05",
    "--registry-scale",
    "0.05",
    "--no-bench",
]


@pytest.fixture(scope="module")
def sweep_jsonl(tmp_path_factory):
    """One tiny instrumented sweep, shared by the read-side tests."""
    path = tmp_path_factory.mktemp("obs") / "sweep.jsonl"
    code = main(TINY_SWEEP + ["--metrics-out", str(path), "--series-budget", "64"])
    assert code == 0
    assert path.exists()
    return path


class TestObsSummarize:
    def test_human_summary(self, sweep_jsonl, capsys):
        code = main(["obs", "summarize", str(sweep_jsonl)])
        out = capsys.readouterr().out
        assert code == 0
        assert "records" in out
        assert "sweep" in out  # root phase appears in the breakdown
        assert "observability overhead" in out

    def test_json_summary(self, sweep_jsonl, capsys):
        code = main(["obs", "summarize", str(sweep_jsonl), "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["spans"] >= 2  # root + inline shard span
        assert summary["series"]["points"] >= 1
        assert len(summary["trace_ids"]) == 1
        assert {"sweep", "shard"} <= set(summary["phases"])
        assert summary["epochs"] >= 1
        assert 0.0 <= summary["obs_overhead_fraction"] < 0.05

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["obs", "summarize", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_top_spans_ranked_by_duration(self, sweep_jsonl, capsys):
        code = main(["obs", "summarize", str(sweep_jsonl), "--json", "--top", "3"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        top = summary["top_spans"]
        assert 1 <= len(top) <= 3
        durations = [span["duration_seconds"] for span in top]
        assert durations == sorted(durations, reverse=True)


class TestObsTail:
    def test_no_follow_renders_every_kind(self, sweep_jsonl, capsys):
        code = main(["obs", "tail", "--no-follow", str(sweep_jsonl)])
        out = capsys.readouterr().out
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == len(sweep_jsonl.read_text().splitlines())
        assert any("[span]" in line for line in lines)
        assert any("[series]" in line for line in lines)
        assert any("[metrics]" in line for line in lines)  # snapshots


class TestObsExportTrace:
    def test_chrome_trace_export(self, sweep_jsonl, capsys):
        out_path = sweep_jsonl.parent / "sweep.trace.json"
        code = main(
            ["obs", "export-trace", str(sweep_jsonl), "--out", str(out_path)]
        )
        assert code == 0
        assert "perfetto" in capsys.readouterr().out
        trace = json.loads(out_path.read_text(encoding="utf-8"))
        events = trace["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        counters = [e for e in events if e.get("ph") == "C"]
        assert spans and counters
        assert {"sweep"} <= {e["name"] for e in spans}
        # Spans are rebased onto the earliest start so they share a
        # timeline with the run-relative series counters.
        assert min(e["ts"] for e in spans) == 0.0
        assert all(e["dur"] >= 0 for e in spans)

    def test_default_output_path(self, tmp_path):
        src = tmp_path / "run.jsonl"
        code = main(TINY_SWEEP + ["--metrics-out", str(src)])
        assert code == 0
        assert main(["obs", "export-trace", str(src)]) == 0
        assert (tmp_path / "run.trace.json").exists()


class TestBitExactness:
    """Telemetry must be read-only: same numbers with it on or off."""

    def test_sweep_identical_with_and_without_telemetry(self):
        from repro.obs import Tracer
        from repro.platform.batch import run_sharded, scenario_grid

        grid = scenario_grid(["all"], [1, 2], [1], cores_per_machine=3, seed=5)
        tiny = dict(horizon_seconds=0.2, epoch_seconds=1e-3, registry_scale=0.05)

        plain = run_sharded(grid, shards=1, backend="vector", **tiny)

        q: "queue.Queue" = queue.Queue()
        tracer = Tracer(sink=q.put)
        root = tracer.start("sweep")
        traced = run_sharded(
            grid,
            shards=1,
            backend="vector",
            metrics_queue=q,
            metrics_interval=0.0,
            trace=root.context(),
            series_budget=32,
            **tiny,
        )
        tracer.finish(root, root=True)

        for a, b in zip(plain.result.scenarios, traced.result.scenarios):
            assert a.name == b.name
            assert a.completed == b.completed
            assert a.submitted == b.submitted
            assert a.instructions == b.instructions
            assert a.cycles == b.cycles
            assert a.stall_cycles == b.stall_cycles
            assert a.l3_misses == b.l3_misses

    def test_stream_verify_passes_with_telemetry_on(self, tmp_path, capsys):
        """--verify asserts stream == batch bit-exact; telemetry must not
        break that, and the run must stay under the overhead budget."""
        metrics = tmp_path / "stream.jsonl"
        code = main(
            [
                "stream",
                "--spec",
                "smoke",
                "--verify",
                "--no-bench",
                "--metrics-out",
                str(metrics),
                "--series-budget",
                "64",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-exact" in out
        records = [
            json.loads(line) for line in metrics.read_text().splitlines()
        ]
        spans = [r for r in records if r["kind"] == "span"]
        (root,) = [s for s in spans if not s["parent_id"]]
        assert root["name"] == "stream"
        assert {"ingest", "simulate", "publish"} <= {s["name"] for s in spans}
        assert 0.0 <= root["tags"]["obs_overhead_fraction"] < 0.05
        series = [r for r in records if r["kind"] == "series"]
        assert series and all(p["epoch"] >= 1 for p in series)


class TestCalibrateObs:
    def test_calibrate_once_metrics_out_is_summarizable(self, tmp_path, capsys):
        metrics = tmp_path / "cal.jsonl"
        code = main(
            [
                "calibrate",
                "--once",
                "--points",
                "5",
                "--window",
                "32",
                "--no-bench",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        capsys.readouterr()
        records = [
            json.loads(line) for line in metrics.read_text().splitlines()
        ]
        kinds = {r["kind"] for r in records}
        assert {"calibration", "span", "series"} <= kinds
        spans = [r for r in records if r["kind"] == "span"]
        names = {s["name"] for s in spans}
        assert {"calibrate", "round-0", "measure", "search"} <= names
        # The probe's measured per-epoch stall fractions become series
        # points readable alongside every other run's series.
        series = [r for r in records if r["kind"] == "series"]
        assert all(p["shard"] == "calibrate" for p in series)

        code = main(["obs", "summarize", str(metrics), "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["calibration_events"] >= 1
        assert {"calibrate", "round", "measure", "search"} <= set(
            summary["phases"]
        )
