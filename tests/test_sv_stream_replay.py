"""Differential tests: streaming replay vs the batch sweep, bit for bit.

The streaming service's correctness contract (docs/streaming.md) is that
chunked, checkpointed, resumed replay is *indistinguishable* from the batch
``FleetSweep`` — same per-tenant ledgers, same per-invocation counters,
same fault accounting, down to the last float.  These tests enforce it for
the healthy ``smoke`` preset and the fault-carrying ``chaos-smoke`` preset,
across chunk sizes, and across a kill-and-resume cycle.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (
    chunk_plan,
    compile_spec,
    load_spec_or_preset,
    partition_plan,
)
from repro.scenarios.trace import TraceChunk
from repro.serve import (
    CheckpointError,
    StreamPipeline,
    StreamReplay,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)

PRESETS = ("smoke", "chaos-smoke")

_COMPILED = {}
_BATCH = {}


def _compiled(preset):
    if preset not in _COMPILED:
        _COMPILED[preset] = compile_spec(load_spec_or_preset(preset))
    return _COMPILED[preset]


def _batch_reference(preset):
    """The batch vector result, metered (the streamed path always meters)."""
    if preset not in _BATCH:
        _BATCH[preset] = _compiled(preset).sweep(meter=True).run("vector")
    return _BATCH[preset]


def assert_bit_exact(stream_result, batch_result):
    """Every scenario's ledgers and counters must match exactly — no rtol."""
    assert len(stream_result.scenarios) == len(batch_result.scenarios)
    for streamed, batch in zip(stream_result.scenarios, batch_result.scenarios):
        assert streamed.name == batch.name
        assert streamed.submitted == batch.submitted
        assert streamed.completed == batch.completed
        assert streamed.instructions == batch.instructions
        assert streamed.cycles == batch.cycles
        assert streamed.stall_cycles == batch.stall_cycles
        assert streamed.l3_misses == batch.l3_misses
        assert streamed.billing == batch.billing
        assert streamed.fault_stats == batch.fault_stats


# --------------------------------------------------------------------- #
# Chunk-size invariance
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("chunk_epochs", (1, 7, 50, 250))
def test_stream_matches_batch_for_any_chunk_size(preset, chunk_epochs):
    replay = StreamReplay(_compiled(preset))
    for chunk in chunk_plan(replay.epochs_total, chunk_epochs):
        replay.ingest(chunk)
    replay.drain()
    assert replay.finished
    assert_bit_exact(replay.result(), _batch_reference(preset))


@pytest.mark.parametrize("preset", PRESETS)
def test_billing_records_sum_to_batch_ledger(preset):
    """Streamed per-chunk deltas reassemble the exact batch billing."""
    replay = StreamReplay(_compiled(preset))
    totals = {}
    for chunk in chunk_plan(replay.epochs_total, 25):
        for record in replay.ingest(chunk).records:
            true, billed = totals.get((record.scenario, record.function), (0.0, 0.0))
            totals[(record.scenario, record.function)] = (
                true + record.true_gb_seconds,
                billed + record.billed_gb_seconds,
            )
    for record in replay.drain().records:
        true, billed = totals.get((record.scenario, record.function), (0.0, 0.0))
        totals[(record.scenario, record.function)] = (
            true + record.true_gb_seconds,
            billed + record.billed_gb_seconds,
        )
    for scenario in _batch_reference(preset).scenarios:
        billed_by_function = dict(scenario.billing.billed_gb_seconds)
        for function, true_total in scenario.billing.true_gb_seconds:
            streamed_true, streamed_billed = totals[(scenario.name, function)]
            # Deltas were produced by subtracting successive cumulative
            # sums, so re-adding them reproduces the final sums exactly.
            assert streamed_true == pytest.approx(true_total, rel=0, abs=1e-12)
            assert streamed_billed == pytest.approx(
                billed_by_function.get(function, 0.0), rel=0, abs=1e-12
            )


# --------------------------------------------------------------------- #
# Checkpoint / kill-and-resume
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("preset", PRESETS)
def test_kill_and_resume_reproduces_uninterrupted_run(preset, tmp_path):
    plan = chunk_plan(StreamReplay(_compiled(preset)).epochs_total, 25)

    # "Service" run 1: ingest 3 chunks, checkpoint, die.
    first = StreamReplay(_compiled(preset))
    for chunk in plan[:3]:
        first.ingest(chunk)
    path = checkpoint_path(tmp_path, first.fingerprint)
    save_checkpoint(path, first)
    del first  # the process is gone

    # "Service" run 2: restore and finish.
    restored = load_checkpoint(path)
    assert restored.chunks_ingested == 3
    for chunk in plan[3:]:
        restored.ingest(chunk)
    restored.drain()
    assert restored.finished
    assert_bit_exact(restored.result(), _batch_reference(preset))


def test_resume_with_different_chunk_size_is_bit_exact(tmp_path):
    """Resume may re-chunk the remaining epochs arbitrarily."""
    compiled = _compiled("chaos-smoke")
    first = StreamReplay(compiled)
    total = first.epochs_total
    for chunk in chunk_plan(total, 40)[:2]:
        first.ingest(chunk)
    path = checkpoint_path(tmp_path, first.fingerprint)
    save_checkpoint(path, first)

    restored = load_checkpoint(path, expect_fingerprint=first.fingerprint)
    remaining = total - restored.epochs_done
    for chunk in chunk_plan(remaining, 13):
        restored.ingest(chunk)
    restored.drain()
    assert_bit_exact(restored.result(), _batch_reference("chaos-smoke"))


def test_checkpoint_rejects_wrong_fingerprint(tmp_path):
    replay = StreamReplay(_compiled("smoke"))
    path = checkpoint_path(tmp_path, replay.fingerprint)
    save_checkpoint(path, replay)
    with pytest.raises(CheckpointError, match="different study"):
        load_checkpoint(path, expect_fingerprint="0" * 32)


def test_checkpoint_rejects_garbage(tmp_path):
    path = tmp_path / "bogus.ckpt.json"
    path.write_text("not json", encoding="utf-8")
    with pytest.raises(CheckpointError, match="not valid JSON"):
        load_checkpoint(path)
    path.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
    with pytest.raises(CheckpointError, match="not a stream checkpoint"):
        load_checkpoint(path)


def test_checkpoint_envelope_is_inspectable_json(tmp_path):
    replay = StreamReplay(_compiled("smoke"))
    replay.ingest(TraceChunk(index=0, start_epoch=0, end_epoch=10))
    path = save_checkpoint(tmp_path / "c.ckpt.json", replay)
    envelope = json.loads(path.read_text(encoding="utf-8"))
    assert envelope["checkpoint_version"] == 1
    assert envelope["fingerprint"] == replay.fingerprint
    assert envelope["chunks_ingested"] == 1
    assert envelope["epochs_done"] == 10


# --------------------------------------------------------------------- #
# Pipeline (backpressure + publish ordering)
# --------------------------------------------------------------------- #
def test_pipeline_publishes_in_order_and_matches_batch():
    replay = StreamReplay(_compiled("chaos-smoke"))
    published = []
    summary = StreamPipeline(
        replay,
        chunk_plan(replay.epochs_total, 25),
        publish=published.append,
        queue_depth=1,  # tightest backpressure
    ).run()
    assert summary.finished
    assert [r.chunk for r in published[:-1]] == sorted(
        r.chunk for r in published[:-1]
    )
    assert_bit_exact(replay.result(), _batch_reference("chaos-smoke"))


def test_pipeline_surfaces_publish_errors():
    replay = StreamReplay(_compiled("smoke"))

    def explode(_result):
        raise RuntimeError("publisher died")

    with pytest.raises(RuntimeError, match="publisher died"):
        StreamPipeline(
            replay, chunk_plan(replay.epochs_total, 25), publish=explode
        ).run()


def test_pipeline_max_chunks_checkpoints_and_stops(tmp_path):
    replay = StreamReplay(_compiled("smoke"))
    path = checkpoint_path(tmp_path, replay.fingerprint)
    summary = StreamPipeline(
        replay,
        chunk_plan(replay.epochs_total, 25),
        checkpoint_to=path,
        checkpoint_every=100,  # only the forced stop checkpoint fires
        max_chunks=2,
        finalize=False,
    ).run()
    assert summary.chunks == 2
    assert not summary.finished
    assert path.exists()
    restored = load_checkpoint(path)
    assert restored.epochs_done == replay.epochs_done == 50


# --------------------------------------------------------------------- #
# Trace plans
# --------------------------------------------------------------------- #
def test_chunk_plan_covers_the_horizon_exactly():
    plan = chunk_plan(250, 32)
    assert plan[0].start_epoch == 0
    assert plan[-1].end_epoch == 250
    assert sum(c.epochs for c in plan) == 250
    assert [c.index for c in plan] == list(range(len(plan)))


def test_partition_plan_validates_sizes():
    assert [c.epochs for c in partition_plan(10, (3, 3, 4))] == [3, 3, 4]
    with pytest.raises(ValueError, match="sum to"):
        partition_plan(10, (3, 3))
    with pytest.raises(ValueError, match=">= 1"):
        partition_plan(10, (5, 0, 5))


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def test_cli_stream_verifies_against_batch(tmp_path, capsys):
    from repro.cli import main

    bench = tmp_path / "bench.json"
    code = main(
        [
            "stream",
            "--spec",
            "smoke",
            "--chunk-epochs",
            "50",
            "--verify",
            "--bench-json",
            str(bench),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "bit-exact" in out
    entries = json.loads(bench.read_text(encoding="utf-8"))
    record = entries["runs"][-1]
    assert record["source"] == "stream-replay"
    assert record["verified_bit_exact"] is True
    assert record["finished"] is True


def test_cli_stream_checkpoint_resume_cycle(tmp_path, capsys):
    from repro.cli import main

    ckpt_dir = tmp_path / "ckpt"
    common = [
        "stream",
        "--spec",
        "chaos-smoke",
        "--checkpoint-dir",
        str(ckpt_dir),
        "--no-bench",
    ]
    assert main(common + ["--chunk-epochs", "25", "--max-chunks", "2"]) == 0
    out = capsys.readouterr().out
    assert "stopped after 2 chunk(s)" in out
    assert list(ckpt_dir.glob("*.ckpt.json"))

    # Second invocation auto-resumes (different chunk size on purpose),
    # verifies bit-exactness, and clears the checkpoint on completion.
    assert main(common + ["--chunk-epochs", "13", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "resumed at epoch 50" in out
    assert "bit-exact" in out
    assert not list(ckpt_dir.glob("*.ckpt.json"))


def test_cli_stream_records_out_jsonl(tmp_path, capsys):
    from repro.cli import main

    records = tmp_path / "records.jsonl"
    code = main(
        [
            "stream",
            "--spec",
            "smoke",
            "--chunk-epochs",
            "125",
            "--records-out",
            str(records),
            "--no-bench",
        ]
    )
    assert code == 0
    lines = [
        json.loads(line)
        for line in records.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    assert lines
    assert {"chunk", "scenario", "function", "true_gb_seconds", "billed_gb_seconds"} <= set(
        lines[0]
    )


def test_cli_stream_rejects_verify_with_max_chunks(capsys):
    from repro.cli import main

    code = main(["stream", "--spec", "smoke", "--max-chunks", "1", "--verify"])
    assert code == 2
    assert "--max-chunks" in capsys.readouterr().err


def test_cli_stream_reports_spec_errors(capsys):
    from repro.cli import main

    code = main(["stream", "--spec", "no-such-preset"])
    assert code == 2
    assert capsys.readouterr().err.strip()
