"""Additional engine behaviours: SMT contention, turbo frequency, generators."""

import pytest

from repro.experiments.harness import FigureResult, oracle_for, registry_for
from repro.experiments.config import one_per_core
from repro.hardware.cpu import CPU
from repro.hardware.frequency import FrequencyPolicy
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.engine import SimulationEngine
from repro.platform.metering import measure_invocation
from repro.platform.scheduler import DedicatedCoreScheduler, LeastOccupancyScheduler
from repro.workloads.function import PhaseCursor
from repro.workloads.registry import default_registry
from repro.workloads.traffic import ct_gen


@pytest.fixture(scope="module")
def tiny_registry():
    return default_registry().scaled(0.05)


class TestSMTExecution:
    def _run_pair(self, spec, thread_a, thread_b):
        cpu = CPU(CASCADE_LAKE_5218, smt_enabled=True)
        engine = SimulationEngine(cpu, LeastOccupancyScheduler(max_per_thread=1))
        a = engine.submit(spec, thread_id=thread_a)
        b = engine.submit(spec, thread_id=thread_b)
        assert engine.run_until(
            lambda e: a.is_completed and b.is_completed, max_seconds=30.0
        )
        return measure_invocation(a).t_total_seconds

    def test_smt_siblings_slower_than_separate_cores(self, tiny_registry):
        spec = tiny_registry.get("aes-go")
        separate_cores = self._run_pair(spec, 0, 1)
        # Threads 0 and 32 are the two SMT contexts of physical core 0.
        smt_siblings = self._run_pair(spec, 0, CASCADE_LAKE_5218.cores)
        assert smt_siblings > separate_cores * 1.2


class TestTurboFrequency:
    def test_single_function_runs_faster_with_turbo(self, tiny_registry):
        spec = tiny_registry.get("fib-go")
        durations = {}
        for policy in (FrequencyPolicy.FIXED, FrequencyPolicy.TURBO):
            engine = SimulationEngine(
                CPU(CASCADE_LAKE_5218, frequency_policy=policy), DedicatedCoreScheduler()
            )
            invocation = engine.submit(spec)
            assert engine.run_until(lambda e: invocation.is_completed, max_seconds=30.0)
            durations[policy] = measure_invocation(invocation).t_total_seconds
        # A lone function rides the maximum turbo bin and finishes sooner.
        assert durations[FrequencyPolicy.TURBO] < durations[FrequencyPolicy.FIXED]


class TestTrafficGeneratorExecution:
    def test_generators_never_finish_and_are_not_probed(self):
        engine = SimulationEngine(CPU(CASCADE_LAKE_5218), DedicatedCoreScheduler())
        generator_spec = ct_gen(1).thread_specs()[0]
        invocation = engine.submit(generator_spec, thread_id=0)
        engine.run_for(0.05)
        assert invocation.is_running
        assert not invocation.startup_recorded
        assert invocation.counters.instructions > 0

    def test_generator_cursor_reports_startup_complete(self):
        cursor = PhaseCursor(ct_gen(1).thread_specs()[0])
        assert cursor.startup_complete
        assert not cursor.finished


class TestHarnessCaches:
    def test_registry_and_oracle_are_shared_per_scale(self):
        config = one_per_core()
        assert registry_for(config) is registry_for(config)
        assert oracle_for(config) is oracle_for(config)

    def test_figure_result_render_contains_columns_and_summary(self):
        result = FigureResult(
            name="demo",
            description="Demo figure",
            columns=("function", "value"),
            rows=({"function": "aes-py", "value": 1.25},),
            summary={"gmean": 1.25},
        )
        rendered = result.render()
        assert "Demo figure" in rendered
        assert "aes-py" in rendered
        assert "gmean = 1.2500" in rendered
