"""Hardware profiles: dot-path addressing, TOML loading, drift events."""

from __future__ import annotations

import pytest

from repro.calibrate import (
    PROFILE_DIR,
    DriftEvent,
    DriftInjector,
    HardwareProfile,
    ProfileError,
    default_profile,
    get_param,
    list_profiles,
    load_profile,
    no_drift,
    numeric_paths,
    perturbed,
    profile_by_name,
    set_param,
)
from repro.hardware.topology import CASCADE_LAKE_5218


def test_default_profile_is_the_paper_testbed():
    profile = default_profile()
    assert profile.machine is CASCADE_LAKE_5218
    assert profile.contention.memory_queueing_coefficient == 0.55


def test_numeric_paths_cover_nested_dataclasses():
    paths = numeric_paths(default_profile())
    assert "contention.memory_queueing_coefficient" in paths
    assert "machine.l3.size_kb" in paths
    assert "machine.cores" in paths
    # identity strings are not calibratable quantities
    assert all(not p.endswith(".name") for p in paths)
    assert "name" not in paths


def test_get_and_set_param_roundtrip():
    profile = default_profile()
    assert get_param(profile, "contention.max_utilization") == 0.97
    updated = set_param(profile, "contention.max_utilization", 0.9)
    assert get_param(updated, "contention.max_utilization") == 0.9
    # the original frozen profile is untouched
    assert get_param(profile, "contention.max_utilization") == 0.97


def test_set_param_rounds_integer_leaves():
    profile = default_profile()
    updated = set_param(profile, "machine.l2.latency_cycles", 13.7)
    value = get_param(updated, "machine.l2.latency_cycles")
    assert value == pytest.approx(13.7) or value == 14


def test_unknown_paths_name_themselves():
    profile = default_profile()
    with pytest.raises(ProfileError, match="contention.bogus"):
        get_param(profile, "contention.bogus")
    with pytest.raises(ProfileError, match="valid paths"):
        set_param(profile, "nope", 1.0)
    with pytest.raises(ProfileError):
        get_param(profile, "name")  # non-numeric leaf


def test_perturbed_scales_in_place():
    profile = default_profile()
    drifted = perturbed(profile, "contention.memory_queueing_coefficient", 1.3)
    assert get_param(
        drifted, "contention.memory_queueing_coefficient"
    ) == pytest.approx(0.55 * 1.3)


def test_shipped_profiles_load_and_resolve():
    names = list_profiles()
    assert "sg2042-like" in names
    assert "icelake-like" in names
    assert "cascade-lake-5218" in names
    sg = profile_by_name("sg2042-like")
    assert sg.machine.cores == 16
    assert sg.machine.smt_ways == 1
    assert sg.contention.memory_queueing_coefficient == 0.70
    ice = profile_by_name("icelake-like")
    assert ice.machine.smt_ways == 2
    # explicit path resolution
    by_path = profile_by_name(str(PROFILE_DIR / "sg2042-like.toml"))
    assert by_path == sg


def test_unknown_profile_lists_alternatives():
    with pytest.raises(ProfileError, match="sg2042-like"):
        profile_by_name("no-such-machine")


def test_profile_toml_errors_are_path_qualified(tmp_path):
    bad = tmp_path / "bad.toml"
    bad.write_text(
        'name = "bad"\n[machine]\nname = "bad"\narchitecture = "x"\n',
        encoding="utf-8",
    )
    with pytest.raises(ProfileError, match="bad.machine"):
        load_profile(bad)

    unknown_key = tmp_path / "unk.toml"
    source = (PROFILE_DIR / "sg2042-like.toml").read_text(encoding="utf-8")
    unknown_key.write_text(source + "\n[extra]\nx = 1\n", encoding="utf-8")
    with pytest.raises(ProfileError, match="unknown top-level key"):
        load_profile(unknown_key)

    bad_contention = tmp_path / "cont.toml"
    bad_contention.write_text(
        source.replace("memory_queueing_coefficient", "memory_q"), encoding="utf-8"
    )
    with pytest.raises(ProfileError, match="memory_q"):
        load_profile(bad_contention)


def test_profile_name_required():
    with pytest.raises(ProfileError):
        HardwareProfile(name="", machine=CASCADE_LAKE_5218)


def test_drift_event_validation():
    with pytest.raises(ValueError, match="driftable"):
        DriftEvent(start_seconds=0.1, path="machine.cores", scale=2.0)
    with pytest.raises(ValueError):
        DriftEvent(start_seconds=-1.0)
    with pytest.raises(ValueError):
        DriftEvent(start_seconds=0.0, scale=0.0)


def test_drift_injector_composes_multiplicatively():
    profile = default_profile()
    path = "contention.memory_queueing_coefficient"
    injector = DriftInjector(
        profile,
        (
            DriftEvent(start_seconds=0.2, path=path, scale=2.0),
            DriftEvent(start_seconds=0.1, path=path, scale=1.5),
        ),
    )
    # events sort by time regardless of construction order
    assert [e.start_seconds for e in injector.events] == [0.1, 0.2]
    assert get_param(injector.profile_at(0.0), path) == pytest.approx(0.55)
    assert get_param(injector.profile_at(0.15), path) == pytest.approx(0.55 * 1.5)
    assert get_param(injector.profile_at(0.3), path) == pytest.approx(0.55 * 3.0)
    assert injector.boundaries(0.0, 1.0) == [0.1, 0.2]
    assert injector.boundaries(0.1, 1.0) == [0.2]  # (start, end] excludes start
    assert not injector.drifted(0.05)
    assert injector.drifted(0.1)


def test_no_drift_injector_is_inert():
    injector = no_drift(default_profile())
    assert injector.boundaries(0.0, 100.0) == []
    assert not injector.drifted(100.0)
    assert injector.profile_at(50.0) == default_profile()


def test_drift_injector_validates_paths_up_front():
    profile = default_profile()
    DriftInjector(profile, (DriftEvent(start_seconds=0.0, scale=1.1),))
    bogus = DriftEvent(start_seconds=0.0, path="contention.not_a_field", scale=1.1)
    with pytest.raises(ProfileError, match="not_a_field"):
        DriftInjector(profile, (bogus,))
