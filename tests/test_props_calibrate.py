"""Property-based tests: calibration is deterministic and drift-honest.

Two contracts the service rests on, searched with Hypothesis:

* **Deterministic republish.**  For any fixed (seed, perturbation), two
  independent single-shot calibrations pick the same grid point with the
  same MAPE and publish byte-identical payloads — the property that makes
  a republished fit reviewable and a CI smoke reproducible.
* **No false alarms.**  On a fault-free, drift-free stream the incumbent
  replays the measured window bit-for-bit, so every windowed MAPE is
  exactly ``0.0`` and drift detection never fires, whatever the seed or
  round count.  The detector's false-positive rate is structurally zero,
  not just empirically low.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.calibrate import (
    CalibrationConfig,
    ContinuousCalibrator,
    MeasureConfig,
    calibrate_once,
    perturbed,
    profile_by_name,
)

PATH = "contention.memory_queueing_coefficient"

#: Small-window config so each Hypothesis example stays in the millisecond
#: range; the properties do not depend on window size.
def _config(seed: int, points: int = 5) -> CalibrationConfig:
    return CalibrationConfig(
        parameter=PATH,
        linspace_points=points,
        mape_window_epochs=16,
        epochs_per_round=8,
        measure=MeasureConfig(cores=2, colocation=2, seed=seed),
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    scale_percent=st.integers(min_value=70, max_value=180),
)
def test_republish_is_deterministic_for_a_fixed_seed(seed, scale_percent):
    profile = profile_by_name("sg2042-like")
    config = _config(seed)
    truth = perturbed(profile, PATH, scale_percent / 100.0)
    first = calibrate_once(truth, config, incumbent=profile)
    second = calibrate_once(truth, config, incumbent=profile)
    assert first.best == second.best
    assert first.scores == second.scores
    assert first.fit_fingerprint == second.fit_fingerprint


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    rounds=st.integers(min_value=1, max_value=4),
)
def test_drift_detection_never_fires_without_drift(seed, rounds):
    profile = profile_by_name("sg2042-like")
    calibrator = ContinuousCalibrator(profile, _config(seed))
    results = calibrator.run(rounds)
    assert all(r.windowed_mape == 0.0 for r in results)
    assert all(not r.drift_detected for r in results)
    assert calibrator.incumbent == profile
