"""Tests for the ablation studies."""

import pytest

from repro.experiments.ablation import (
    run_interpolation_ablation,
    run_rate_split_ablation,
    run_reference_count_ablation,
)
from repro.experiments.config import one_per_core


@pytest.fixture(scope="module")
def ablation_config():
    return one_per_core(
        name="test-ablation",
        total_functions=12,
        eval_physical_cores=12,
        repetitions=1,
        registry_scale=0.2,
        calibration_levels=(4, 10),
    )


class TestRateSplitAblation:
    def test_reports_both_variants(self, ablation_config):
        result = run_rate_split_ablation(ablation_config)
        assert len(result.rows) == 14
        assert result.summary["split_rate_abs_error_geomean"] > 0.0
        assert result.summary["single_rate_abs_error_geomean"] > 0.0

    def test_errors_stay_bounded(self, ablation_config):
        result = run_rate_split_ablation(ablation_config)
        for row in result.rows:
            assert row["split_rate_abs_error"] < 0.25
            assert row["single_rate_abs_error"] < 0.4


class TestInterpolationAblation:
    def test_reports_both_interpolations(self, ablation_config):
        result = run_interpolation_ablation(ablation_config)
        assert len(result.rows) == 14
        assert "log_interp_abs_error_geomean" in result.summary
        assert "linear_interp_abs_error_geomean" in result.summary


class TestReferenceCountAblation:
    def test_gap_reported_per_reference_count(self, ablation_config):
        result = run_reference_count_ablation(
            ablation_config, reference_counts=(3, 13), stress_levels=(4, 10)
        )
        assert [row["reference_functions"] for row in result.rows] == [3, 13]
        for row in result.rows:
            assert abs(row["discount_gap"]) < 0.15
