"""Tests for the congestion/performance tables and the Litmus probe."""

import pytest

from repro.core.litmus_test import LitmusObservation, LitmusProbe, StartupBaseline, probe_spec
from repro.core.tables import (
    CongestionObservation,
    CongestionTable,
    PerformanceObservation,
    PerformanceTable,
)
from repro.platform.metering import StartupMeasurement
from repro.workloads.runtimes import Language
from repro.workloads.traffic import GeneratorKind


def congestion_obs(level, language=Language.PYTHON, generator=GeneratorKind.CT):
    return CongestionObservation(
        generator=generator,
        stress_level=level,
        language=language,
        private_slowdown=1.0 + 0.01 * level,
        shared_slowdown=1.0 + 0.1 * level,
        total_slowdown=1.0 + 0.02 * level,
        machine_l3_misses=1e5 * level,
    )


def performance_obs(level, generator=GeneratorKind.CT):
    return PerformanceObservation(
        generator=generator,
        stress_level=level,
        private_slowdown=1.0 + 0.01 * level,
        shared_slowdown=1.0 + 0.12 * level,
        total_slowdown=1.0 + 0.03 * level,
    )


class TestCongestionTable:
    def test_add_and_get(self):
        table = CongestionTable([congestion_obs(4), congestion_obs(8)])
        assert len(table) == 2
        assert table.get(GeneratorKind.CT, 4, Language.PYTHON).stress_level == 4

    def test_duplicate_rejected(self):
        table = CongestionTable([congestion_obs(4)])
        with pytest.raises(ValueError, match="duplicate"):
            table.add(congestion_obs(4))

    def test_missing_entry_raises(self):
        table = CongestionTable([congestion_obs(4)])
        with pytest.raises(KeyError):
            table.get(GeneratorKind.MB, 4, Language.PYTHON)

    def test_entries_sorted_and_filtered(self):
        table = CongestionTable(
            [congestion_obs(8), congestion_obs(4), congestion_obs(4, generator=GeneratorKind.MB)]
        )
        ct_entries = table.entries(generator=GeneratorKind.CT)
        assert [e.stress_level for e in ct_entries] == [4, 8]
        assert table.stress_levels(GeneratorKind.CT) == [4, 8]
        assert table.languages() == [Language.PYTHON]

    def test_rows_rendering(self):
        rows = CongestionTable([congestion_obs(4)]).rows()
        assert rows[0]["generator"] == "ct-gen"
        assert rows[0]["language"] == "python"

    def test_validation(self):
        with pytest.raises(ValueError):
            CongestionObservation(
                generator=GeneratorKind.CT,
                stress_level=1,
                language=Language.PYTHON,
                private_slowdown=0.0,
                shared_slowdown=1.0,
                total_slowdown=1.0,
                machine_l3_misses=0.0,
            )


class TestPerformanceTable:
    def test_add_get_rows(self):
        table = PerformanceTable([performance_obs(4), performance_obs(8)])
        assert len(table) == 2
        assert table.get(GeneratorKind.CT, 8).total_slowdown == pytest.approx(1.24)
        assert table.stress_levels(GeneratorKind.CT) == [4, 8]
        assert len(table.rows()) == 2

    def test_duplicate_rejected(self):
        table = PerformanceTable([performance_obs(4)])
        with pytest.raises(ValueError):
            table.add(performance_obs(4))

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            PerformanceTable().get(GeneratorKind.MB, 2)


class TestLitmusProbe:
    def make_probe(self):
        baseline = StartupBaseline(
            language=Language.PYTHON,
            private_seconds=0.010,
            shared_seconds=0.002,
            machine_l3_misses=1e5,
        )
        return LitmusProbe({Language.PYTHON: baseline})

    def test_observation_slowdowns(self):
        probe = self.make_probe()
        measurement = StartupMeasurement(
            function="aes-py",
            language="python",
            instructions=45e6,
            t_private_seconds=0.011,
            t_shared_seconds=0.004,
            private_cycles=1.0,
            shared_cycles=1.0,
            wall_seconds=0.016,
            machine_l3_misses=5e5,
        )
        observation = probe.observe_measurement(measurement)
        assert observation.private_slowdown == pytest.approx(1.1)
        assert observation.shared_slowdown == pytest.approx(2.0)
        assert observation.machine_l3_misses == pytest.approx(5e5)
        assert observation.language is Language.PYTHON

    def test_missing_language_baseline(self):
        probe = self.make_probe()
        with pytest.raises(KeyError):
            probe.baseline(Language.GO)

    def test_requires_baselines(self):
        with pytest.raises(ValueError):
            LitmusProbe({})

    def test_observation_validation(self):
        with pytest.raises(ValueError):
            LitmusObservation(
                function="x",
                language=Language.PYTHON,
                private_slowdown=0.0,
                shared_slowdown=1.0,
                total_slowdown=1.0,
                machine_l3_misses=0.0,
                startup_wall_seconds=0.0,
            )


class TestProbeSpec:
    def test_probe_specs_per_language(self):
        for language in Language:
            spec = probe_spec(language)
            assert spec.language is language
            assert spec.suite == "litmus-probe"
            assert spec.startup_instructions > spec.body_instructions
