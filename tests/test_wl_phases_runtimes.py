"""Tests for execution phases, resource profiles and language runtimes."""

import pytest

from repro.workloads.phases import ExecutionPhase, PhaseKind, ResourceProfile
from repro.workloads.runtimes import Language, all_runtimes, runtime_for


def profile(**kwargs):
    defaults = dict(
        cpi_base=0.5, l2_mpki=5.0, working_set_mb=10.0, solo_l3_hit_fraction=0.8, mlp=4.0
    )
    defaults.update(kwargs)
    return ResourceProfile(**defaults)


class TestResourceProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            profile(cpi_base=0)
        with pytest.raises(ValueError):
            profile(l2_mpki=-1)
        with pytest.raises(ValueError):
            profile(solo_l3_hit_fraction=1.2)
        with pytest.raises(ValueError):
            profile(mlp=0)

    def test_scaled_returns_modified_copy(self):
        base = profile()
        changed = base.scaled(l2_mpki=10.0)
        assert changed.l2_mpki == 10.0
        assert changed.cpi_base == base.cpi_base
        assert base.l2_mpki == 5.0

    def test_solo_stall_per_instruction(self):
        p = profile(l2_mpki=10.0, solo_l3_hit_fraction=0.5, mlp=2.0)
        stall = p.solo_stall_cycles_per_instruction(40.0, 200.0)
        expected = (10.0 / 1000.0) * ((0.5 * 40.0 + 0.5 * 200.0) / 2.0)
        assert stall == pytest.approx(expected)


class TestExecutionPhase:
    def test_requires_positive_instructions(self):
        with pytest.raises(ValueError):
            ExecutionPhase(name="x", kind=PhaseKind.BODY, instructions=0, profile=profile())

    def test_scaled_changes_length_only(self):
        phase = ExecutionPhase(name="x", kind=PhaseKind.BODY, instructions=1e6, profile=profile())
        scaled = phase.scaled(0.5)
        assert scaled.instructions == pytest.approx(5e5)
        assert scaled.profile is phase.profile
        with pytest.raises(ValueError):
            phase.scaled(0)


class TestLanguageRuntimes:
    def test_all_three_runtimes_exist(self):
        assert {runtime.language for runtime in all_runtimes()} == set(Language)

    def test_startup_phases_are_startup_kind(self):
        for runtime in all_runtimes():
            assert all(p.kind is PhaseKind.STARTUP for p in runtime.startup_phases)

    def test_python_startup_instruction_budget_matches_paper(self):
        # The paper measures the first ~45 M instructions of a Python startup.
        runtime = runtime_for(Language.PYTHON)
        assert runtime.startup_instructions == pytest.approx(45e6)

    def test_relative_startup_lengths(self):
        # Node.js startups are the longest, Go startups the shortest (Fig. 6).
        python = runtime_for(Language.PYTHON).startup_instructions
        nodejs = runtime_for(Language.NODEJS).startup_instructions
        go = runtime_for(Language.GO).startup_instructions
        assert nodejs > python > go

    def test_startup_for_scaling(self):
        runtime = runtime_for(Language.GO)
        scaled = runtime.startup_for(0.5)
        assert sum(p.instructions for p in scaled) == pytest.approx(
            runtime.startup_instructions * 0.5
        )
        with pytest.raises(ValueError):
            runtime.startup_for(0)

    def test_language_short_codes(self):
        assert Language.PYTHON.short == "py"
        assert Language.NODEJS.short == "nj"
        assert Language.GO.short == "go"
