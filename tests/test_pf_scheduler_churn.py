"""Tests for schedulers, churn, drivers and the switching-overhead model."""

import pytest

from repro.hardware.cpu import CPU
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.churn import ChurnManager
from repro.platform.drivers import RepeatingSubmitter, SubmitterGroup, WorkQueueDriver
from repro.platform.engine import SimulationEngine
from repro.platform.scheduler import (
    DedicatedCoreScheduler,
    LeastOccupancyScheduler,
    SwitchingOverheadModel,
)
from repro.workloads.registry import default_registry
from repro.workloads.synthetic import WorkloadMixer


@pytest.fixture(scope="module")
def tiny_registry():
    return default_registry().scaled(0.05)


def make_engine(scheduler):
    return SimulationEngine(CPU(CASCADE_LAKE_5218), scheduler)


class TestSwitchingOverheadModel:
    def test_no_overhead_for_dedicated_thread(self):
        assert SwitchingOverheadModel().factor(1) == pytest.approx(1.0)

    def test_monotone_and_saturating(self):
        model = SwitchingOverheadModel()
        factors = [model.factor(n) for n in (1, 2, 5, 10, 20, 40)]
        assert factors == sorted(factors)
        assert factors[-1] <= model.saturation_factor() + 1e-9
        # Figure 14: roughly +2.5 % at ten co-located functions.
        assert model.factor(10) == pytest.approx(1.023, abs=0.005)

    def test_rejects_counts_below_one(self):
        with pytest.raises(ValueError):
            SwitchingOverheadModel().factor(0)


class TestSchedulers:
    def test_dedicated_scheduler_fills_free_threads(self, tiny_registry):
        engine = make_engine(DedicatedCoreScheduler())
        spec = tiny_registry.get("auth-go")
        first = engine.submit(spec)
        second = engine.submit(spec)
        assert first.thread_id != second.thread_id

    def test_dedicated_scheduler_raises_when_full(self, tiny_registry):
        engine = make_engine(DedicatedCoreScheduler(allowed_threads=[0, 1]))
        spec = tiny_registry.get("auth-go")
        engine.submit(spec)
        engine.submit(spec)
        with pytest.raises(RuntimeError, match="at capacity"):
            engine.submit(spec)

    def test_least_occupancy_balances_load(self, tiny_registry):
        engine = make_engine(
            LeastOccupancyScheduler(allowed_threads=[0, 1], max_per_thread=5)
        )
        spec = tiny_registry.get("auth-go")
        invocations = [engine.submit(spec) for _ in range(4)]
        threads = [inv.thread_id for inv in invocations]
        assert threads.count(0) == 2
        assert threads.count(1) == 2

    def test_max_per_thread_validation(self):
        with pytest.raises(ValueError):
            LeastOccupancyScheduler(max_per_thread=0)


class TestChurnManager:
    def test_maintains_target_count(self, tiny_registry):
        engine = make_engine(LeastOccupancyScheduler(max_per_thread=4))
        mixer = WorkloadMixer(tiny_registry.all(), seed=3)
        churn = ChurnManager(mixer, target_count=6, thread_ids=list(range(8)))
        churn.attach(engine)
        assert churn.active_count == 6
        engine.run_for(0.2)
        assert churn.active_count == 6
        assert churn.launched_count > 6  # replacements happened

    def test_zero_target_is_a_noop(self, tiny_registry):
        engine = make_engine(DedicatedCoreScheduler())
        churn = ChurnManager(WorkloadMixer(tiny_registry.all()), target_count=0)
        churn.attach(engine)
        assert churn.active_count == 0

    def test_negative_target_rejected(self, tiny_registry):
        with pytest.raises(ValueError):
            ChurnManager(WorkloadMixer(tiny_registry.all()), target_count=-1)


class TestRepeatingSubmitter:
    def test_runs_exact_repetition_count(self, tiny_registry):
        engine = make_engine(DedicatedCoreScheduler())
        submitter = RepeatingSubmitter(tiny_registry.get("auth-go"), repetitions=3, thread_id=0)
        submitter.attach(engine)
        assert engine.run_until(lambda e: submitter.done, max_seconds=30.0)
        assert len(submitter.completed) == 3
        # Invocations ran back to back on the same thread.
        assert {inv.thread_id for inv in submitter.completed} == {0}

    def test_group_aggregates_by_spec(self, tiny_registry):
        engine = make_engine(DedicatedCoreScheduler())
        specs = [tiny_registry.get("auth-go"), tiny_registry.get("aes-go")]
        group = SubmitterGroup(
            [RepeatingSubmitter(spec, repetitions=2, thread_id=i) for i, spec in enumerate(specs)]
        )
        group.attach(engine)
        assert engine.run_until(lambda e: group.done, max_seconds=30.0)
        by_spec = group.completed_by_spec()
        assert set(by_spec) == {"auth-go", "aes-go"}
        assert all(len(v) == 2 for v in by_spec.values())

    def test_invalid_repetitions(self, tiny_registry):
        with pytest.raises(ValueError):
            RepeatingSubmitter(tiny_registry.get("auth-go"), repetitions=0)


class TestWorkQueueDriver:
    def test_processes_all_items(self, tiny_registry):
        engine = make_engine(LeastOccupancyScheduler(max_per_thread=2))
        items = [tiny_registry.get("auth-go")] * 5 + [tiny_registry.get("aes-go")] * 2
        driver = WorkQueueDriver(items, allowed_threads=[0, 1], max_per_thread=2)
        driver.attach(engine)
        assert engine.run_until(lambda e: driver.done, max_seconds=60.0)
        assert len(driver.completed) == 7
        assert len(driver.completed_by_spec()["auth-go"]) == 5

    def test_respects_max_per_thread(self, tiny_registry):
        engine = make_engine(LeastOccupancyScheduler(max_per_thread=1))
        items = [tiny_registry.get("auth-go")] * 4
        driver = WorkQueueDriver(items, allowed_threads=[0], max_per_thread=1)
        driver.attach(engine)
        assert engine.cpu.thread(0).occupancy == 1
        assert driver.pending_count == 3

    def test_requires_threads(self, tiny_registry):
        with pytest.raises(ValueError):
            WorkQueueDriver([tiny_registry.get("auth-go")], allowed_threads=[])
