"""Tests for the statistics helpers, error metrics and text reporting."""


import pytest

from repro.analysis.errors import price_error_breakdown
from repro.analysis.reporting import format_series, format_table
from repro.analysis.stats import geometric_mean, normalize, safe_ratio, weighted_mean


class TestStats:
    def test_geometric_mean_basics(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([3]) == pytest.approx(3.0)

    def test_geometric_mean_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_below_arithmetic(self):
        values = [1.0, 2.0, 10.0]
        assert geometric_mean(values) < sum(values) / len(values)

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

    def test_safe_ratio(self):
        assert safe_ratio(4, 2) == 2
        assert safe_ratio(4, 0, default=-1) == -1

    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)


class TestPriceErrorBreakdown:
    def test_zero_error_when_prices_match(self):
        breakdown = price_error_breakdown(
            function="aes-py",
            litmus_private=0.8,
            litmus_shared=0.2,
            ideal_private=0.8,
            ideal_shared=0.2,
        )
        assert breakdown.private_error == pytest.approx(0.0)
        assert breakdown.shared_error == pytest.approx(0.0)
        assert breakdown.total_error == pytest.approx(0.0)

    def test_positive_error_means_undercompensation(self):
        breakdown = price_error_breakdown(
            function="aes-py",
            litmus_private=0.9,
            litmus_shared=0.2,
            ideal_private=0.8,
            ideal_shared=0.2,
        )
        assert breakdown.total_error > 0
        assert breakdown.private_error > 0
        assert breakdown.absolute_total_error == pytest.approx(breakdown.total_error)

    def test_component_errors_are_weighted(self):
        # A 50% error on a tiny shared component barely moves the weighted error.
        breakdown = price_error_breakdown(
            function="float-py",
            litmus_private=1.0,
            litmus_shared=0.015,
            ideal_private=1.0,
            ideal_shared=0.01,
        )
        assert abs(breakdown.shared_error) < 0.01

    def test_weighted_component_errors_sum_to_total(self):
        breakdown = price_error_breakdown(
            function="x",
            litmus_private=0.7,
            litmus_shared=0.4,
            ideal_private=0.8,
            ideal_shared=0.3,
        )
        assert breakdown.private_error + breakdown.shared_error == pytest.approx(
            breakdown.total_error
        )

    def test_requires_positive_ideal_price(self):
        with pytest.raises(ValueError):
            price_error_breakdown(
                function="x",
                litmus_private=1.0,
                litmus_shared=0.0,
                ideal_private=0.0,
                ideal_shared=0.0,
            )


class TestReporting:
    def test_format_table_alignment_and_values(self):
        rows = [
            {"function": "aes-py", "price": 0.91234},
            {"function": "float-py", "price": 0.8},
        ]
        text = format_table(rows, ["function", "price"], title="Prices")
        lines = text.splitlines()
        assert lines[0] == "Prices"
        assert "aes-py" in text
        assert "0.9123" in text

    def test_format_table_requires_columns(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_format_table_renders_booleans(self):
        text = format_table([{"ref": True}], ["ref"])
        assert "yes" in text

    def test_format_series(self):
        text = format_series(
            {"litmus": [0.9, 0.8], "ideal": [0.92, 0.83]},
            x_label="level",
            x_values=[1, 2],
        )
        assert "level" in text
        assert "0.9000" in text
        assert len(text.splitlines()) == 4
