"""Tests for cores, hardware threads and the CPU sharing domain."""

import pytest

from repro.hardware.core import Core, HardwareThread, build_cores
from repro.hardware.cpu import CPU
from repro.hardware.frequency import FrequencyPolicy
from repro.hardware.topology import CASCADE_LAKE_5218


class TestBuildCores:
    def test_core_and_thread_counts(self):
        cores = build_cores(4, 2)
        assert len(cores) == 4
        assert all(core.smt_ways == 2 for core in cores)

    def test_linux_style_thread_numbering(self):
        cores = build_cores(4, 2)
        first = cores[0]
        assert [t.thread_id for t in first.threads] == [0, 4]
        assert [t.smt_index for t in first.threads] == [0, 1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_cores(0, 1)
        with pytest.raises(ValueError):
            build_cores(4, 0)


class TestHardwareThread:
    def test_enqueue_dequeue(self):
        thread = HardwareThread(thread_id=0, core_id=0, smt_index=0)
        thread.enqueue(7)
        assert thread.is_busy and thread.occupancy == 1
        thread.dequeue(7)
        assert not thread.is_busy

    def test_double_enqueue_rejected(self):
        thread = HardwareThread(thread_id=0, core_id=0, smt_index=0)
        thread.enqueue(7)
        with pytest.raises(ValueError):
            thread.enqueue(7)

    def test_dequeue_missing_rejected(self):
        thread = HardwareThread(thread_id=0, core_id=0, smt_index=0)
        with pytest.raises(ValueError):
            thread.dequeue(3)


class TestCore:
    def test_smt_active_detection(self):
        core = build_cores(1, 2)[0]
        assert not core.smt_active()
        core.threads[0].enqueue(1)
        assert not core.smt_active()
        core.threads[1].enqueue(2)
        assert core.smt_active()

    def test_sibling_of(self):
        core = build_cores(1, 2)[0]
        assert core.sibling_of(core.threads[0]) is core.threads[1]

    def test_sibling_of_single_threaded_core(self):
        core = build_cores(1, 1)[0]
        assert core.sibling_of(core.threads[0]) is None

    def test_mismatched_thread_core_rejected(self):
        with pytest.raises(ValueError):
            Core(core_id=1, threads=[HardwareThread(thread_id=0, core_id=0, smt_index=0)])


class TestCPU:
    def test_smt_disabled_by_default(self):
        cpu = CPU(CASCADE_LAKE_5218)
        assert cpu.thread_count == 32
        assert not cpu.smt_enabled

    def test_smt_enabled_doubles_threads(self):
        cpu = CPU(CASCADE_LAKE_5218, smt_enabled=True)
        assert cpu.thread_count == 64

    def test_thread_lookup_and_core_of(self):
        cpu = CPU(CASCADE_LAKE_5218, smt_enabled=True)
        thread = cpu.thread(35)
        assert thread.core_id == 3
        assert cpu.core_of(35).core_id == 3
        with pytest.raises(KeyError):
            cpu.thread(999)

    def test_active_thread_count(self):
        cpu = CPU(CASCADE_LAKE_5218)
        assert cpu.active_thread_count == 0
        cpu.thread(0).enqueue(1)
        cpu.thread(5).enqueue(2)
        assert cpu.active_thread_count == 2

    def test_smt_private_penalty_requires_busy_sibling(self):
        cpu = CPU(CASCADE_LAKE_5218, smt_enabled=True)
        assert cpu.smt_private_penalty(0) == pytest.approx(1.0)
        cpu.thread(0).enqueue(1)
        assert cpu.smt_private_penalty(0) == pytest.approx(1.0)
        cpu.thread(32).enqueue(2)  # SMT sibling of core 0
        assert cpu.smt_private_penalty(0) == pytest.approx(
            CASCADE_LAKE_5218.smt_private_penalty
        )

    def test_no_smt_penalty_when_smt_disabled(self):
        cpu = CPU(CASCADE_LAKE_5218, smt_enabled=False)
        cpu.thread(0).enqueue(1)
        assert cpu.smt_private_penalty(0) == pytest.approx(1.0)

    def test_turbo_frequency_policy(self):
        cpu = CPU(CASCADE_LAKE_5218, frequency_policy=FrequencyPolicy.TURBO)
        idle_frequency = cpu.current_frequency_ghz()
        for i in range(16):
            cpu.thread(i).enqueue(i)
        busy_frequency = cpu.current_frequency_ghz()
        assert busy_frequency < idle_frequency

    def test_reset_counters(self):
        cpu = CPU(CASCADE_LAKE_5218)
        cpu.global_counters.observe(cycles=10)
        cpu.reset_counters()
        assert cpu.global_counters.cycles == 0
