"""Tests for the lightweight figure modules (no heavy price evaluations)."""

import pytest

from repro.experiments import fig01_traffic, fig04_distribution, fig06_startup_ipc, table1
from repro.experiments.config import one_per_core
from repro.experiments.harness import FigureResult
from repro.workloads.runtimes import Language


@pytest.fixture(scope="module")
def light_config():
    return one_per_core(
        name="test-light",
        total_functions=12,
        eval_physical_cores=12,
        repetitions=1,
        registry_scale=0.2,
        calibration_levels=(4, 10),
    )


class TestTable1:
    def test_rows_and_summary(self):
        result = table1.run()
        assert isinstance(result, FigureResult)
        assert len(result.rows) == 27
        assert result.summary["reference_functions"] == 13.0
        assert "Table 1" in result.render()


class TestFig01:
    def test_generator_characteristics(self, light_config):
        result = fig01_traffic.run(light_config, levels=(1, 8, 16))
        assert len(result.rows) == 6
        # MB-Gen dominates L3 misses; CT-Gen dominates L2 misses.
        assert result.summary["mb_gen_max_normalized_l3"] > result.summary["ct_gen_max_normalized_l3"]
        assert result.summary["ct_gen_max_normalized_l2"] > result.summary["mb_gen_max_normalized_l2"]
        assert result.summary["l3_separation_ratio"] > 3.0

    def test_l2_misses_grow_with_thread_count(self, light_config):
        result = fig01_traffic.run(light_config, levels=(1, 8, 16))
        ct_rows = [r for r in result.rows if r["generator"] == "ct-gen"]
        l2 = [r["normalized_l2_misses"] for r in ct_rows]
        assert l2 == sorted(l2)


class TestFig04:
    def test_shared_fraction_spread(self, light_config):
        result = fig04_distribution.run(light_config)
        by_function = {row["function"]: row for row in result.rows}
        # Compute-bound functions are dominated by private time...
        assert by_function["float-py"]["t_private_fraction"] > 0.9
        # ...while graph workloads have a visible shared component.
        assert by_function["pager-py"]["t_shared_fraction"] > by_function["float-py"]["t_shared_fraction"]
        assert 0.0 < result.summary["mean_shared_fraction"] < 0.5


class TestFig06:
    def test_startup_traces_by_language(self, light_config):
        result = fig06_startup_ipc.run(light_config)
        languages = {row["language"] for row in result.rows}
        assert languages == {lang.value for lang in Language}
        # Node.js startups are the longest, Go the shortest (paper Fig. 6).
        assert result.summary["nodejs_startup_ms"] > result.summary["python_startup_ms"]
        assert result.summary["python_startup_ms"] > result.summary["go_startup_ms"]
        assert result.summary["min_ipc"] > 0

    def test_render_contains_description(self, light_config):
        result = fig06_startup_ipc.run(light_config)
        assert "Figure 6" in result.render()
