"""Integration tests for the temporal-sharing pricing methods (Section 7.2).

A scaled-down version of the paper's 160-function environment is evaluated
with Method 1 (dedicated tables + switching calibration) and Method 2
(tables rebuilt under sharing), checking the qualitative results of
Figures 15 and 16: both track the ideal discount, and Method 2 at least as
well as Method 1.
"""

import pytest

from repro.core.calibration import CalibrationScenario
from repro.experiments.config import PricingMethod, sharing_160
from repro.experiments.harness import run_price_evaluation


def _small_sharing_config(method: PricingMethod):
    scenario = (
        CalibrationScenario.shared(function_thread_count=4, functions_per_thread=5)
        if method is PricingMethod.METHOD2
        else CalibrationScenario.dedicated(function_thread_count=8)
    )
    return sharing_160(
        method,
        name=f"test-sharing-{method.value}",
        total_functions=40,
        eval_physical_cores=8,
        functions_per_thread=5,
        repetitions=1,
        registry_scale=0.2,
        calibration_levels=(4, 10),
        calibration_scenario=scenario,
    )


@pytest.fixture(scope="module")
def method1_result():
    return run_price_evaluation(_small_sharing_config(PricingMethod.METHOD1))


@pytest.fixture(scope="module")
def method2_result():
    return run_price_evaluation(_small_sharing_config(PricingMethod.METHOD2))


class TestTemporalSharingPricing:
    def test_sharing_environment_discounts_more_than_dedicated(self, method2_result):
        # Figure 16 vs Figure 11: sharing adds congestion and switching
        # overhead, so the ideal discount grows.
        assert method2_result.average_ideal_discount > 0.05

    def test_method1_tracks_ideal(self, method1_result):
        assert abs(method1_result.discount_gap) < 0.08
        assert method1_result.average_litmus_discount > 0.0

    def test_method2_tracks_ideal(self, method2_result):
        assert abs(method2_result.discount_gap) < 0.05

    def test_every_function_receives_a_discount(self, method2_result):
        for row in method2_result.rows:
            assert row.litmus_normalized_price < 1.0
            assert row.ideal_normalized_price < 1.0

    def test_errors_bounded(self, method1_result, method2_result):
        # Method 1 reuses dedicated-core tables in a shared environment, so
        # its worst-case per-function error is noticeably larger (the paper
        # sees up to ~10 % there); Method 2 should stay tighter.
        assert method1_result.max_abs_error < 0.3
        assert method2_result.max_abs_error < 0.15
