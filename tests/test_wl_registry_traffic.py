"""Tests for the Table-1 registry, traffic generators and workload mixing."""

import pytest

from repro.workloads.function import FunctionSpec
from repro.workloads.registry import (
    MEMORY_INTENSIVE_ABBREVIATIONS,
    FunctionRegistry,
    default_registry,
    reference_functions as registry_reference_functions,
    table1_rows,
    test_functions as registry_test_functions,
)
from repro.workloads.runtimes import Language
from repro.workloads.synthetic import WorkloadMixer, memory_intensive_subset, round_robin_fill
from repro.workloads.traffic import GeneratorKind, ct_gen, mb_gen, stress_levels


class TestRegistryContents:
    def test_27_benchmarks(self, registry):
        assert len(registry) == 27

    def test_13_reference_and_14_test_functions(self, registry):
        assert len(registry.reference_functions()) == 13
        assert len(registry.test_functions()) == 14
        assert len(registry_reference_functions()) == 13
        assert len(registry_test_functions()) == 14

    def test_language_split_matches_table1(self, registry):
        assert len(registry.by_language(Language.PYTHON)) == 16
        assert len(registry.by_language(Language.NODEJS)) == 5
        assert len(registry.by_language(Language.GO)) == 6

    def test_three_functions_exist_in_all_languages(self, registry):
        for base in ("auth", "fib", "aes"):
            for suffix in ("py", "nj", "go"):
                assert f"{base}-{suffix}" in registry

    def test_suites_present(self, registry):
        assert len(registry.by_suite("sebs")) == 8
        assert len(registry.by_suite("functionbench")) == 5
        assert len(registry.by_suite("hotel-reservation")) == 3
        assert len(registry.by_suite("online-boutique")) == 2

    def test_memory_intensive_set(self, registry):
        subset = registry.memory_intensive()
        assert len(subset) == 8
        assert {s.abbreviation for s in subset} == set(MEMORY_INTENSIVE_ABBREVIATIONS)
        assert memory_intensive_subset() == subset

    def test_compute_bound_functions_have_tiny_miss_rates(self, registry):
        float_py = registry.get("float-py")
        pager_py = registry.get("pager-py")
        assert float_py.body_phases[0].profile.l2_mpki < 0.1
        assert pager_py.body_phases[0].profile.l2_mpki > 10 * float_py.body_phases[0].profile.l2_mpki

    def test_unknown_function_raises(self, registry):
        with pytest.raises(KeyError, match="unknown function"):
            registry.get("nope-py")

    def test_table1_rows_shape(self):
        rows = table1_rows()
        assert len(rows) == 27
        assert {"abbreviation", "language", "reference"} <= set(rows[0].keys())


class TestRegistryOperations:
    def test_subset(self, registry):
        subset = registry.subset(["aes-py", "fib-go"])
        assert len(subset) == 2

    def test_scaled_registry_preserves_identity(self, registry):
        scaled = registry.scaled(0.5)
        assert len(scaled) == len(registry)
        original = registry.get("aes-py")
        shrunk = scaled.get("aes-py")
        assert shrunk.body_instructions == pytest.approx(original.body_instructions * 0.5)
        assert shrunk.startup_instructions == pytest.approx(original.startup_instructions)

    def test_duplicate_specs_rejected(self, registry):
        spec = registry.get("aes-py")
        with pytest.raises(ValueError):
            FunctionRegistry([spec, spec])

    def test_default_registry_is_cached(self):
        assert default_registry() is default_registry()


class TestTrafficGenerators:
    def test_thread_specs_count_matches_level(self):
        assert len(ct_gen(5).thread_specs()) == 5
        assert len(mb_gen(0).thread_specs()) == 0

    def test_generator_specs_are_flagged(self):
        for spec in ct_gen(3).thread_specs():
            assert spec.is_traffic_generator
            assert spec.suite == "traffic-generator"
            assert isinstance(spec, FunctionSpec)

    def test_ct_gen_hits_l3_mb_gen_misses(self):
        ct_profile = ct_gen(1).profile
        mb_profile = mb_gen(1).profile
        assert ct_profile.solo_l3_hit_fraction > 0.9
        assert mb_profile.solo_l3_hit_fraction < 0.3
        assert mb_profile.working_set_mb > CASCADE_L3_MB_APPROX()

    def test_stress_levels_helper(self):
        assert stress_levels(31)[0] == 1
        assert stress_levels(31)[-1] == 31
        assert stress_levels(10, step=3) == (1, 4, 7, 10)
        with pytest.raises(ValueError):
            stress_levels(0)

    def test_generator_kinds(self):
        assert ct_gen(2).kind is GeneratorKind.CT
        assert mb_gen(2).kind is GeneratorKind.MB


def CASCADE_L3_MB_APPROX():
    return 22.0


class TestWorkloadMixer:
    def test_deterministic_given_seed(self, registry):
        a = WorkloadMixer(registry.all(), seed=11).draw(20)
        b = WorkloadMixer(registry.all(), seed=11).draw(20)
        assert [s.abbreviation for s in a] == [s.abbreviation for s in b]

    def test_different_seeds_differ(self, registry):
        a = WorkloadMixer(registry.all(), seed=1).draw(30)
        b = WorkloadMixer(registry.all(), seed=2).draw(30)
        assert [s.abbreviation for s in a] != [s.abbreviation for s in b]

    def test_weights_validated(self, registry):
        pool = registry.all()
        with pytest.raises(ValueError):
            WorkloadMixer(pool, weights=[1.0])
        with pytest.raises(ValueError):
            WorkloadMixer([])

    def test_round_robin_fill_covers_pool(self, registry):
        pool = registry.all()
        filled = round_robin_fill(pool, count=54, seed=3)
        assert len(filled) == 54
        # Every benchmark appears exactly twice when count == 2 * len(pool).
        counts = {}
        for spec in filled:
            counts[spec.abbreviation] = counts.get(spec.abbreviation, 0) + 1
        assert set(counts.values()) == {2}
