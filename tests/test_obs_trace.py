"""Span tracing, bounded series, and the versioned JSONL envelope."""

from __future__ import annotations

import json
import queue

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    ENVELOPE_VERSION,
    CalibrationEvent,
    EnvelopeWarning,
    MetricsCollector,
    ProgressSnapshot,
    SeriesBuffer,
    SeriesPoint,
    SpanContext,
    Tracer,
    TraceSpan,
    read_records,
    unwrap,
    wrap,
)
from repro.obs.envelope import decode


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #
class TestTracer:
    def test_nested_spans_parent_automatically(self):
        sink: list = []
        tracer = Tracer(sink=sink.append)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert [s.name for s in sink] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == ""
        assert inner.trace_id == outer.trace_id == tracer.trace_id

    def test_cross_process_context_parents_explicitly(self):
        parent_tracer = Tracer()
        root = parent_tracer.start("sweep")
        context = root.context()
        assert context == SpanContext(
            trace_id=root.trace_id, span_id=root.span_id
        )
        # A "worker" builds its own tracer around the inherited IDs.
        worker = Tracer(trace_id=context.trace_id)
        span = worker.start("shard-0", parent=context)
        worker.finish(span)
        assert span.trace_id == root.trace_id
        assert span.parent_id == root.span_id

    def test_root_span_self_accounts_overhead(self):
        tracer = Tracer()
        span = tracer.start("root")
        tracer.add_overhead(0.25)
        tracer.finish(span, root=True, emit=False)
        assert span.tags["obs_overhead_seconds"] >= 0.25
        assert span.tags["obs_overhead_fraction"] > 0.0
        assert span.duration_seconds >= 0.0

    def test_record_posthoc_span(self):
        sink: list = []
        tracer = Tracer(sink=sink.append)
        root = tracer.start("run")
        span = tracer.record(
            "fig11",
            start_unix_seconds=123.0,
            duration_seconds=4.5,
            parent=root,
            tags={"phase": "figure"},
        )
        assert span.start_unix_seconds == 123.0
        assert span.duration_seconds == 4.5
        assert span.parent_id == root.span_id
        assert sink == [span]

    def test_sink_failure_is_swallowed(self):
        def explode(_span):
            raise RuntimeError("queue torn down")

        tracer = Tracer(sink=explode)
        tracer.finish(tracer.start("x"))  # must not raise

    def test_span_serialization_excludes_bookkeeping(self):
        tracer = Tracer()
        span = tracer.finish(tracer.start("x"), emit=False)
        record = span.to_dict()
        assert "_start_perf" not in record
        assert TraceSpan.from_payload(record) == span


# --------------------------------------------------------------------- #
# SeriesBuffer: deterministic stride decimation
# --------------------------------------------------------------------- #
def point(epoch: int, shard: str = "") -> SeriesPoint:
    return SeriesPoint(
        shard=shard,
        epoch=epoch,
        time_seconds=epoch * 1e-3,
        completions=epoch,
        shared_stall_fraction=0.2,
        fault_injections=0,
        meter_dropped=0,
        billing_error_fraction=0.0,
    )


class TestSeriesBuffer:
    def test_budget_is_never_exceeded(self):
        buffer = SeriesBuffer(budget=8)
        for epoch in range(1, 1000):
            buffer.offer(point(epoch))
        assert len(buffer) < 8

    def test_kept_epochs_divisible_by_stride(self):
        buffer = SeriesBuffer(budget=8)
        for epoch in range(1, 1000):
            buffer.offer(point(epoch))
        assert all(p.epoch % buffer.stride == 0 for p in buffer.points)

    def test_rejects_off_stride_offers(self):
        buffer = SeriesBuffer(budget=4)
        for epoch in range(1, 100):
            buffer.offer(point(epoch))
        assert buffer.stride > 1
        assert not buffer.offer(point(buffer.stride * 100 + 1))
        assert buffer.offer(point(buffer.stride * 100))

    def test_batch_applies_shard_label(self):
        buffer = SeriesBuffer(budget=4)
        buffer.offer(point(1))
        batch = buffer.batch("fault:0")
        assert batch.shard == "fault:0"
        assert all(p.shard == "fault:0" for p in batch.points)
        assert batch.stride == buffer.stride

    def test_budget_floor(self):
        with pytest.raises(ValueError):
            SeriesBuffer(budget=1)

    @settings(max_examples=50, deadline=None)
    @given(epochs=st.integers(min_value=1, max_value=3000))
    def test_downsampling_is_pure_function_of_epoch_sequence(self, epochs):
        first = SeriesBuffer(budget=16)
        second = SeriesBuffer(budget=16)
        for epoch in range(1, epochs + 1):
            first.offer(point(epoch))
        for epoch in range(1, epochs + 1):
            second.offer(point(epoch))
        assert first.points == second.points
        assert first.stride == second.stride


# --------------------------------------------------------------------- #
# Envelope round-trips (the schema contract)
# --------------------------------------------------------------------- #
finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
counts = st.integers(min_value=0, max_value=10**9)
names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12
)

snapshots = st.builds(
    ProgressSnapshot,
    shard=names,
    backend=st.sampled_from(["vector", "scalar", "stream"]),
    scenarios_total=counts,
    scenarios_done=counts,
    epochs_done=counts,
    epochs_total=counts,
    completions=counts,
    submissions=counts,
    fault_injections=counts,
    meter_dropped=counts,
    meter_duplicated=counts,
    billed_gb_seconds=finite,
    true_gb_seconds=finite,
    wall_seconds=finite,
    done=st.booleans(),
)

series_points = st.builds(
    SeriesPoint,
    shard=names,
    epoch=counts,
    time_seconds=finite,
    completions=counts,
    shared_stall_fraction=finite,
    fault_injections=counts,
    meter_dropped=counts,
    billing_error_fraction=finite,
)

spans = st.builds(
    TraceSpan,
    name=names,
    trace_id=names,
    span_id=names,
    parent_id=st.one_of(st.just(""), names),
    start_unix_seconds=finite,
    duration_seconds=finite,
    tags=st.dictionaries(names, st.one_of(finite, counts, names), max_size=4),
)

calibration_events = st.builds(
    CalibrationEvent,
    kind=st.sampled_from(["round", "candidate", "republish"]),
    round_index=counts,
    parameter=names,
    value=finite,
    mape=finite,
    threshold=finite,
    drift_detected=st.booleans(),
    candidate_index=counts,
    candidates_total=counts,
    fingerprint=names,
)


def roundtrip(kind, record):
    """wrap → JSON text → unwrap → decode, as the real pipeline does."""
    line = json.dumps(wrap(kind, record.to_dict()), sort_keys=True)
    unwrapped = unwrap(json.loads(line))
    assert unwrapped is not None
    got_kind, payload = unwrapped
    assert got_kind == kind
    return decode(got_kind, payload)


class TestEnvelopeRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(record=snapshots)
    def test_snapshot_roundtrip(self, record):
        assert roundtrip("snapshot", record) == record

    @settings(max_examples=50, deadline=None)
    @given(record=series_points)
    def test_series_roundtrip(self, record):
        assert roundtrip("series", record) == record

    @settings(max_examples=50, deadline=None)
    @given(record=spans)
    def test_span_roundtrip(self, record):
        assert roundtrip("span", record) == record

    @settings(max_examples=50, deadline=None)
    @given(record=calibration_events)
    def test_calibration_roundtrip(self, record):
        # The event's own ``kind`` field collides with the envelope key;
        # wrap() stores it as ``event`` and decode() maps it back.
        assert roundtrip("calibration", record) == record

    def test_wrap_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            wrap("mystery", {})


class TestEnvelopeForwardCompatibility:
    def test_unknown_kind_is_skipped_with_warning(self):
        with pytest.warns(EnvelopeWarning, match="unknown kind"):
            assert unwrap({"v": 1, "kind": "hologram"}) is None

    def test_future_version_is_skipped_with_warning(self):
        with pytest.warns(EnvelopeWarning, match="future schema"):
            assert unwrap({"v": ENVELOPE_VERSION + 1, "kind": "snapshot"}) is None

    def test_unversioned_record_is_skipped_with_warning(self):
        with pytest.warns(EnvelopeWarning, match="unversioned"):
            assert unwrap({"kind": "snapshot"}) is None

    def test_read_records_survives_garbage_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        good = wrap("series", point(4).to_dict())
        lines = [
            "not json at all",
            '"a bare string"',
            json.dumps({"v": 99, "kind": "snapshot"}),
            json.dumps({"v": 1, "kind": "wormhole"}),
            json.dumps(good),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.warns(EnvelopeWarning):
            records = list(read_records(path))
        assert len(records) == 1
        assert records[0][0] == "series"

    def test_summarize_survives_unknown_records(self, tmp_path):
        from repro.obs.analyze import summarize

        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"v": 99, "kind": "snapshot"})
            + "\n"
            + json.dumps(wrap("series", point(8).to_dict()))
            + "\n",
            encoding="utf-8",
        )
        with pytest.warns(EnvelopeWarning):
            summary = summarize(path)
        assert summary["series"]["points"] == 1


# --------------------------------------------------------------------- #
# Collector: multi-kind dispatch and the stop() shutdown contract
# --------------------------------------------------------------------- #
def snapshot(shard="0", *, epochs=100, wall=2.0, done=False, **overrides):
    base = dict(
        backend="vector",
        scenarios_total=1,
        scenarios_done=1 if done else 0,
        epochs_done=epochs,
        epochs_total=400,
        completions=10,
        submissions=12,
        fault_injections=0,
        meter_dropped=0,
        meter_duplicated=0,
        billed_gb_seconds=1.0,
        true_gb_seconds=1.0,
        done=done,
    )
    base.update(overrides)
    return ProgressSnapshot(shard=shard, wall_seconds=wall, **base)


class TestCollectorKinds:
    def test_all_kinds_written_enveloped(self, tmp_path):
        out = tmp_path / "mixed.jsonl"
        q: "queue.Queue" = queue.Queue()
        collector = MetricsCollector(q, out_path=out).start()
        tracer = Tracer(sink=q.put)
        tracer.finish(tracer.start("shard-0", tags={"phase": "shard"}))
        q.put(snapshot(done=True))
        buffer = SeriesBuffer(budget=8)
        buffer.offer(point(2))
        q.put(buffer.batch("0"))
        q.put(CalibrationEvent(kind="round", round_index=0, parameter="p"))
        collector.stop()
        kinds = sorted(
            json.loads(line)["kind"]
            for line in out.read_text(encoding="utf-8").splitlines()
        )
        assert kinds == ["calibration", "series", "snapshot", "span"]
        assert collector.spans_seen == 1
        assert collector.series_points_seen == 1

    def test_span_overhead_aggregation(self):
        q: "queue.Queue" = queue.Queue()
        collector = MetricsCollector(q).start()
        worker = Tracer(sink=q.put)
        span = worker.start("shard-0")
        worker.add_overhead(0.5)
        worker.finish(span, root=True)
        collector.stop()
        assert collector.span_overhead_seconds >= 0.5

    def test_summary_aggregate_throughput(self):
        q: "queue.Queue" = queue.Queue()
        collector = MetricsCollector(q).start()
        q.put(snapshot("0", epochs=100, wall=2.0, done=True))
        q.put(snapshot("1", epochs=300, wall=4.0, done=True))
        collector.stop()
        summary = collector.summary()
        # Shards run concurrently: total epochs over the longest wall.
        assert summary["epochs"] == 400
        assert summary["wall_seconds"] == pytest.approx(4.0)
        assert summary["epochs_per_second"] == pytest.approx(100.0)

    def test_summary_without_snapshots_has_zero_rate(self):
        q: "queue.Queue" = queue.Queue()
        collector = MetricsCollector(q).start()
        collector.stop()
        summary = collector.summary()
        assert summary["epochs_per_second"] == 0.0
        assert summary["wall_seconds"] == 0.0


class TestCollectorStopRace:
    def test_stop_drains_queued_records_before_close(self, tmp_path):
        out = tmp_path / "drain.jsonl"
        q: "queue.Queue" = queue.Queue()
        collector = MetricsCollector(q, out_path=out).start()
        # Force the drain thread to exit while records are still being
        # queued: stop() must then drain the stragglers inline before
        # closing the file.
        collector._stopping.set()
        collector._thread.join(timeout=5.0)
        assert not collector._thread.is_alive()
        for index in range(50):
            q.put(snapshot(str(index), done=True))
        collector.stop()
        lines = out.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 50

    def test_no_write_after_stop_returns(self, tmp_path):
        out = tmp_path / "closed.jsonl"
        q: "queue.Queue" = queue.Queue()
        collector = MetricsCollector(q, out_path=out).start()
        q.put(snapshot("0", done=True))
        collector.stop()
        before = out.read_text(encoding="utf-8")
        # A straggler record delivered after stop() must be dropped
        # silently, never raise ValueError on the closed file.
        collector._handle(snapshot("late", done=True))
        assert out.read_text(encoding="utf-8") == before

    def test_stop_is_idempotent(self, tmp_path):
        out = tmp_path / "twice.jsonl"
        q: "queue.Queue" = queue.Queue()
        collector = MetricsCollector(q, out_path=out).start()
        collector.stop()
        collector.stop()
