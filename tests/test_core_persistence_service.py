"""Tests for calibration persistence, the billing service and the CLI."""

import json

import pytest

from repro.core.estimator import CongestionEstimator
from repro.core.persistence import (
    calibration_from_dict,
    calibration_to_dict,
    load_calibration,
    save_calibration,
)
from repro.core.service import LitmusBillingService
from repro.hardware.cpu import CPU
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.churn import ChurnManager
from repro.platform.engine import SimulationEngine
from repro.platform.scheduler import DedicatedCoreScheduler
from repro.workloads.runtimes import Language
from repro.workloads.synthetic import WorkloadMixer
from repro.workloads.traffic import GeneratorKind
from repro import cli


class TestPersistence:
    def test_round_trip_preserves_tables(self, small_calibration, tmp_path):
        path = save_calibration(small_calibration, tmp_path / "calibration.json")
        assert path.exists()
        loaded = load_calibration(path)

        assert loaded.machine.name == small_calibration.machine.name
        assert loaded.stress_levels == small_calibration.stress_levels
        assert loaded.scenario.name == small_calibration.scenario.name
        assert len(loaded.congestion_table) == len(small_calibration.congestion_table)
        assert len(loaded.performance_table) == len(small_calibration.performance_table)

        original = small_calibration.performance_table.get(GeneratorKind.MB, 12)
        restored = loaded.performance_table.get(GeneratorKind.MB, 12)
        assert restored.total_slowdown == pytest.approx(original.total_slowdown)
        baseline = loaded.startup_baselines[Language.PYTHON]
        assert baseline.private_seconds == pytest.approx(
            small_calibration.startup_baselines[Language.PYTHON].private_seconds
        )

    def test_round_trip_supports_estimation(self, small_calibration, tmp_path):
        path = save_calibration(small_calibration, tmp_path / "calibration.json")
        loaded = load_calibration(path)
        original_quality = CongestionEstimator(small_calibration).regression_quality()
        restored_quality = CongestionEstimator(loaded).regression_quality()
        for key, value in original_quality.items():
            assert restored_quality[key] == pytest.approx(value, rel=1e-9)

    def test_serialized_form_is_plain_json(self, small_calibration):
        payload = calibration_to_dict(small_calibration)
        text = json.dumps(payload)
        assert "congestion_table" in text
        rebuilt = calibration_from_dict(json.loads(text))
        assert rebuilt.generators == small_calibration.generators

    def test_unknown_format_version_rejected(self, small_calibration):
        payload = calibration_to_dict(small_calibration)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            calibration_from_dict(payload)


@pytest.fixture(scope="module")
def billed_service(small_calibration, small_registry, small_oracle):
    """A billing service fed with a handful of congested invocations."""
    service = LitmusBillingService(small_calibration, oracle=small_oracle)
    engine = SimulationEngine(CPU(CASCADE_LAKE_5218), DedicatedCoreScheduler())
    tests = [small_registry.get("aes-py"), small_registry.get("float-py")]
    invocations = [engine.submit(spec, thread_id=i) for i, spec in enumerate(tests)]
    churn = ChurnManager(
        WorkloadMixer(small_registry.all(), seed=17), 10, thread_ids=list(range(2, 12))
    )
    churn.attach(engine)
    assert engine.run_until(
        lambda e: all(inv.is_completed for inv in invocations), max_seconds=60.0
    )
    service.bill_completed(invocations, tenant="acme")
    return service


class TestBillingService:
    def test_records_created(self, billed_service):
        records = billed_service.records
        assert len(records) == 2
        assert {record.tenant for record in records} == {"acme"}
        for record in records:
            assert record.litmus_price <= record.commercial_price
            assert record.ideal_price is not None
            assert 0.0 <= record.discount < 1.0
            assert record.refund >= 0.0

    def test_summary_totals(self, billed_service):
        summary = billed_service.summary()
        assert summary.records == 2
        assert summary.litmus_total <= summary.commercial_total
        assert summary.average_discount >= 0.0
        assert summary.average_ideal_discount is not None

    def test_summary_filtered_by_tenant(self, billed_service):
        assert billed_service.summary(tenant="acme").records == 2
        assert billed_service.summary(tenant="other").records == 0

    def test_summary_by_function(self, billed_service):
        per_function = billed_service.summary_by_function()
        assert set(per_function) == {"aes-py", "float-py"}
        assert all(s.records == 1 for s in per_function.values())

    def test_average_normalized_price(self, billed_service):
        assert 0.5 < billed_service.average_normalized_price() <= 1.0

    def test_empty_ledger_rejected(self, small_calibration):
        service = LitmusBillingService(small_calibration)
        with pytest.raises(ValueError):
            service.average_normalized_price()


class TestCli:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig11" in output
        assert "table1" in output

    def test_registry_command(self, capsys):
        assert cli.main(["registry"]) == 0
        output = capsys.readouterr().out
        assert "aes-py" in output
        assert "Table 1" in output

    def test_run_unknown_figure(self, capsys):
        assert cli.main(["run", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_run_table1_with_output(self, tmp_path, capsys):
        output_file = tmp_path / "table1.txt"
        assert cli.main(["run", "table1", "--output", str(output_file)]) == 0
        assert output_file.exists()
        assert "Table 1" in output_file.read_text(encoding="utf-8")

    def test_every_figure_is_registered(self):
        expected = {f"fig{i:02d}" for i in range(1, 22)} | {"table1"}
        assert expected <= set(cli.FIGURE_MODULES)

    def test_all_registered_runners_resolve(self):
        for name in cli.FIGURE_MODULES:
            runner = cli._resolve_runner(name)
            assert callable(runner)
