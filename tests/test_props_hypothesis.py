"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.analysis.errors import price_error_breakdown
from repro.analysis.stats import geometric_mean
from repro.core.pricing import charging_rate
from repro.core.regression import (
    LinearRegressionModel,
    log_interpolation_weight,
)
from repro.hardware.cache import CacheDemand, SharedCacheModel
from repro.hardware.contention import ContentionModel, WorkloadDemand
from repro.hardware.cpu import CPU
from repro.hardware.memory import MemoryBandwidthModel, MemoryLoad
from repro.hardware.pmu import PMUCounters
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.scheduler import LeastOccupancyScheduler, SwitchingOverheadModel
from repro.workloads.registry import default_registry

_MODEL = ContentionModel(CASCADE_LAKE_5218)

positive_floats = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False)


# --------------------------------------------------------------------- #
# Cache allocation invariants
# --------------------------------------------------------------------- #
cache_demands = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e9),   # request rate
        st.floats(min_value=0.1, max_value=200.0),  # working set MB
        st.floats(min_value=0.0, max_value=1.0),    # solo hit fraction
    ),
    min_size=1,
    max_size=24,
)


@given(cache_demands)
@settings(max_examples=60, deadline=None)
def test_cache_allocation_invariants(raw_demands):
    model = SharedCacheModel(capacity_mb=22.0)
    demands = [
        CacheDemand(
            workload_id=index,
            request_rate=rate,
            working_set_mb=ws,
            solo_hit_fraction=hit,
        )
        for index, (rate, ws, hit) in enumerate(raw_demands)
    ]
    allocations = model.allocate(demands)
    # Every demand receives an allocation entry.
    assert set(allocations) == {d.workload_id for d in demands}
    active = [d for d in demands if d.request_rate > 0 and d.working_set_mb > 0]
    total_active = sum(allocations[d.workload_id].allocated_mb for d in active)
    # Active workloads never receive more than the cache capacity in total.
    assert total_active <= 22.0 + 1e-6
    for demand in demands:
        allocation = allocations[demand.workload_id]
        assert 0.0 <= allocation.hit_fraction <= demand.solo_hit_fraction + 1e-9
        assert allocation.allocated_mb <= min(demand.working_set_mb, 22.0) + 1e-9


# --------------------------------------------------------------------- #
# Contention model invariants
# --------------------------------------------------------------------- #
workload_demands = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5e8),
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=1.0, max_value=10.0),
    ),
    min_size=1,
    max_size=16,
)


@given(workload_demands)
@settings(max_examples=40, deadline=None)
def test_contention_penalties_are_physical(raw):
    demands = [
        WorkloadDemand(
            workload_id=index,
            l2_miss_rate=rate,
            working_set_mb=ws,
            solo_l3_hit_fraction=hit,
            mlp=mlp,
        )
        for index, (rate, ws, hit, mlp) in enumerate(raw)
    ]
    penalties = _MODEL.evaluate(demands)
    machine = CASCADE_LAKE_5218
    for demand in demands:
        penalty = penalties[demand.workload_id]
        assert 0.0 <= penalty.l3_hit_fraction <= 1.0
        assert penalty.l3_hit_latency_cycles >= machine.l3.latency_cycles - 1e-9
        assert penalty.memory_latency_cycles >= machine.memory_latency_cycles - 1e-9
        assert penalty.private_inflation >= 1.0
        assert penalty.stall_cycles_per_l2_miss(demand.mlp) > 0.0


# --------------------------------------------------------------------- #
# Memory latency monotonicity
# --------------------------------------------------------------------- #
@given(
    st.floats(min_value=0.0, max_value=200e9),
    st.floats(min_value=0.0, max_value=200e9),
)
@settings(max_examples=60, deadline=None)
def test_memory_latency_monotone(load_a, load_b):
    model = MemoryBandwidthModel(peak_bandwidth_gbs=100.0, unloaded_latency_cycles=238.0)
    low, high = sorted((load_a, load_b))
    assert model.effective_latency_cycles(MemoryLoad(low)) <= model.effective_latency_cycles(
        MemoryLoad(high)
    ) + 1e-9


# --------------------------------------------------------------------- #
# PMU counters
# --------------------------------------------------------------------- #
counter_batches = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e9),
        st.floats(min_value=0, max_value=1e9),
        st.floats(min_value=0, max_value=1e9),
    ),
    min_size=1,
    max_size=20,
)


@given(counter_batches)
@settings(max_examples=60, deadline=None)
def test_pmu_accumulation_matches_sum(batches):
    pmu = PMUCounters()
    for cycles, instructions, stalls in batches:
        stalls = min(stalls, cycles)
        pmu.observe(cycles=cycles, instructions=instructions, stall_cycles_l2_miss=stalls)
    assert math.isclose(
        pmu.cycles, sum(c for c, _, _ in batches), rel_tol=1e-9, abs_tol=1e-6
    )
    assert pmu.private_cycles >= 0.0
    # private + shared re-derives cycles through `(cycles - stalls) + stalls`,
    # which floating point does not guarantee to be exact (and the max(.., 0)
    # clamp in private_cycles can absorb a last-ulp accumulation difference
    # between the two sums), so compare with tolerance rather than `==`.
    assert math.isclose(
        pmu.private_cycles + pmu.shared_cycles,
        pmu.cycles,
        rel_tol=1e-9,
        abs_tol=1e-6,
    )
    snapshot = pmu.snapshot()
    assert snapshot.delta(snapshot).cycles == 0.0


# --------------------------------------------------------------------- #
# Regression + interpolation
# --------------------------------------------------------------------- #
@given(
    st.floats(min_value=-5, max_value=5),
    st.floats(min_value=-10, max_value=10),
    st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=20, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_linear_regression_recovers_exact_lines(slope, intercept, xs):
    ys = [intercept + slope * x for x in xs]
    model = LinearRegressionModel.fit(xs, ys)
    assert math.isclose(model.predict(0.0), intercept, rel_tol=1e-6, abs_tol=1e-6)
    for x, y in zip(xs, ys):
        assert math.isclose(model.predict(x), y, rel_tol=1e-6, abs_tol=1e-5)


@given(positive_floats, positive_floats, positive_floats)
@settings(max_examples=100, deadline=None)
def test_log_interpolation_weight_bounded(value, low, high):
    weight = log_interpolation_weight(value, low, high)
    assert 0.0 <= weight <= 1.0


@given(st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_geometric_mean_within_bounds(values):
    mean = geometric_mean(values)
    assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


# --------------------------------------------------------------------- #
# Pricing invariants
# --------------------------------------------------------------------- #
@given(st.floats(min_value=0.01, max_value=100), st.floats(min_value=0.01, max_value=100))
@settings(max_examples=100, deadline=None)
def test_charging_rate_never_exceeds_base(base, slowdown):
    rate = charging_rate(base, slowdown)
    assert 0.0 < rate <= base + 1e-12


@given(
    st.floats(min_value=1, max_value=60),
    st.floats(min_value=1, max_value=60),
)
@settings(max_examples=60, deadline=None)
def test_switching_overhead_monotone(count_a, count_b):
    model = SwitchingOverheadModel()
    low, high = sorted((count_a, count_b))
    assert model.factor(low) <= model.factor(high) + 1e-12
    assert model.factor(high) <= model.saturation_factor() + 1e-12


@given(
    st.floats(min_value=0.01, max_value=10),
    st.floats(min_value=0.0, max_value=10),
    st.floats(min_value=0.01, max_value=10),
    st.floats(min_value=0.01, max_value=10),
)
@settings(max_examples=80, deadline=None)
def test_price_error_weighted_components_sum_to_total(lit_private, lit_shared, ideal_private, ideal_shared):
    breakdown = price_error_breakdown(
        function="prop",
        litmus_private=lit_private,
        litmus_shared=lit_shared,
        ideal_private=ideal_private,
        ideal_shared=ideal_shared,
    )
    assert math.isclose(
        breakdown.private_error + breakdown.shared_error,
        breakdown.total_error,
        rel_tol=1e-9,
        abs_tol=1e-9,
    )


# --------------------------------------------------------------------- #
# Engine fast path: skip-ahead must be bit-identical to epoch stepping
# --------------------------------------------------------------------- #
_PROP_SPECS = default_registry().scaled(0.05).all()

#: (spec index, submit epoch, preferred thread) triples — a randomized
#: submission schedule over a pool of temporally shared threads.
submission_schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_PROP_SPECS) - 1),
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=8,
)


def _run_schedule(schedule, fast_path):
    cpu = CPU(CASCADE_LAKE_5218)
    engine = SimulationEngine(
        cpu,
        LeastOccupancyScheduler(allowed_threads=list(range(6)), max_per_thread=8),
        config=EngineConfig(fast_path=fast_path),
    )
    dt = engine.config.epoch_seconds
    submitted = []
    current_epoch = 0
    for spec_index, submit_epoch, thread_id in sorted(
        schedule, key=lambda item: item[1]
    ):
        if submit_epoch > current_epoch:
            engine.run_for((submit_epoch - current_epoch) * dt)
            current_epoch = submit_epoch
        submitted.append(
            engine.submit(_PROP_SPECS[spec_index], thread_id=thread_id % 6)
        )
    finished = engine.run_until(
        lambda eng: all(invocation.is_completed for invocation in submitted),
        max_seconds=120.0,
    )
    assert finished
    return engine, submitted


@given(submission_schedules)
@settings(max_examples=12, deadline=None)
def test_fast_path_bit_identical_to_epoch_stepping(schedule):
    """Skip-ahead + penalty memoization must not change one bit of state."""
    fast_engine, fast_invocations = _run_schedule(schedule, fast_path=True)
    slow_engine, slow_invocations = _run_schedule(schedule, fast_path=False)

    assert fast_engine.time_seconds == slow_engine.time_seconds
    assert (
        fast_engine.cpu.global_counters.snapshot()
        == slow_engine.cpu.global_counters.snapshot()
    )
    for fast, slow in zip(fast_invocations, slow_invocations):
        assert fast.invocation_id == slow.invocation_id
        assert fast.start_time == slow.start_time
        assert fast.finish_time == slow.finish_time
        assert fast.counters.snapshot() == slow.counters.snapshot()
        assert fast.startup_end_time == slow.startup_end_time
        assert fast.startup_counters == slow.startup_counters
        assert (
            fast.machine_counters_at_startup_end
            == slow.machine_counters_at_startup_end
        )
        assert fast.mean_thread_occupancy == slow.mean_thread_occupancy


# --------------------------------------------------------------------- #
# Fused contention evaluation == reference evaluation, bit for bit
# --------------------------------------------------------------------- #
@given(workload_demands)
@settings(max_examples=40, deadline=None)
def test_evaluate_tuples_matches_evaluate(raw):
    demands = [
        WorkloadDemand(
            workload_id=index,
            l2_miss_rate=rate,
            working_set_mb=ws,
            solo_l3_hit_fraction=hit,
            mlp=mlp,
        )
        for index, (rate, ws, hit, mlp) in enumerate(raw)
    ]
    entries = [
        (d.workload_id, d.l2_miss_rate, d.working_set_mb, d.solo_l3_hit_fraction, d.mlp)
        for d in demands
    ]
    reference = _MODEL.evaluate(demands)
    fused = _MODEL.evaluate_tuples(entries)
    assert set(fused) == set(reference)
    for workload_id, penalty in reference.items():
        assert fused[workload_id] == penalty
