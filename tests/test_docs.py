"""Docs-tree health: the pages exist and intra-repo links resolve.

The CI ``docs`` job runs the same link checker plus the markdown
doctests; this test keeps broken links visible in local tier-1 runs too.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_docs_pages_exist():
    for page in (
        "architecture.md",
        "backends.md",
        "scenarios.md",
        "chaos.md",
        "observability.md",
        "streaming.md",
    ):
        assert (ROOT / "docs" / page).is_file(), f"missing docs/{page}"


def test_markdown_links_resolve():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs_links.py")],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert result.returncode == 0, result.stderr or result.stdout
