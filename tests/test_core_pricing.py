"""Tests for the pricing engines (commercial, ideal, Litmus, POPPA, Method 1)."""

import pytest

from repro.core.litmus_test import LitmusObservation
from repro.core.poppa import PoppaPricing
from repro.core.pricing import (
    CommercialPricing,
    IdealPricing,
    LitmusPricingEngine,
    PricingComponents,
    charging_rate,
)
from repro.core.sharing import Method1Adjustment
from repro.hardware.cpu import CPU
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.engine import SimulationEngine
from repro.platform.metering import measure_invocation
from repro.platform.scheduler import DedicatedCoreScheduler
from repro.workloads.runtimes import Language
from repro.workloads.traffic import mb_gen


class TestChargingRate:
    def test_no_congestion_means_full_rate(self):
        assert charging_rate(1.0, 1.0) == pytest.approx(1.0)

    def test_rate_discounted_by_slowdown(self):
        assert charging_rate(1.0, 2.0) == pytest.approx(0.5)

    def test_rate_never_exceeds_base(self):
        assert charging_rate(1.0, 0.5) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            charging_rate(0.0, 1.0)
        with pytest.raises(ValueError):
            charging_rate(1.0, 0.0)


class TestCommercialAndIdealPricing:
    def test_commercial_price_is_time_times_memory(self):
        components = PricingComponents(
            t_private_seconds=0.08, t_shared_seconds=0.02, memory_gb=0.5
        )
        price = CommercialPricing(rate_per_gb_second=2.0).price(components)
        assert price.total == pytest.approx(2.0 * 0.5 * 0.1)
        assert price.private == pytest.approx(2.0 * 0.5 * 0.08)

    def test_components_validation(self):
        with pytest.raises(ValueError):
            PricingComponents(t_private_seconds=-1, t_shared_seconds=0, memory_gb=1)
        with pytest.raises(ValueError):
            PricingComponents(t_private_seconds=1, t_shared_seconds=0, memory_gb=0)

    def test_ideal_price_charges_solo_time(self, oracle, small_registry):
        spec = small_registry.get("aes-py")
        solo = oracle.profile(spec)
        price = IdealPricing().price(spec.memory_gb, solo)
        assert price.total == pytest.approx(spec.memory_gb * solo.t_total_seconds)


@pytest.fixture(scope="module")
def congested_invocation():
    """One aes-py invocation run against MB-Gen congestion."""
    from repro.workloads.registry import default_registry

    spec = default_registry().scaled(0.25).get("aes-py")
    engine = SimulationEngine(CPU(CASCADE_LAKE_5218), DedicatedCoreScheduler())
    victim = engine.submit(spec, thread_id=0)
    for index, gen_spec in enumerate(mb_gen(10).thread_specs()):
        engine.submit(gen_spec, thread_id=index + 1)
    assert engine.run_until(lambda e: victim.is_completed, max_seconds=60.0)
    return victim


class TestLitmusPricingEngine:
    def test_quote_discounts_against_commercial(self, small_estimator, congested_invocation):
        engine = LitmusPricingEngine(small_estimator)
        quote = engine.quote(congested_invocation)
        assert quote.litmus.total <= quote.commercial.total + 1e-12
        assert 0.0 <= quote.discount < 1.0
        assert quote.normalized_price == pytest.approx(
            quote.litmus.total / quote.commercial.total
        )

    def test_discount_tracks_actual_slowdown(self, small_estimator, small_oracle, congested_invocation, small_registry):
        engine = LitmusPricingEngine(small_estimator)
        quote = engine.quote(congested_invocation)
        solo = small_oracle.profile(small_registry.get("aes-py"))
        actual_slowdown = (
            measure_invocation(congested_invocation).t_total_seconds / solo.t_total_seconds
        )
        ideal_discount = 1.0 - 1.0 / actual_slowdown
        # Litmus is an estimate, not an oracle: allow a generous band.
        assert quote.discount == pytest.approx(ideal_discount, abs=0.1)

    def test_method1_adjusts_probe_before_estimation(self, small_estimator, congested_invocation):
        plain = LitmusPricingEngine(small_estimator).quote(congested_invocation)
        method1 = LitmusPricingEngine(
            small_estimator, method1=Method1Adjustment(functions_per_thread=10)
        ).quote(congested_invocation)
        # Method 1 removes the switching overhead from the probe reading, so
        # its congestion estimate can only be lower or equal...
        assert method1.estimate.private_slowdown <= plain.estimate.private_slowdown + 1e-12
        assert method1.observation.private_slowdown < plain.observation.private_slowdown
        # ...while the price stays within a whisker of the plain quote in a
        # dedicated-core environment (there is no real switching overhead to
        # compensate here).
        assert method1.litmus.total == pytest.approx(plain.litmus.total, rel=0.02)

    def test_uncongested_invocation_gets_tiny_discount(self, small_estimator, small_registry):
        spec = small_registry.get("fib-go")
        engine = SimulationEngine(CPU(CASCADE_LAKE_5218), DedicatedCoreScheduler())
        invocation = engine.submit(spec)
        assert engine.run_until(lambda e: invocation.is_completed, max_seconds=30.0)
        quote = LitmusPricingEngine(small_estimator).quote(invocation)
        assert quote.discount < 0.05


class TestMethod1Adjustment:
    def test_adjusts_private_slowdown_only(self):
        adjustment = Method1Adjustment(functions_per_thread=10)
        observation = LitmusObservation(
            function="x",
            language=Language.PYTHON,
            private_slowdown=1.05,
            shared_slowdown=2.0,
            total_slowdown=1.2,
            machine_l3_misses=1e5,
            startup_wall_seconds=0.0,
        )
        adjusted = adjustment.adjust_observation(observation)
        assert adjusted.private_slowdown < observation.private_slowdown
        assert adjusted.shared_slowdown == observation.shared_slowdown

    def test_switching_factor_matches_model(self):
        adjustment = Method1Adjustment(functions_per_thread=10)
        assert adjustment.switching_factor == pytest.approx(1.023, abs=0.005)

    def test_validation(self):
        with pytest.raises(ValueError):
            Method1Adjustment(functions_per_thread=0)


class TestPoppaPricing:
    def test_quote_matches_ideal_and_accounts_overhead(self, small_oracle, small_registry, congested_invocation):
        solo = small_oracle.profile(small_registry.get("aes-py"))
        measurement = measure_invocation(congested_invocation)
        poppa = PoppaPricing(sampling_interval_seconds=0.01, sample_window_seconds=0.001)
        quote = poppa.quote(measurement, solo, co_running_functions=10)
        assert quote.price.total <= quote.commercial.total
        assert quote.measured_slowdown >= 1.0
        assert quote.sample_count >= 1
        assert quote.sampling_overhead_core_seconds > 0
        assert quote.discount == pytest.approx(1.0 - 1.0 / quote.measured_slowdown, rel=1e-6)

    def test_litmus_has_no_sampling_overhead_poppa_does(self, small_oracle, small_registry, congested_invocation):
        # The central practicality claim: POPPA stalls co-runners, Litmus does not.
        solo = small_oracle.profile(small_registry.get("aes-py"))
        measurement = measure_invocation(congested_invocation)
        quote = PoppaPricing().quote(measurement, solo, co_running_functions=100)
        assert quote.sampling_overhead_core_seconds > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PoppaPricing(sampling_interval_seconds=0.001, sample_window_seconds=0.01)
        with pytest.raises(ValueError):
            PoppaPricing(rate_per_gb_second=0)
