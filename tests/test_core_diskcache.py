"""The versioned on-disk cache: hits, misses, version invalidation, wiring."""

import json

import pytest

from repro import diskcache
from repro.core.calibration import (
    CalibrationScenario,
    calibrate_cached,
    clear_calibration_cache,
)
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.oracle import SoloOracle, SoloProfile
from repro.workloads.registry import default_registry


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    return tmp_path


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "sub" / "file.json"
        diskcache.atomic_write_text(target, "one")
        assert target.read_text(encoding="utf-8") == "one"
        diskcache.atomic_write_text(target, "two")
        assert target.read_text(encoding="utf-8") == "two"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "file.json"
        diskcache.atomic_write_text(target, "payload")
        assert [entry.name for entry in tmp_path.iterdir()] == ["file.json"]

    def test_benchlog_append_uses_atomic_write(self, tmp_path):
        from repro import benchlog

        path = tmp_path / "BENCH_engine.json"
        benchlog.append_run({"figA": 1.0}, source="test", path=path)
        benchlog.append_run({"figB": 2.0}, source="test", path=path)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert len(document["runs"]) == 2
        leftovers = {entry.name for entry in tmp_path.iterdir()}
        assert leftovers <= {"BENCH_engine.json", "BENCH_engine.json.lock"}

    def test_benchlog_concurrent_appends_lose_nothing(self, tmp_path):
        import threading

        from repro import benchlog

        if benchlog.fcntl is None:
            pytest.skip("appender lock needs fcntl; best-effort on this platform")

        path = tmp_path / "BENCH_engine.json"
        threads = [
            threading.Thread(
                target=benchlog.append_run,
                args=({f"fig{i}": float(i)},),
                kwargs={"source": "test", "path": path},
            )
            for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        document = json.loads(path.read_text(encoding="utf-8"))
        assert len(document["runs"]) == 12


class TestDiskCachePrimitives:
    def test_store_then_load_round_trips(self, cache_dir):
        payload = {"value": 1.5, "nested": {"xs": [1.0, 2.0]}}
        path = diskcache.store("thing", "abc", payload)
        assert path is not None and path.exists()
        assert diskcache.load("thing", "abc") == payload

    def test_load_misses_on_unknown_key(self, cache_dir):
        assert diskcache.load("thing", "missing") is None

    def test_version_mismatch_invalidates(self, cache_dir):
        path = diskcache.store("thing", "abc", {"value": 1})
        document = json.loads(path.read_text())
        document["cache_version"] = diskcache.CACHE_VERSION - 1
        path.write_text(json.dumps(document))
        assert diskcache.load("thing", "abc") is None

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        path = diskcache.store("thing", "abc", {"value": 1})
        path.write_text("not json {")
        assert diskcache.load("thing", "abc") is None

    def test_disabled_cache_never_stores(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        assert diskcache.store("thing", "abc", {"value": 1}) is None
        assert diskcache.load("thing", "abc") is None
        assert not list(cache_dir.iterdir())

    def test_fingerprint_is_stable_and_sensitive(self):
        machine = CASCADE_LAKE_5218
        assert diskcache.fingerprint(machine, 1) == diskcache.fingerprint(machine, 1)
        assert diskcache.fingerprint(machine, 1) != diskcache.fingerprint(machine, 2)

    def test_registry_fingerprint_changes_with_scaling(self):
        registry = default_registry()
        assert diskcache.registry_fingerprint(
            registry.all()
        ) != diskcache.registry_fingerprint(registry.scaled(0.5).all())


class TestSoloProfileDiskCache:
    def test_profile_round_trips_through_disk(self, cache_dir):
        machine = CASCADE_LAKE_5218
        spec = default_registry().scaled(0.1).get("auth-py")

        first = SoloOracle(machine)
        profile = first.profile(spec)
        assert len(list(cache_dir.glob("solo-*.json"))) == 1

        # A fresh oracle (empty in-memory cache) must load from disk and get
        # bit-identical measurements.
        second = SoloOracle(machine)
        loaded = second.profile(spec)
        assert loaded.execution == profile.execution
        assert loaded.startup == profile.startup

    def test_disk_cache_can_be_disabled_per_oracle(self, cache_dir):
        machine = CASCADE_LAKE_5218
        spec = default_registry().scaled(0.1).get("auth-py")
        oracle = SoloOracle(machine, use_disk_cache=False)
        oracle.profile(spec)
        assert not list(cache_dir.glob("solo-*.json"))

    def test_dict_round_trip(self, cache_dir):
        machine = CASCADE_LAKE_5218
        spec = default_registry().scaled(0.1).get("auth-py")
        profile = SoloOracle(machine).profile(spec)
        assert SoloProfile.from_dict(profile.to_dict()).execution == profile.execution


class TestCalibrationDiskCache:
    @pytest.fixture()
    def small_args(self):
        return dict(
            registry=default_registry().scaled(0.1),
            stress_levels=(2,),
        )

    def test_second_process_equivalent_hit(self, cache_dir, small_args):
        machine = CASCADE_LAKE_5218
        scenario = CalibrationScenario.dedicated(2)
        clear_calibration_cache()
        first = calibrate_cached(machine, scenario, **small_args)
        assert len(list(cache_dir.glob("calibration-*.json"))) == 1

        # Clearing the in-memory layer simulates a fresh worker process: the
        # result must come back from disk with identical table contents.
        clear_calibration_cache()
        second = calibrate_cached(machine, scenario, **small_args)
        assert second.congestion_table.rows() == first.congestion_table.rows()
        assert second.performance_table.rows() == first.performance_table.rows()
        assert second.stress_levels == first.stress_levels
        # Still exactly one entry — the hit did not rewrite the file.
        assert len(list(cache_dir.glob("calibration-*.json"))) == 1

    def test_version_bump_recomputes(self, cache_dir, small_args, monkeypatch):
        machine = CASCADE_LAKE_5218
        scenario = CalibrationScenario.dedicated(2)
        clear_calibration_cache()
        calibrate_cached(machine, scenario, **small_args)
        entry = next(cache_dir.glob("calibration-*.json"))
        document = json.loads(entry.read_text())
        document["cache_version"] = diskcache.CACHE_VERSION + 1
        entry.write_text(json.dumps(document))

        clear_calibration_cache()
        calls = {"n": 0}
        from repro.core import calibration as calibration_module

        original = calibration_module.Calibrator.calibrate

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(calibration_module.Calibrator, "calibrate", counting)
        calibrate_cached(machine, scenario, **small_args)
        assert calls["n"] == 1  # stale version ignored, sweep recomputed

    def test_different_registry_different_entry(self, cache_dir, small_args):
        machine = CASCADE_LAKE_5218
        scenario = CalibrationScenario.dedicated(2)
        clear_calibration_cache()
        calibrate_cached(machine, scenario, **small_args)
        clear_calibration_cache()
        calibrate_cached(
            machine,
            scenario,
            registry=default_registry().scaled(0.2),
            stress_levels=(2,),
        )
        assert len(list(cache_dir.glob("calibration-*.json"))) == 2
