"""Tests for PMU counter accumulation and snapshots."""

import pytest

from repro.hardware.pmu import CounterSnapshot, PMUCounters


class TestPMUCounters:
    def test_observe_accumulates(self):
        pmu = PMUCounters()
        pmu.observe(cycles=100, instructions=80, stall_cycles_l2_miss=20, l2_misses=5)
        pmu.observe(cycles=50, instructions=40, stall_cycles_l2_miss=10, l3_misses=2)
        assert pmu.cycles == 150
        assert pmu.instructions == 120
        assert pmu.stall_cycles_l2_miss == 30
        assert pmu.l2_misses == 5
        assert pmu.l3_misses == 2

    def test_negative_increment_rejected(self):
        pmu = PMUCounters()
        with pytest.raises(ValueError, match="must be >= 0"):
            pmu.observe(cycles=-1)

    def test_private_and_shared_cycles(self):
        pmu = PMUCounters()
        pmu.observe(cycles=100, stall_cycles_l2_miss=30)
        assert pmu.private_cycles == 70
        assert pmu.shared_cycles == 30

    def test_ipc(self):
        pmu = PMUCounters()
        assert pmu.ipc == 0.0
        pmu.observe(cycles=200, instructions=100)
        assert pmu.ipc == pytest.approx(0.5)

    def test_merge(self):
        a = PMUCounters()
        b = PMUCounters()
        a.observe(cycles=10, instructions=5)
        b.observe(cycles=20, instructions=15, context_switches=1)
        a.merge(b)
        assert a.cycles == 30
        assert a.instructions == 20
        assert a.context_switches == 1

    def test_reset(self):
        pmu = PMUCounters()
        pmu.observe(cycles=10, elapsed_seconds=1.0)
        pmu.reset()
        assert pmu.cycles == 0
        assert pmu.elapsed_seconds == 0


class TestCounterSnapshot:
    def test_snapshot_is_immutable_copy(self):
        pmu = PMUCounters()
        pmu.observe(cycles=10)
        snapshot = pmu.snapshot()
        pmu.observe(cycles=10)
        assert snapshot.cycles == 10
        assert pmu.cycles == 20

    def test_delta(self):
        pmu = PMUCounters()
        pmu.observe(cycles=100, instructions=50, l3_misses=3, elapsed_seconds=0.5)
        before = pmu.snapshot()
        pmu.observe(cycles=40, instructions=20, l3_misses=1, elapsed_seconds=0.1)
        delta = pmu.snapshot().delta(before)
        assert delta.cycles == pytest.approx(40)
        assert delta.instructions == pytest.approx(20)
        assert delta.l3_misses == pytest.approx(1)
        assert delta.elapsed_seconds == pytest.approx(0.1)

    def test_shared_fraction_bounds(self):
        snap = CounterSnapshot(cycles=100, stall_cycles_l2_miss=25)
        assert snap.shared_fraction() == pytest.approx(0.25)
        assert CounterSnapshot().shared_fraction() == 0.0

    def test_private_cycles_never_negative(self):
        snap = CounterSnapshot(cycles=10, stall_cycles_l2_miss=20)
        assert snap.private_cycles == 0.0
