"""Property-based tests: chunk partitions never change the streamed ledger.

The streaming contract is stronger than "some chunk sizes work": *any*
partition of the epoch axis — ragged, single-epoch, one-big-chunk — must
leave the final per-tenant ledgers and per-scenario counters bit-identical
to an unchunked replay of the same spec.  Hypothesis searches partition
space for a counterexample; the reference is computed once per spec.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.scenarios import compile_spec, parse_spec_text, partition_plan

# Two cheap specs (~60 epochs, one scenario each): a healthy fleet and one
# carrying an engine fault plus a meter fault, so boundary actions and
# metering injection both sit inside the partition search space.
HEALTHY = """
name = "props-stream"
[sweep]
horizon_seconds = 0.06
registry_scale = 0.05
[grid]
mixes = ["all"]
machines = [1]
colocations = [2]
cores_per_machine = 4
"""

FAULTY = """
name = "props-stream-faulty"
[sweep]
horizon_seconds = 0.06
registry_scale = 0.05
[grid]
mixes = ["all"]
machines = [1]
colocations = [2]
cores_per_machine = 4
[[faults]]
type = "noisy-neighbor"
scenario = "all-m1-c2"
start_seconds = 0.02
duration_seconds = 0.02
count = 1
[[faults]]
type = "meter-dup"
scenario = "all-m1-c2"
probability = 0.3
"""

_COMPILED = {}
_REFERENCE = {}


def _compiled(text):
    if text not in _COMPILED:
        _COMPILED[text] = compile_spec(parse_spec_text(text))
    return _COMPILED[text]


def _reference(text):
    """Final scenario tuple of a one-chunk replay (== the batch result)."""
    if text not in _REFERENCE:
        from repro.serve import StreamReplay

        replay = StreamReplay(_compiled(text))
        total = replay.epochs_total
        for chunk in partition_plan(total, (total,)):
            replay.ingest(chunk)
        replay.drain()
        _REFERENCE[text] = replay.result().scenarios
    return _REFERENCE[text]


def _epochs_total(text):
    from repro.serve import StreamReplay

    return StreamReplay(_compiled(text)).epochs_total


@st.composite
def partitions(draw, total):
    """A random ordered list of positive sizes summing to ``total``."""
    sizes = []
    remaining = total
    while remaining > 0:
        size = draw(st.integers(min_value=1, max_value=remaining))
        sizes.append(size)
        remaining -= size
    return tuple(sizes)


def _assert_partition_matches(text, sizes):
    from repro.serve import StreamReplay

    replay = StreamReplay(_compiled(text))
    for chunk in partition_plan(replay.epochs_total, sizes):
        replay.ingest(chunk)
    replay.drain()
    assert replay.finished
    for streamed, expected in zip(replay.result().scenarios, _reference(text)):
        assert streamed.submitted == expected.submitted
        assert streamed.completed == expected.completed
        assert streamed.instructions == expected.instructions
        assert streamed.cycles == expected.cycles
        assert streamed.billing == expected.billing
        assert streamed.fault_stats == expected.fault_stats


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_any_partition_yields_identical_ledgers(data):
    text = HEALTHY
    sizes = data.draw(partitions(_epochs_total(text)))
    _assert_partition_matches(text, sizes)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_any_partition_yields_identical_ledgers_under_faults(data):
    text = FAULTY
    sizes = data.draw(partitions(_epochs_total(text)))
    _assert_partition_matches(text, sizes)


@pytest.mark.parametrize("text", (HEALTHY, FAULTY), ids=("healthy", "faulty"))
def test_single_epoch_partition_matches(text):
    total = _epochs_total(text)
    _assert_partition_matches(text, (1,) * total)
