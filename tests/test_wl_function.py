"""Tests for function specs and the phase cursor."""

import pytest

from repro.workloads.function import FunctionSpec, PhaseCursor
from repro.workloads.phases import ExecutionPhase, PhaseKind, ResourceProfile
from repro.workloads.registry import default_registry
from repro.workloads.runtimes import Language, runtime_for


def body_phase(instructions=1e6, name="body"):
    return ExecutionPhase(
        name=name,
        kind=PhaseKind.BODY,
        instructions=instructions,
        profile=ResourceProfile(
            cpi_base=0.5, l2_mpki=5.0, working_set_mb=4.0, solo_l3_hit_fraction=0.8
        ),
    )


def make_spec(instructions=1e6):
    return FunctionSpec(
        name="Test Function",
        abbreviation="test-py",
        language=Language.PYTHON,
        suite="test",
        memory_mb=128,
        body_phases=(body_phase(instructions),),
    )


class TestFunctionSpec:
    def test_phases_prepend_runtime_startup(self):
        spec = make_spec()
        phases = spec.phases
        startup_count = len(runtime_for(Language.PYTHON).startup_phases)
        assert len(phases) == startup_count + 1
        assert all(p.kind is PhaseKind.STARTUP for p in phases[:startup_count])
        assert phases[-1].kind is PhaseKind.BODY

    def test_instruction_accounting(self):
        spec = make_spec(2e6)
        assert spec.body_instructions == pytest.approx(2e6)
        assert spec.startup_instructions == pytest.approx(45e6)
        assert spec.total_instructions == pytest.approx(47e6)

    def test_memory_gb(self):
        assert make_spec().memory_gb == pytest.approx(0.125)

    def test_scaled_only_affects_body(self):
        spec = make_spec(2e6).scaled(0.5)
        assert spec.body_instructions == pytest.approx(1e6)
        assert spec.startup_instructions == pytest.approx(45e6)

    def test_body_phase_cannot_be_startup_kind(self):
        bad = ExecutionPhase(
            name="bad",
            kind=PhaseKind.STARTUP,
            instructions=1e6,
            profile=ResourceProfile(
                cpi_base=0.5, l2_mpki=1.0, working_set_mb=1.0, solo_l3_hit_fraction=0.9
            ),
        )
        with pytest.raises(ValueError):
            FunctionSpec(
                name="x",
                abbreviation="x",
                language=Language.PYTHON,
                suite="test",
                memory_mb=128,
                body_phases=(bad,),
            )

    def test_requires_a_body_unless_generator(self):
        with pytest.raises(ValueError):
            FunctionSpec(
                name="x",
                abbreviation="x",
                language=Language.PYTHON,
                suite="test",
                memory_mb=128,
                body_phases=(),
            )


class TestPhaseCursor:
    def test_advance_within_phase(self):
        cursor = PhaseCursor(make_spec())
        retired = cursor.advance(1e6)
        assert retired == pytest.approx(1e6)
        assert cursor.instructions_retired == pytest.approx(1e6)
        assert not cursor.finished

    def test_advance_stops_at_phase_boundary(self):
        cursor = PhaseCursor(make_spec())
        first_phase = cursor.current_phase
        retired = cursor.advance(first_phase.instructions + 5e6)
        assert retired == pytest.approx(first_phase.instructions)
        assert cursor.current_phase is not first_phase

    def test_startup_complete_flag(self):
        spec = make_spec()
        cursor = PhaseCursor(spec)
        assert not cursor.startup_complete
        while cursor.in_startup:
            cursor.advance(cursor.phase_instructions_remaining())
        assert cursor.startup_complete
        assert cursor.instructions_retired == pytest.approx(spec.startup_instructions)

    def test_run_to_completion(self):
        spec = make_spec(1e6)
        cursor = PhaseCursor(spec)
        guard = 0
        while not cursor.finished:
            cursor.advance(1e7)
            guard += 1
            assert guard < 100
        assert cursor.instructions_retired == pytest.approx(spec.total_instructions)
        assert cursor.instructions_remaining == pytest.approx(0.0)
        assert cursor.current_profile is None
        assert cursor.advance(1e6) == 0.0

    def test_negative_advance_rejected(self):
        cursor = PhaseCursor(make_spec())
        with pytest.raises(ValueError):
            cursor.advance(-1)

    def test_registry_specs_have_cursors(self):
        spec = default_registry().get("aes-py")
        cursor = PhaseCursor(spec)
        assert cursor.spec is spec
        assert cursor.current_profile is not None
