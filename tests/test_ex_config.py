"""Tests for the experiment configuration presets."""

import pytest

from repro.core.calibration import CalibrationScenario
from repro.experiments.config import (
    ChurnPool,
    ExperimentConfig,
    PricingMethod,
    heavy_320,
    icelake_70,
    one_per_core,
    sharing_160,
    sharing_240_reused,
    smt_160,
    unfixed_frequency_160,
)
from repro.hardware.frequency import FrequencyPolicy
from repro.hardware.topology import CASCADE_LAKE_5218, ICE_LAKE_4314


class TestPresets:
    def test_one_per_core_matches_section_7_1(self):
        config = one_per_core()
        assert config.total_functions == 27
        assert config.functions_per_thread == 1
        assert config.co_runners == 26
        assert config.method is PricingMethod.PLAIN
        assert config.eval_thread_ids() == tuple(range(27))

    def test_sharing_160_method2(self):
        config = sharing_160(PricingMethod.METHOD2)
        assert config.total_functions == 160
        assert config.eval_physical_cores == 16
        assert config.functions_per_thread == 10
        assert config.calibration_scenario.functions_per_thread == 10

    def test_sharing_160_method1_uses_dedicated_tables(self):
        config = sharing_160(PricingMethod.METHOD1)
        assert config.method is PricingMethod.METHOD1
        assert config.calibration_scenario.functions_per_thread == 1

    def test_heavy_320_uses_memory_intensive_pool(self):
        config = heavy_320()
        assert config.total_functions == 320
        assert config.churn_pool is ChurnPool.MEMORY_INTENSIVE

    def test_turbo_preset(self):
        assert unfixed_frequency_160().frequency_policy is FrequencyPolicy.TURBO

    def test_icelake_preset(self):
        config = icelake_70()
        assert config.machine is ICE_LAKE_4314
        assert config.total_functions == 70
        assert max(config.calibration_levels) <= ICE_LAKE_4314.cores - 5

    def test_sharing_240_reuses_10_per_core_tables(self):
        config = sharing_240_reused()
        assert config.functions_per_thread == 15
        assert config.calibration_scenario.functions_per_thread == 10

    def test_smt_preset_doubles_threads(self):
        config = smt_160()
        assert config.smt_enabled
        assert config.eval_thread_count == 16
        thread_ids = config.eval_thread_ids()
        assert len(thread_ids) == 16
        assert CASCADE_LAKE_5218.cores in thread_ids  # an SMT-sibling id


class TestConfigValidation:
    def test_rejects_more_cores_than_machine(self):
        with pytest.raises(ValueError):
            one_per_core(eval_physical_cores=64)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            one_per_core(total_functions=0)
        with pytest.raises(ValueError):
            one_per_core(repetitions=0)
        with pytest.raises(ValueError):
            one_per_core(registry_scale=0)

    def test_quick_and_full_variants(self):
        config = one_per_core()
        quick = config.quick()
        assert quick.repetitions == 1
        assert quick.registry_scale < config.registry_scale
        full = config.full()
        assert full.registry_scale == 1.0
        assert full.repetitions >= config.repetitions

    def test_scenario_default_is_dedicated(self):
        config = ExperimentConfig(name="x")
        assert isinstance(config.calibration_scenario, CalibrationScenario)
        assert config.calibration_scenario.functions_per_thread == 1
