"""Tests for the shared L3 capacity model."""

import pytest

from repro.hardware.cache import CacheDemand, SharedCacheModel


def demand(workload_id, rate, ws, hit=0.8):
    return CacheDemand(
        workload_id=workload_id,
        request_rate=rate,
        working_set_mb=ws,
        solo_hit_fraction=hit,
    )


class TestAllocation:
    def test_single_workload_gets_its_working_set(self):
        model = SharedCacheModel(capacity_mb=22.0)
        allocations = model.allocate([demand(1, rate=1e6, ws=10.0)])
        assert allocations[1].allocated_mb == pytest.approx(10.0)
        assert allocations[1].hit_fraction == pytest.approx(0.8)

    def test_single_large_workload_capped_at_capacity(self):
        model = SharedCacheModel(capacity_mb=22.0)
        allocations = model.allocate([demand(1, rate=1e6, ws=100.0)])
        assert allocations[1].allocated_mb == pytest.approx(22.0)
        # Its "need" is capped at capacity, so solo hit fraction is retained.
        assert allocations[1].hit_fraction == pytest.approx(0.8)

    def test_total_allocation_never_exceeds_capacity(self):
        model = SharedCacheModel(capacity_mb=22.0)
        demands = [demand(i, rate=1e6 * (i + 1), ws=15.0) for i in range(6)]
        allocations = model.allocate(demands)
        assert sum(a.allocated_mb for a in allocations.values()) <= 22.0 + 1e-9

    def test_equal_demands_share_equally(self):
        model = SharedCacheModel(capacity_mb=20.0)
        allocations = model.allocate(
            [demand(1, rate=1e6, ws=30.0), demand(2, rate=1e6, ws=30.0)]
        )
        assert allocations[1].allocated_mb == pytest.approx(allocations[2].allocated_mb)
        assert allocations[1].allocated_mb == pytest.approx(10.0)

    def test_higher_request_rate_receives_more_capacity(self):
        model = SharedCacheModel(capacity_mb=20.0)
        allocations = model.allocate(
            [demand(1, rate=4e6, ws=30.0), demand(2, rate=1e6, ws=30.0)]
        )
        assert allocations[1].allocated_mb > allocations[2].allocated_mb

    def test_small_workload_capped_and_surplus_redistributed(self):
        model = SharedCacheModel(capacity_mb=20.0)
        allocations = model.allocate(
            [demand(1, rate=5e6, ws=2.0), demand(2, rate=1e6, ws=40.0)]
        )
        assert allocations[1].allocated_mb == pytest.approx(2.0)
        assert allocations[2].allocated_mb == pytest.approx(18.0)

    def test_idle_workload_keeps_solo_hit_fraction(self):
        model = SharedCacheModel(capacity_mb=20.0)
        allocations = model.allocate(
            [demand(1, rate=0.0, ws=10.0), demand(2, rate=1e6, ws=40.0)]
        )
        assert allocations[1].hit_fraction == pytest.approx(0.8)


class TestHitFraction:
    def test_hit_fraction_degrades_under_pressure(self):
        model = SharedCacheModel(capacity_mb=22.0)
        alone = model.allocate([demand(1, rate=1e6, ws=20.0)])[1].hit_fraction
        crowded = model.allocate(
            [demand(i, rate=1e6, ws=20.0) for i in range(1, 11)]
        )[1].hit_fraction
        assert crowded < alone

    def test_hit_fraction_monotone_in_allocation(self):
        model = SharedCacheModel(capacity_mb=22.0, utility_exponent=0.5)
        d = demand(1, rate=1e6, ws=20.0)
        fractions = [model.effective_hit_fraction(d, a) for a in (1.0, 5.0, 10.0, 20.0)]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(0.8)

    def test_utility_exponent_bounds(self):
        with pytest.raises(ValueError):
            SharedCacheModel(capacity_mb=10.0, utility_exponent=0.0)
        with pytest.raises(ValueError):
            SharedCacheModel(capacity_mb=10.0, utility_exponent=1.5)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SharedCacheModel(capacity_mb=0.0)


class TestCacheDemandValidation:
    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            CacheDemand(workload_id=1, request_rate=-1, working_set_mb=1, solo_hit_fraction=0.5)

    def test_rejects_bad_hit_fraction(self):
        with pytest.raises(ValueError):
            CacheDemand(workload_id=1, request_rate=1, working_set_mb=1, solo_hit_fraction=1.5)
