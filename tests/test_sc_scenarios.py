"""Scenario-spec subsystem: schema errors, expansion, seeds, presets."""

from __future__ import annotations

import json

import pytest

from repro.hardware.topology import CASCADE_LAKE_5218
from repro.scenarios import (
    SpecError,
    compile_spec,
    expand_grid,
    list_presets,
    load_preset,
    load_spec,
    load_spec_or_preset,
    parse_spec,
    parse_spec_text,
    preset_path,
)
from repro.workloads.synthetic import SequenceMixer, TrafficModel

MINIMAL = 'name = "t"\n'

COOKBOOK = """
name = "cookbook"
description = "test spec"
[sweep]
horizon_seconds = 0.25
registry_scale = 0.05
shards = 2
[grid]
mixes = ["all", "hot"]
machines = [1, 2]
colocations = [1, 5]
cores_per_machine = 4
seed = 7
[mixes.hot]
functions = ["bfs-py", "float-py"]
weights = [3.0, 1.0]
"""


class TestParsing:
    def test_minimal_defaults(self):
        spec = parse_spec_text(MINIMAL)
        assert spec.name == "t"
        assert spec.mixes == ("all",)
        assert spec.grid_size == 1
        assert spec.backend == "vector"
        assert spec.shards == 1

    def test_full_document(self):
        spec = parse_spec_text(COOKBOOK)
        assert spec.grid_size == 8
        assert spec.seed == 7
        assert spec.shards == 2
        assert spec.mix_definitions[0].name == "hot"
        assert spec.mix_definitions[0].weights == (3.0, 1.0)

    def test_json_roundtrip(self, tmp_path):
        document = {
            "name": "j",
            "grid": {"mixes": ["memory-intensive"], "machines": [2]},
        }
        assert parse_spec(document).grid_size == 1
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        assert load_spec(path).name == "j"

    def test_load_spec_rejects_unknown_suffix(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: x", encoding="utf-8")
        with pytest.raises(SpecError, match="suffix"):
            load_spec(path)

    def test_invalid_toml_names_origin(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("name = ", encoding="utf-8")
        with pytest.raises(SpecError, match="bad.toml"):
            load_spec(path)


class TestSchemaErrors:
    @pytest.mark.parametrize(
        "text, fragment",
        [
            ("", "missing required key 'name'"),
            ('name = "x"\nbogus = 1', "unknown key"),
            ('name = "x"\n[sweep]\nhorizon_seconds = 0', "sweep.horizon_seconds"),
            ('name = "x"\n[sweep]\nbackend = "gpu"', "sweep.backend"),
            ('name = "x"\n[sweep]\nshards = 0', "sweep.shards"),
            ('name = "x"\n[grid]\nmachines = [1, 0]', r"grid\.machines\[1\]"),
            ('name = "x"\n[grid]\nmixes = []', "non-empty list"),
            ('name = "x"\n[grid]\nmixes = "all"', "expected a list"),
            ('name = "x"\n[traffic]\npolicy = "poisson"', "traffic.policy"),
            ('name = "x"\n[traffic]\npolicy = "trace"', "requires a trace"),
            (
                'name = "x"\n[traffic]\ntrace = ["bfs-py"]',
                "only valid with policy = 'trace'",
            ),
            (
                'name = "x"\n[grid]\nmixes = ["all"]\n'
                '[mixes.all]\nfunctions = ["bfs-py"]',
                "built-in",
            ),
            (
                'name = "x"\n[grid]\nmixes = ["m"]\n'
                '[mixes.m]\nfunctions = ["bfs-py"]\nweights = [1.0, 2.0]',
                "weights",
            ),
            (
                'name = "x"\n[mixes.unused]\nfunctions = ["bfs-py"]',
                "never used",
            ),
        ],
    )
    def test_error_names_field(self, text, fragment):
        with pytest.raises(SpecError, match=fragment):
            parse_spec_text(text)

    def test_compile_rejects_unknown_function(self):
        spec = parse_spec_text('name = "x"\n[grid]\nmixes = ["nope"]')
        with pytest.raises(SpecError, match="'nope'"):
            compile_spec(spec)

    def test_compile_rejects_unknown_machine(self):
        spec = parse_spec_text('name = "x"\n[sweep]\nmachine = "cray-1"')
        with pytest.raises(SpecError, match="cray-1"):
            compile_spec(spec)

    def test_compile_rejects_oversized_cores(self):
        cores = CASCADE_LAKE_5218.cores + 1
        spec = parse_spec_text(
            f'name = "x"\n[grid]\ncores_per_machine = {cores}'
        )
        with pytest.raises(SpecError, match="cores"):
            compile_spec(spec)

    def test_compile_rejects_trace_outside_pool(self):
        spec = parse_spec_text(
            'name = "x"\n[grid]\nmixes = ["bfs-py+float-py"]\n'
            '[traffic]\npolicy = "trace"\ntrace = ["pager-py"]'
        )
        with pytest.raises(SpecError, match="'pager-py'"):
            compile_spec(spec)


class TestExpansion:
    def test_grid_expansion_counts_and_names(self):
        spec = parse_spec_text(COOKBOOK)
        scenarios = expand_grid(spec)
        assert len(scenarios) == spec.grid_size == 8
        names = [s.name for s in scenarios]
        assert names[0] == "all-m1-c1"
        assert "hot-m2-c5" in names
        assert len(set(names)) == len(names)

    def test_expansion_carries_seed_and_traffic(self):
        spec = parse_spec_text(COOKBOOK)
        scenarios = expand_grid(spec)
        assert all(s.seed == 7 for s in scenarios)
        hot = [s for s in scenarios if s.mix == "hot"]
        assert all(s.traffic is not None for s in hot)
        assert all(s.traffic.policy == "weighted" for s in hot)
        assert all(s.traffic is None for s in scenarios if s.mix == "all")

    def test_expansion_is_deterministic(self):
        assert expand_grid(parse_spec_text(COOKBOOK)) == expand_grid(
            parse_spec_text(COOKBOOK)
        )

    def test_round_robin_policy_attaches_model(self):
        spec = parse_spec_text(
            'name = "x"\n[traffic]\npolicy = "round-robin"'
        )
        (scenario,) = expand_grid(spec)
        assert scenario.traffic == TrafficModel(policy="round-robin")

    def test_compile_resolves_machine_and_fleet(self):
        spec = parse_spec_text(COOKBOOK)
        compiled = compile_spec(spec)
        assert compiled.machine is CASCADE_LAKE_5218
        # (all: 2 mixes) x (1+2 machines) x (1+5 colocation) x 4 cores
        assert compiled.fleet_size == sum(
            m * 4 * c for m in (1, 2) for c in (1, 5)
        ) * 2


class TestTrafficModels:
    def test_mixer_streams_are_seed_deterministic(self, registry):
        pool = registry.memory_intensive()
        for model in (
            TrafficModel(),
            TrafficModel(policy="weighted", weights=tuple(range(1, 9))),
            TrafficModel(policy="round-robin"),
            TrafficModel(policy="trace", trace=("bfs-py", "thum-py")),
        ):
            first = model.build_mixer(pool, seed=11).draw(16)
            second = model.build_mixer(pool, seed=11).draw(16)
            assert first == second
            assert len(model.build_mixer(pool, seed=12).draw(16)) == 16

    def test_round_robin_covers_pool(self, registry):
        pool = registry.memory_intensive()
        drawn = TrafficModel(policy="round-robin").build_mixer(pool, seed=1).draw(
            len(pool)
        )
        assert sorted(s.abbreviation for s in drawn) == sorted(
            s.abbreviation for s in pool
        )

    def test_trace_replays_cyclically(self, registry):
        pool = registry.memory_intensive()
        mixer = TrafficModel(policy="trace", trace=("bfs-py", "thum-py")).build_mixer(
            pool, seed=0
        )
        assert [s.abbreviation for s in mixer.draw(5)] == [
            "bfs-py", "thum-py", "bfs-py", "thum-py", "bfs-py",
        ]

    def test_sequence_mixer_rejects_empty(self):
        with pytest.raises(ValueError):
            SequenceMixer([])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policy": "poisson"},
            {"policy": "weighted"},
            {"policy": "uniform", "weights": (1.0,)},
            {"policy": "trace"},
            {"policy": "uniform", "trace": ("bfs-py",)},
            {"policy": "weighted", "weights": (0.0, 0.0)},
        ],
    )
    def test_invalid_models_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrafficModel(**kwargs)


class TestPresets:
    def test_presets_are_listed(self):
        names = list_presets()
        assert "smoke" in names and "memory-pressure" in names

    def test_every_preset_parses_and_compiles(self):
        for name in list_presets():
            spec = load_preset(name)
            compiled = compile_spec(spec)
            assert spec.name == name
            assert len(compiled.scenarios) == spec.grid_size

    def test_unknown_preset_lists_choices(self):
        with pytest.raises(SpecError, match="smoke"):
            preset_path("definitely-not-a-preset")

    def test_spec_or_preset_resolution(self, tmp_path):
        assert load_spec_or_preset("smoke").name == "smoke"
        path = tmp_path / "inline.toml"
        path.write_text('name = "inline"\n', encoding="utf-8")
        assert load_spec_or_preset(path).name == "inline"

    def test_directory_cannot_shadow_preset(self, tmp_path, monkeypatch):
        (tmp_path / "smoke").mkdir()
        monkeypatch.chdir(tmp_path)
        assert load_spec_or_preset("smoke").name == "smoke"
