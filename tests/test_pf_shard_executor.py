"""Sharded sweep executor: partitioning and shard-merge equivalence."""

from __future__ import annotations

import pytest

from repro.platform.batch import (
    FleetScenario,
    FleetSweep,
    partition_scenarios,
    run_sharded,
    scenario_grid,
)
from repro.scenarios import compile_spec, load_preset

TINY = dict(horizon_seconds=0.2, epoch_seconds=1e-3, registry_scale=0.05)


def tiny_grid():
    return scenario_grid(
        ["all", "memory-intensive"], [1, 2], [1], cores_per_machine=3, seed=5
    )


class TestPartitioning:
    def test_partition_is_exact_cover(self):
        grid = tiny_grid()
        parts = partition_scenarios(grid, 3)
        flat = sorted(index for part in parts for index in part)
        assert flat == list(range(len(grid)))
        assert all(part == sorted(part) for part in parts)

    def test_partition_is_deterministic(self):
        grid = tiny_grid()
        assert partition_scenarios(grid, 3) == partition_scenarios(grid, 3)

    def test_more_shards_than_scenarios_clamps(self):
        grid = tiny_grid()
        parts = partition_scenarios(grid, 99)
        assert len(parts) == len(grid)
        assert all(len(part) == 1 for part in parts)

    def test_partition_balances_fleet_sizes(self):
        scenarios = [
            FleetScenario(name=f"s{i}", machines=m, cores_per_machine=2)
            for i, m in enumerate((8, 1, 1, 1, 1, 4))
        ]
        parts = partition_scenarios(scenarios, 2)
        # The one 8-machine scenario must not share a shard with the
        # 4-machine one while singletons exist.
        loads = [sum(scenarios[i].machines for i in part) for part in parts]
        assert max(loads) - min(loads) <= 4

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            partition_scenarios(tiny_grid(), 0)
        with pytest.raises(ValueError):
            partition_scenarios([], 2)


@pytest.mark.slow
class TestShardMergeEquivalence:
    def assert_merged_identical(self, single, sharded):
        assert len(single.scenarios) == len(sharded.result.scenarios)
        for a, b in zip(single.scenarios, sharded.result.scenarios):
            assert a.name == b.name
            assert a.completed == b.completed
            assert a.submitted == b.submitted
            # Bit-exact: same engine arithmetic, same per-machine seeds.
            assert a.instructions == b.instructions
            assert a.cycles == b.cycles
            assert a.stall_cycles == b.stall_cycles
            assert a.l3_misses == b.l3_misses

    def test_vector_two_shards_match_single_process(self):
        grid = tiny_grid()
        single = FleetSweep(grid, **TINY).run("vector")
        sharded = run_sharded(grid, shards=2, backend="vector", **TINY)
        assert sharded.shards == 2
        self.assert_merged_identical(single, sharded)

    def test_scalar_two_shards_match_single_process(self):
        grid = tiny_grid()[:2]
        single = FleetSweep(grid, **TINY).run("scalar")
        sharded = run_sharded(grid, shards=2, backend="scalar", **TINY)
        self.assert_merged_identical(single, sharded)

    def test_one_shard_runs_inline(self):
        grid = tiny_grid()[:2]
        sharded = run_sharded(grid, shards=1, backend="vector", **TINY)
        single = FleetSweep(grid, **TINY).run("vector")
        assert sharded.shards == 1
        self.assert_merged_identical(single, sharded)

    def test_preset_spec_sharded_matches_inline(self):
        compiled = compile_spec(load_preset("smoke"))
        sharded = compiled.run(shards=2)
        inline = compiled.run(shards=1)
        self.assert_merged_identical(inline.result, sharded)
        assert sharded.render().count("shard ") == sharded.shards

    def test_custom_registry_reaches_the_workers(self, registry):
        """compile_spec(registry=...) must govern the sharded run too."""
        from repro.scenarios import parse_spec_text

        subset = registry.subset(["bfs-py", "float-py"])
        spec = parse_spec_text(
            'name = "sub"\n'
            "[sweep]\nhorizon_seconds = 0.1\nregistry_scale = 0.05\n"
            "[grid]\nmixes = [\"all\"]\nmachines = [1, 2]\ncores_per_machine = 2\n"
        )
        compiled = compile_spec(spec, registry=subset)
        sharded = compiled.run(shards=2)
        single = compiled.sweep().run("vector")
        # If a worker silently fell back to the 27-function default
        # registry, its uniform draws (2 vs 27 functions) would diverge.
        for a, b in zip(single.scenarios, sharded.result.scenarios):
            assert a.completed == b.completed
            assert a.instructions == b.instructions

    def test_shard_timings_cover_all_scenarios(self):
        grid = tiny_grid()
        sharded = run_sharded(grid, shards=2, backend="vector", **TINY)
        names = sorted(
            name for timing in sharded.shard_timings for name in timing.scenario_names
        )
        assert names == sorted(s.name for s in grid)
        assert all(t.wall_seconds > 0 for t in sharded.shard_timings)

    def test_metered_sharded_matches_single_process(self):
        """meter=True must not perturb the sweep, and billing merges exactly."""
        grid = tiny_grid()
        plain = FleetSweep(grid, **TINY).run("vector")
        single = FleetSweep(grid, meter=True, **TINY).run("vector")
        sharded = run_sharded(grid, shards=2, backend="vector", meter=True, **TINY)
        self.assert_merged_identical(plain, sharded)
        for a, b in zip(single.scenarios, sharded.result.scenarios):
            assert a.billing is not None
            assert a.billing == b.billing  # frozen sorted tuples: bit-comparable
            assert a.billing.billed_total == a.billing.true_total

    def test_chaos_preset_sharded_matches_inline(self):
        """With the fault axis on, sharding still cannot change any number."""
        compiled = compile_spec(load_preset("chaos-smoke"))
        inline = compiled.run(shards=1, meter=True)
        sharded = compiled.run(shards=2, meter=True)
        assert sharded.shards == 2
        self.assert_merged_identical(inline.result, sharded)
        for a, b in zip(inline.result.scenarios, sharded.result.scenarios):
            assert a.billing == b.billing
            assert a.fault_stats == b.fault_stats
            assert a.fault_stats is not None and not a.fault_stats.empty

    def test_faults_stripped_matches_fault_free(self):
        """A chaos spec with faults removed reproduces the clean sweep bit-exact."""
        compiled = compile_spec(load_preset("chaos-smoke"))
        stripped = compiled.without_faults().run(shards=2)
        clean = compiled.without_faults().sweep().run("vector")
        self.assert_merged_identical(clean, stripped)


class TestCLISpecPath:
    def test_sweep_spec_shards_cli(self, tmp_path, capsys):
        from repro.cli import main

        bench = tmp_path / "bench.json"
        code = main(
            [
                "sweep",
                "--spec",
                "smoke",
                "--shards",
                "2",
                "--bench-json",
                str(bench),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 shard(s)" in out
        import json

        document = json.loads(bench.read_text(encoding="utf-8"))
        (record,) = document["runs"]
        assert record["source"] == "fleet-sweep"
        assert record["spec"] == "smoke"
        assert record["shards"] == 2
        assert len(record["shard_seconds"]) == 2

    def test_spec_conflicts_with_grid_flags(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--spec", "smoke", "--machines", "4"])
        assert code == 2
        assert "--machines conflict with --spec" in capsys.readouterr().err

    def test_bad_colocation_token_named(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--colocation", "1,two", "--no-bench"])
        assert code == 2
        err = capsys.readouterr().err
        assert "'two'" in err and "--colocation" in err

    def test_bad_mix_token_named(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--mixes", "all,bogus", "--no-bench"])
        assert code == 2
        err = capsys.readouterr().err
        assert "'bogus'" in err and "memory-intensive" in err

    def test_unknown_spec_lists_presets(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--spec", "not-a-preset", "--no-bench"])
        assert code == 2
        assert "smoke" in capsys.readouterr().err

    def test_bad_fault_type_in_spec_file_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.toml"
        bad.write_text(
            'name = "bad"\n[grid]\nmixes = ["all"]\n'
            '[[faults]]\ntype = "churn-spiky"\ncount = 2\n',
            encoding="utf-8",
        )
        code = main(["sweep", "--spec", str(bad), "--no-bench"])
        assert code == 2
        err = capsys.readouterr().err
        assert "faults[0].type" in err
        assert "'churn-spiky'" in err and "churn-spike" in err

    def test_compare_rejected_for_faulted_spec(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--spec", "chaos-smoke", "--compare", "--no-bench"])
        assert code == 2
        assert "--compare" in capsys.readouterr().err

    def test_chaos_spec_cli_reports_degradation(self, tmp_path, capsys):
        from repro.cli import main

        bench = tmp_path / "bench.json"
        metrics = tmp_path / "metrics.jsonl"
        code = main(
            [
                "sweep",
                "--spec",
                "chaos-smoke",
                "--shards",
                "2",
                "--metrics-out",
                str(metrics),
                "--bench-json",
                str(bench),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Degradation report" in captured.out
        assert "bill_err%" in captured.out
        import json

        document = json.loads(bench.read_text(encoding="utf-8"))
        (record,) = document["runs"]
        assert record["spec"] == "chaos-smoke"
        report = record["fault_report"]
        assert {row["scenario"] for row in report["scenarios"]} == {
            "all-m1-c2",
            "all-m2-c2",
        }
        assert record["metrics"]["snapshots"] >= 1
        assert 0.0 <= record["obs_overhead_fraction"] < 0.05
        lines = metrics.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert all(r["v"] == 1 for r in records)
        snapshots = [r for r in records if r["kind"] == "snapshot"]
        assert any(s["done"] for s in snapshots)
        assert all(s["shard"].split(":")[0] in ("base", "fault") for s in snapshots)
        spans = [r for r in records if r["kind"] == "span"]
        assert spans, "expected trace spans in the metrics JSONL"
        (root,) = [s for s in spans if not s["parent_id"]]
        assert root["name"] == "sweep"
        assert {s["trace_id"] for s in spans} == {root["trace_id"]}
        series = [r for r in records if r["kind"] == "series"]
        assert series and all(p["epoch"] >= 1 for p in series)
