"""Tests for the frequency governor."""

import pytest

from repro.hardware.frequency import FrequencyGovernor, FrequencyPolicy
from repro.hardware.topology import CASCADE_LAKE_5218


class TestFixedPolicy:
    def test_fixed_frequency_independent_of_load(self):
        governor = FrequencyGovernor(machine=CASCADE_LAKE_5218, policy=FrequencyPolicy.FIXED)
        assert governor.frequency_ghz(0) == pytest.approx(2.8)
        assert governor.frequency_ghz(32) == pytest.approx(2.8)
        assert governor.scaling_factor(16) == pytest.approx(1.0)


class TestTurboPolicy:
    def test_single_thread_reaches_max_turbo(self):
        governor = FrequencyGovernor(machine=CASCADE_LAKE_5218, policy=FrequencyPolicy.TURBO)
        assert governor.frequency_ghz(1) == pytest.approx(3.9)

    def test_frequency_decays_with_active_threads(self):
        governor = FrequencyGovernor(machine=CASCADE_LAKE_5218, policy=FrequencyPolicy.TURBO)
        frequencies = [governor.frequency_ghz(n) for n in (1, 2, 4, 8, 16, 32)]
        assert frequencies == sorted(frequencies, reverse=True)
        assert frequencies[-1] >= CASCADE_LAKE_5218.base_frequency_ghz

    def test_never_below_base(self):
        governor = FrequencyGovernor(machine=CASCADE_LAKE_5218, policy=FrequencyPolicy.TURBO)
        assert governor.frequency_ghz(64) >= CASCADE_LAKE_5218.base_frequency_ghz

    def test_negative_thread_count_rejected(self):
        governor = FrequencyGovernor(machine=CASCADE_LAKE_5218)
        with pytest.raises(ValueError):
            governor.frequency_ghz(-1)

    def test_frequency_hz_conversion(self):
        governor = FrequencyGovernor(machine=CASCADE_LAKE_5218)
        assert governor.frequency_hz(4) == pytest.approx(2.8e9)
