"""Tests for the regression models and log interpolation."""

import math

import pytest

from repro.core.regression import (
    ExponentialRegressionModel,
    LinearRegressionModel,
    log_interpolation_weight,
)


class TestLinearRegression:
    def test_fits_exact_line(self):
        model = LinearRegressionModel.fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert model.slope == pytest.approx(2.0)
        assert model.intercept == pytest.approx(1.0)
        assert model.r_squared == pytest.approx(1.0)
        assert model.predict(5) == pytest.approx(11.0)

    def test_noisy_fit_has_lower_r_squared(self):
        x = [1, 2, 3, 4, 5, 6]
        y = [2.1, 3.9, 6.4, 7.6, 10.5, 11.4]
        model = LinearRegressionModel.fit(x, y)
        assert 0.9 < model.r_squared <= 1.0

    def test_constant_x_falls_back_to_mean(self):
        model = LinearRegressionModel.fit([2, 2, 2], [1, 3, 5])
        assert model.slope == 0.0
        assert model.predict(10) == pytest.approx(3.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            LinearRegressionModel.fit([1], [2])

    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            LinearRegressionModel.fit([1, 2], [1])


class TestExponentialRegression:
    def test_fits_exact_exponential(self):
        x = [1.0, 1.5, 2.0, 2.5]
        y = [math.exp(0.5 + 2.0 * xi) for xi in x]
        model = ExponentialRegressionModel.fit(x, y)
        assert model.slope == pytest.approx(2.0, rel=1e-6)
        assert model.intercept == pytest.approx(0.5, rel=1e-6)
        assert model.r_squared == pytest.approx(1.0)
        assert model.predict(3.0) == pytest.approx(math.exp(0.5 + 6.0), rel=1e-6)

    def test_predict_log(self):
        model = ExponentialRegressionModel.fit([1, 2, 3], [10, 100, 1000])
        assert model.predict_log(2) == pytest.approx(math.log(100), rel=1e-6)

    def test_requires_positive_y(self):
        with pytest.raises(ValueError):
            ExponentialRegressionModel.fit([1, 2], [1, -1])

    def test_constant_x_falls_back_to_geometric_mean(self):
        model = ExponentialRegressionModel.fit([3, 3, 3], [10, 100, 1000])
        assert model.predict(3) == pytest.approx(100.0, rel=1e-6)


class TestLogInterpolationWeight:
    def test_endpoints(self):
        assert log_interpolation_weight(10, 10, 1000) == pytest.approx(0.0)
        assert log_interpolation_weight(1000, 10, 1000) == pytest.approx(1.0)

    def test_geometric_midpoint_is_half(self):
        assert log_interpolation_weight(100, 10, 1000) == pytest.approx(0.5)

    def test_clamped_outside_range(self):
        assert log_interpolation_weight(1, 10, 1000) == 0.0
        assert log_interpolation_weight(1e6, 10, 1000) == 1.0

    def test_swapped_bounds_are_reordered(self):
        assert log_interpolation_weight(100, 1000, 10) == pytest.approx(0.5)

    def test_identical_bounds_give_midpoint(self):
        assert log_interpolation_weight(50, 10, 10) == pytest.approx(0.5)

    def test_requires_positive_values(self):
        with pytest.raises(ValueError):
            log_interpolation_weight(0, 10, 100)
