"""Tests for calibration and the congestion estimator (shared small sweep)."""

import pytest

from repro.core.calibration import CalibrationScenario, calibrate_cached, clear_calibration_cache
from repro.core.litmus_test import LitmusObservation
from repro.workloads.runtimes import Language
from repro.workloads.traffic import GeneratorKind


class TestCalibrationScenario:
    def test_dedicated_defaults(self):
        scenario = CalibrationScenario.dedicated()
        assert scenario.functions_per_thread == 1
        assert scenario.resolved_background_functions == 0

    def test_shared_background_derivation(self):
        scenario = CalibrationScenario.shared(function_thread_count=5, functions_per_thread=10)
        assert scenario.resolved_background_functions == 45

    def test_smt_scenario_uses_both_contexts(self):
        scenario = CalibrationScenario.smt(physical_cores=5, functions_per_thread=5)
        assert scenario.smt_enabled
        assert scenario.function_thread_count == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            CalibrationScenario(name="bad", function_thread_count=0)
        with pytest.raises(ValueError):
            CalibrationScenario(name="bad", function_thread_count=1, functions_per_thread=0)


class TestCalibrationResult:
    def test_tables_cover_all_levels_and_generators(self, small_calibration):
        result = small_calibration
        for kind in (GeneratorKind.CT, GeneratorKind.MB):
            assert result.performance_table.stress_levels(kind) == [4, 12]
            for language in Language:
                levels = [
                    e.stress_level
                    for e in result.congestion_table.entries(generator=kind, language=language)
                ]
                assert levels == [4, 12]

    def test_startup_baselines_for_every_language(self, small_calibration):
        assert set(small_calibration.startup_baselines) == set(Language)
        for baseline in small_calibration.startup_baselines.values():
            assert baseline.private_seconds > 0
            assert baseline.shared_seconds > 0

    def test_reference_baselines_match_reference_set(self, small_calibration, small_registry):
        expected = {spec.abbreviation for spec in small_registry.reference_functions()}
        assert set(small_calibration.reference_baselines) == expected

    def test_slowdowns_increase_with_stress_level(self, small_calibration):
        performance = small_calibration.performance_table
        for kind in (GeneratorKind.CT, GeneratorKind.MB):
            low = performance.get(kind, 4)
            high = performance.get(kind, 12)
            assert high.total_slowdown >= low.total_slowdown
            assert high.shared_slowdown >= low.shared_slowdown

    def test_mb_gen_produces_more_l3_misses_than_ct_gen(self, small_calibration):
        congestion = small_calibration.congestion_table
        for level in (4, 12):
            ct = congestion.get(GeneratorKind.CT, level, Language.PYTHON)
            mb = congestion.get(GeneratorKind.MB, level, Language.PYTHON)
            assert mb.machine_l3_misses > ct.machine_l3_misses

    def test_mb_gen_slows_shared_time_more_than_ct_gen(self, small_calibration):
        performance = small_calibration.performance_table
        assert (
            performance.get(GeneratorKind.MB, 12).shared_slowdown
            > performance.get(GeneratorKind.CT, 12).shared_slowdown * 0.9
        )

    def test_probe_round_trip(self, small_calibration):
        probe = small_calibration.probe()
        assert set(probe.languages) == set(Language)

    def test_per_reference_slowdowns_recorded(self, small_calibration, small_registry):
        key = (GeneratorKind.MB, 12)
        per_reference = small_calibration.reference_slowdowns[key]
        assert len(per_reference) == len(small_registry.reference_functions())
        for private, shared, total in per_reference.values():
            assert private >= 0.9
            assert shared >= 0.9
            assert total >= 0.9


class TestCalibrationCache:
    def test_cache_reuses_results(self, machine, small_registry, small_oracle):
        clear_calibration_cache()
        first = calibrate_cached(
            machine,
            CalibrationScenario.dedicated(),
            registry=small_registry,
            stress_levels=(4, 8),
            oracle=small_oracle,
        )
        second = calibrate_cached(
            machine,
            CalibrationScenario.dedicated(),
            registry=small_registry,
            stress_levels=(4, 8),
            oracle=small_oracle,
        )
        assert first is second
        clear_calibration_cache()


class TestCongestionEstimator:
    def _observation(self, calibration, level=12, generator=GeneratorKind.MB):
        entry = calibration.congestion_table.get(generator, level, Language.PYTHON)
        return LitmusObservation(
            function="synthetic",
            language=Language.PYTHON,
            private_slowdown=entry.private_slowdown,
            shared_slowdown=entry.shared_slowdown,
            total_slowdown=entry.total_slowdown,
            machine_l3_misses=entry.machine_l3_misses,
            startup_wall_seconds=0.0,
        )

    def test_models_exist_for_every_language_generator_pair(self, small_estimator):
        quality = small_estimator.regression_quality()
        assert len(quality) == len(Language) * 2 * 4
        assert all(-1.0 <= value <= 1.0 for value in quality.values())

    def test_estimate_recovers_calibrated_point(self, small_calibration, small_estimator):
        observation = self._observation(small_calibration)
        estimate = small_estimator.estimate(observation)
        expected = small_calibration.performance_table.get(GeneratorKind.MB, 12)
        assert estimate.shared_slowdown == pytest.approx(expected.shared_slowdown, rel=0.2)
        assert estimate.private_slowdown == pytest.approx(expected.private_slowdown, rel=0.05)
        # The observation's L3 misses are MB-like, so the blend should lean MB.
        assert estimate.mb_weight > 0.5

    def test_ct_like_observation_leans_ct(self, small_calibration, small_estimator):
        observation = self._observation(small_calibration, generator=GeneratorKind.CT)
        estimate = small_estimator.estimate(observation)
        assert estimate.mb_weight < 0.5

    def test_higher_congestion_never_decreases_slowdown(self, small_calibration, small_estimator):
        low = small_estimator.estimate(self._observation(small_calibration, level=4))
        high = small_estimator.estimate(self._observation(small_calibration, level=12))
        assert high.total_slowdown >= low.total_slowdown - 1e-6

    def test_estimates_never_below_one(self, small_estimator):
        observation = LitmusObservation(
            function="idle",
            language=Language.PYTHON,
            private_slowdown=0.9,
            shared_slowdown=0.9,
            total_slowdown=0.9,
            machine_l3_misses=10.0,
            startup_wall_seconds=0.0,
        )
        estimate = small_estimator.estimate(observation)
        assert estimate.private_slowdown >= 1.0
        assert estimate.shared_slowdown >= 1.0
        assert estimate.private_discount >= 0.0
        assert estimate.shared_discount >= 0.0

    def test_unknown_language_model_raises(self, small_estimator):
        with pytest.raises(KeyError):
            small_estimator.models_for(Language.PYTHON, "not-a-generator")  # type: ignore[arg-type]
