"""Tests for metering, the solo oracle, sandboxes, events and invocations."""

import pytest

from repro.hardware.cpu import CPU
from repro.hardware.topology import CASCADE_LAKE_5218, ICE_LAKE_4314
from repro.platform.engine import SimulationEngine
from repro.platform.events import Event, EventKind, EventLog
from repro.platform.invoker import Invocation, InvocationState
from repro.platform.metering import measure_invocation, measure_startup
from repro.platform.oracle import SoloOracle
from repro.platform.sandbox import Sandbox
from repro.platform.scheduler import DedicatedCoreScheduler
from repro.workloads.registry import default_registry
from repro.workloads.runtimes import Language
from repro.workloads.traffic import ct_gen


@pytest.fixture(scope="module")
def tiny_registry():
    return default_registry().scaled(0.05)


@pytest.fixture(scope="module")
def completed_invocation(tiny_registry):
    engine = SimulationEngine(CPU(CASCADE_LAKE_5218), DedicatedCoreScheduler())
    invocation = engine.submit(tiny_registry.get("aes-py"))
    assert engine.run_until(lambda e: invocation.is_completed, max_seconds=20.0)
    return invocation


class TestSandbox:
    def test_memory_gb(self):
        sandbox = Sandbox(sandbox_id=1, memory_mb=512, language=Language.PYTHON)
        assert sandbox.memory_gb == pytest.approx(0.5)

    def test_rejects_non_positive_memory(self):
        with pytest.raises(ValueError):
            Sandbox(sandbox_id=1, memory_mb=0, language=Language.GO)


class TestEventLog:
    def test_append_and_filter(self):
        log = EventLog()
        log.append(Event(0.0, EventKind.SUBMIT, 1, "aes-py", 0))
        log.append(Event(0.1, EventKind.FINISH, 1, "aes-py", 0))
        assert len(log) == 2
        assert len(log.of_kind(EventKind.FINISH)) == 1
        assert len(log.for_invocation(1)) == 2
        assert len(log.between(0.05, 0.2)) == 1

    def test_rejects_out_of_order_events(self):
        log = EventLog()
        log.append(Event(1.0, EventKind.SUBMIT, 1, "aes-py"))
        with pytest.raises(ValueError):
            log.append(Event(0.5, EventKind.FINISH, 1, "aes-py"))


class TestInvocationLifecycle:
    def test_cannot_finish_before_start(self, tiny_registry):
        spec = tiny_registry.get("aes-py")
        invocation = Invocation(
            invocation_id=1,
            spec=spec,
            sandbox=Sandbox(1, spec.memory_mb, spec.language),
            submit_time=0.0,
        )
        assert invocation.state is InvocationState.PENDING
        with pytest.raises(ValueError):
            invocation.mark_finished(1.0)

    def test_role_default(self, tiny_registry):
        spec = tiny_registry.get("aes-py")
        invocation = Invocation(
            invocation_id=1,
            spec=spec,
            sandbox=Sandbox(1, spec.memory_mb, spec.language),
            submit_time=0.0,
        )
        assert invocation.role() == "unspecified"

    def test_occupancy_tracking(self, tiny_registry):
        spec = tiny_registry.get("aes-py")
        invocation = Invocation(
            invocation_id=1,
            spec=spec,
            sandbox=Sandbox(1, spec.memory_mb, spec.language),
            submit_time=0.0,
        )
        assert invocation.mean_thread_occupancy == 1.0
        invocation.observe_occupancy(4, 1.0)
        invocation.observe_occupancy(2, 1.0)
        assert invocation.mean_thread_occupancy == pytest.approx(3.0)


class TestMetering:
    def test_measurement_splits_time(self, completed_invocation):
        measurement = measure_invocation(completed_invocation)
        assert measurement.t_total_seconds == pytest.approx(
            measurement.occupied_seconds, rel=1e-9
        )
        assert 0.0 < measurement.shared_fraction < 1.0
        assert measurement.ipc > 0

    def test_startup_measurement(self, completed_invocation):
        startup = measure_startup(completed_invocation)
        assert startup.language == "python"
        assert startup.instructions >= completed_invocation.spec.startup_instructions
        assert startup.t_total_seconds < measure_invocation(completed_invocation).t_total_seconds
        assert startup.machine_l3_misses > 0

    def test_measure_requires_completion(self, tiny_registry):
        engine = SimulationEngine(CPU(CASCADE_LAKE_5218), DedicatedCoreScheduler())
        invocation = engine.submit(tiny_registry.get("aes-py"))
        with pytest.raises(ValueError, match="has not completed"):
            measure_invocation(invocation)

    def test_measure_startup_requires_window(self, tiny_registry):
        engine = SimulationEngine(CPU(CASCADE_LAKE_5218), DedicatedCoreScheduler())
        invocation = engine.submit(tiny_registry.get("aes-py"))
        with pytest.raises(ValueError, match="no recorded startup"):
            measure_startup(invocation)


class TestSoloOracle:
    def test_profiles_are_cached(self, tiny_registry):
        oracle = SoloOracle(CASCADE_LAKE_5218)
        spec = tiny_registry.get("auth-go")
        first = oracle.profile(spec)
        second = oracle.profile(spec)
        assert first is second
        assert spec.abbreviation in oracle

    def test_profile_contains_startup(self, tiny_registry):
        oracle = SoloOracle(CASCADE_LAKE_5218)
        profile = oracle.profile(tiny_registry.get("auth-go"))
        assert profile.startup is not None
        assert profile.t_total_seconds > 0

    def test_rejects_traffic_generators(self):
        oracle = SoloOracle(CASCADE_LAKE_5218)
        with pytest.raises(ValueError):
            oracle.profile(ct_gen(1).thread_specs()[0])

    def test_different_machines_give_different_times(self, tiny_registry):
        spec = tiny_registry.get("recogn-py")
        fast = SoloOracle(CASCADE_LAKE_5218).profile(spec)
        slow = SoloOracle(ICE_LAKE_4314).profile(spec)
        # Ice Lake runs at a lower fixed frequency, so the same work takes longer.
        assert slow.t_total_seconds > fast.t_total_seconds

    def test_clear(self, tiny_registry):
        oracle = SoloOracle(CASCADE_LAKE_5218)
        oracle.profile(tiny_registry.get("auth-go"))
        oracle.clear()
        assert "auth-go" not in oracle
