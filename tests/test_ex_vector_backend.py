"""Harness-level vector-backend adapters: figure regression vs scalar.

The committed ``results/*.txt`` figures stay on the bit-exact scalar
engine; these tests pin the vector backend to the same numbers — the
fig02/fig14 headline metrics must match the scalar run within rtol=1e-9
(in practice they are bit-identical).
"""

import pytest

from repro.core.sharing import measure_switching_curve
from repro.experiments.config import one_per_core, sharing_160, smt_160, PricingMethod
from repro.experiments.harness import (
    build_environment,
    run_characterization,
    run_price_evaluation,
)
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.batch import VectorEngine
from repro.platform.engine import EngineConfig

RTOL = 1e-9


class TestBackendSelection:
    def test_unknown_backend_rejected(self, registry):
        with pytest.raises(ValueError):
            build_environment(one_per_core(), registry.test_functions(), backend="quantum")

    def test_smt_rejected_on_vector(self, registry):
        with pytest.raises(ValueError, match="SMT"):
            build_environment(smt_160(), registry.test_functions(), backend="vector")

    def test_vector_environment_built(self, registry):
        config = one_per_core(
            name="vec-env", total_functions=4, eval_physical_cores=4, repetitions=1
        )
        engine, group = build_environment(
            config, registry.test_functions()[:4], backend="vector"
        )
        assert isinstance(engine, VectorEngine)
        assert not group.done


@pytest.mark.slow
class TestFigureRegression:
    def test_fig02_headline_matches_scalar(self):
        """Figure 2 (characterization) headline metrics at rtol=1e-9."""
        config = one_per_core()  # the exact fig02 configuration
        scalar = run_characterization(config)
        vector = run_characterization(config, backend="vector")
        assert vector.gmean_total_slowdown == pytest.approx(
            scalar.gmean_total_slowdown, rel=RTOL
        )
        assert vector.max_total_slowdown == pytest.approx(
            scalar.max_total_slowdown, rel=RTOL
        )
        for s_fn, v_fn in zip(scalar.functions, vector.functions):
            assert s_fn.function == v_fn.function
            assert v_fn.total_slowdown == pytest.approx(s_fn.total_slowdown, rel=RTOL)
            assert v_fn.private_slowdown == pytest.approx(
                s_fn.private_slowdown, rel=RTOL
            )
            assert v_fn.shared_slowdown == pytest.approx(s_fn.shared_slowdown, rel=RTOL)

    def test_fig14_switching_curve_matches_scalar(self):
        """Figure 14 (T_private inflation) points at rtol=1e-9."""
        counts = (1, 2, 6, 10)
        scalar = measure_switching_curve(
            CASCADE_LAKE_5218, counts, engine_config=EngineConfig()
        )
        vector = measure_switching_curve(
            CASCADE_LAKE_5218, counts, engine_config=EngineConfig(), backend="vector"
        )
        assert len(scalar) == len(vector)
        for s_point, v_point in zip(scalar, vector):
            assert s_point.functions_per_thread == v_point.functions_per_thread
            assert v_point.t_private_inflation == pytest.approx(
                s_point.t_private_inflation, rel=RTOL
            )

    def test_price_evaluation_matches_scalar_with_temporal_sharing(self):
        """A shared (Method 2) price evaluation agrees across backends."""
        config = sharing_160(
            PricingMethod.METHOD2,
            name="vec-share-quick",
            total_functions=20,
            eval_physical_cores=4,
            functions_per_thread=5,
            repetitions=1,
            registry_scale=0.2,
            calibration_levels=(4, 12),
        )
        scalar = run_price_evaluation(config)
        vector = run_price_evaluation(config, backend="vector")
        assert vector.average_litmus_discount == pytest.approx(
            scalar.average_litmus_discount, rel=RTOL
        )
        for s_row, v_row in zip(scalar.rows, vector.rows):
            assert s_row.function == v_row.function
            assert v_row.litmus_normalized_price == pytest.approx(
                s_row.litmus_normalized_price, rel=RTOL
            )
            assert v_row.actual_shared_slowdown == pytest.approx(
                s_row.actual_shared_slowdown, rel=RTOL
            )
