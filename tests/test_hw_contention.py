"""Tests for the combined contention model."""

import pytest

from repro.hardware.contention import (
    ContentionModel,
    ContentionParameters,
    WorkloadDemand,
)
from repro.hardware.topology import CASCADE_LAKE_5218


def demand(workload_id, rate=5e7, ws=20.0, hit=0.8, mlp=4.0):
    return WorkloadDemand(
        workload_id=workload_id,
        l2_miss_rate=rate,
        working_set_mb=ws,
        solo_l3_hit_fraction=hit,
        mlp=mlp,
    )


@pytest.fixture(scope="module")
def model():
    return ContentionModel(CASCADE_LAKE_5218)


class TestSoloBehaviour:
    def test_solo_penalty_close_to_unloaded(self, model):
        penalty = model.solo_penalty(demand(1, rate=1e6, ws=4.0))
        assert penalty.l3_hit_fraction == pytest.approx(0.8, abs=0.01)
        assert penalty.l3_hit_latency_cycles == pytest.approx(
            CASCADE_LAKE_5218.l3.latency_cycles, rel=0.05
        )
        assert penalty.private_inflation == pytest.approx(1.0, abs=0.01)

    def test_stall_cycles_per_miss_mixes_hit_and_miss_latency(self, model):
        penalty = model.solo_penalty(demand(1, rate=1e6, ws=4.0))
        stall = penalty.stall_cycles_per_l2_miss(mlp=1.0)
        assert penalty.l3_hit_latency_cycles < stall < penalty.memory_latency_cycles

    def test_mlp_divides_stall(self, model):
        penalty = model.solo_penalty(demand(1))
        assert penalty.stall_cycles_per_l2_miss(4.0) == pytest.approx(
            penalty.stall_cycles_per_l2_miss(1.0) / 4.0
        )


class TestContention:
    def test_more_workloads_lower_hit_fraction(self, model):
        alone = model.evaluate([demand(0)])[0].l3_hit_fraction
        crowded = model.evaluate([demand(i) for i in range(20)])[0].l3_hit_fraction
        assert crowded < alone

    def test_more_workloads_higher_memory_latency(self, model):
        alone = model.evaluate([demand(0)])[0].memory_latency_cycles
        crowded = model.evaluate([demand(i) for i in range(25)])[0].memory_latency_cycles
        assert crowded > alone

    def test_private_inflation_bounded(self, model):
        penalties = model.evaluate([demand(i, rate=2e8) for i in range(30)])
        inflation = penalties[0].private_inflation
        assert 1.0 <= inflation <= 1.0 + model.parameters.private_pressure_sensitivity

    def test_all_workloads_receive_penalties(self, model):
        demands = [demand(i) for i in range(7)]
        penalties = model.evaluate(demands)
        assert set(penalties.keys()) == {d.workload_id for d in demands}

    def test_latency_only_traffic_does_not_consume_bandwidth(self, model):
        # A CT-Gen-like workload (hits in L3) should raise ring utilisation,
        # not memory-bandwidth utilisation.
        ct_like = [
            WorkloadDemand(
                workload_id=i,
                l2_miss_rate=2e8,
                working_set_mb=0.5,
                solo_l3_hit_fraction=0.99,
                mlp=8.0,
            )
            for i in range(16)
        ]
        penalties = model.evaluate(ct_like)
        assert penalties[0].ring_utilization > penalties[0].bandwidth_utilization

    def test_bandwidth_traffic_dominates_for_mb_like_load(self, model):
        mb_like = [
            WorkloadDemand(
                workload_id=i,
                l2_miss_rate=1.2e8,
                working_set_mb=26.0,
                solo_l3_hit_fraction=0.1,
                mlp=6.0,
            )
            for i in range(16)
        ]
        penalties = model.evaluate(mb_like)
        assert penalties[0].bandwidth_utilization > 0.3


class TestValidation:
    def test_demand_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            WorkloadDemand(workload_id=1, l2_miss_rate=-1, working_set_mb=1, solo_l3_hit_fraction=0.5)

    def test_demand_rejects_zero_mlp(self):
        with pytest.raises(ValueError):
            WorkloadDemand(workload_id=1, l2_miss_rate=1, working_set_mb=1, solo_l3_hit_fraction=0.5, mlp=0)

    def test_parameters_exposed(self, model):
        assert isinstance(model.parameters, ContentionParameters)
        assert model.machine is CASCADE_LAKE_5218
