"""Tests for the switching-overhead measurement harness (Figure 14)."""

import pytest

from repro.core.sharing import SwitchingCurvePoint, measure_switching_curve
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.workloads.registry import default_registry


@pytest.fixture(scope="module")
def switching_curve():
    return measure_switching_curve(
        CASCADE_LAKE_5218,
        counts=(1, 4, 10),
        registry=default_registry().scaled(0.1),
    )


class TestSwitchingCurve:
    def test_returns_one_point_per_count(self, switching_curve):
        assert [p.functions_per_thread for p in switching_curve] == [1, 4, 10]
        assert all(isinstance(p, SwitchingCurvePoint) for p in switching_curve)

    def test_dedicated_thread_has_no_overhead(self, switching_curve):
        assert switching_curve[0].t_private_inflation == pytest.approx(1.0, abs=0.01)

    def test_overhead_grows_then_saturates(self, switching_curve):
        inflations = [p.t_private_inflation for p in switching_curve]
        assert inflations[1] > inflations[0]
        assert inflations[2] >= inflations[1]
        # Figure 14: the overhead stays within a few percent.
        assert inflations[-1] < 1.06

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            measure_switching_curve(
                CASCADE_LAKE_5218, counts=(0,), registry=default_registry().scaled(0.1)
            )

    def test_invalid_repetitions_rejected(self):
        with pytest.raises(ValueError):
            measure_switching_curve(
                CASCADE_LAKE_5218,
                counts=(1,),
                registry=default_registry().scaled(0.1),
                repetitions=0,
            )
