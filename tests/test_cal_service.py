"""The calibration service: search, detection, atomic republish."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import diskcache
from repro.calibrate import (
    CalibrationConfig,
    ContinuousCalibrator,
    DriftEvent,
    DriftInjector,
    MeasureConfig,
    best_candidate,
    calibrate_once,
    fit_key,
    fitted_profile,
    get_param,
    grid_search,
    linspace,
    load_fit,
    measure_series,
    perturbed,
    profile_by_name,
    publish_fit,
)
from repro.calibrate.service import CandidateScore
from repro.obs import CalibrationEvent

PATH = "contention.memory_queueing_coefficient"


@pytest.fixture(scope="module")
def profile():
    return profile_by_name("sg2042-like")


@pytest.fixture(scope="module")
def config():
    return CalibrationConfig()


def test_linspace_is_inclusive_and_even():
    values = linspace(0.0, 1.0, 5)
    assert values == [0.0, 0.25, 0.5, 0.75, 1.0]
    with pytest.raises(ValueError):
        linspace(0.0, 1.0, 1)
    with pytest.raises(ValueError):
        linspace(1.0, 1.0, 3)


def test_config_validation():
    for kwargs in (
        {"linspace_points": 1},
        {"max_parallel_workers": 0},
        {"mape_window_epochs": 0},
        {"drift_mape_threshold": 0.0},
        {"epochs_per_round": 0},
        {"search_min": 2.0, "search_max": 1.0},
    ):
        with pytest.raises(ValueError):
            CalibrationConfig(**kwargs)


def test_grid_anchors_at_the_nominal_fit(profile, config):
    grid = config.grid(profile)
    nominal = get_param(profile, PATH)
    assert grid[0] == pytest.approx(0.5 * nominal)
    assert grid[-1] == pytest.approx(2.0 * nominal)
    assert len(grid) == config.linspace_points


def test_best_candidate_tie_breaks_on_value():
    scores = [
        CandidateScore(value=2.0, mape=0.1),
        CandidateScore(value=1.0, mape=0.1),
        CandidateScore(value=3.0, mape=0.2),
    ]
    assert best_candidate(scores).value == 1.0


def test_grid_search_recovers_within_one_step(profile, config):
    """The acceptance bar: a 1.3x-perturbed truth lands one grid step away."""
    truth_profile = perturbed(profile, PATH, 1.3)
    truth = measure_series(truth_profile, config.measure, config.mape_window_epochs)
    scores = grid_search(profile, config, truth)
    best = best_candidate(scores)
    grid = config.grid(profile)
    step = grid[1] - grid[0]
    assert abs(best.value - get_param(truth_profile, PATH)) <= step
    assert best.mape <= config.drift_mape_threshold
    # the stale nominal fit is distinguishable from the recovered one
    nominal_mape = min(
        s.mape for s in scores if abs(s.value - get_param(profile, PATH)) <= step
    )
    assert nominal_mape > best.mape


def test_grid_search_is_worker_count_independent(profile, config):
    truth = measure_series(
        perturbed(profile, PATH, 1.3), config.measure, config.mape_window_epochs
    )
    inline = grid_search(profile, config, truth)
    parallel = grid_search(
        profile,
        dataclasses.replace(config, max_parallel_workers=2),
        truth,
    )
    assert inline == parallel


def test_publish_and_load_roundtrip(profile, config):
    key, payload, path = publish_fit(
        profile, config, value=0.875, fit_mape=0.0012, round_index=3
    )
    assert path is not None and path.exists()
    assert key == fit_key(profile, config)
    loaded = load_fit(profile, config)
    assert loaded is not None
    assert loaded["value"] == 0.875
    assert loaded["round_index"] == 3
    assert loaded["fingerprint"] == payload["fingerprint"]
    fitted = fitted_profile(profile, config)
    assert get_param(fitted, PATH) == 0.875


def test_tampered_fit_is_rejected(profile, config):
    _, _, path = publish_fit(
        profile, config, value=0.875, fit_mape=0.0012, round_index=0
    )
    document = json.loads(path.read_text(encoding="utf-8"))
    document["payload"]["value"] = 99.0  # hand-edited fit, stale fingerprint
    path.write_text(json.dumps(document), encoding="utf-8")
    assert load_fit(profile, config) is None
    assert fitted_profile(profile, config) == profile  # falls back to nominal


def test_fit_slots_are_distinct_per_search_shape(profile, config):
    other = dataclasses.replace(config, linspace_points=5)
    assert fit_key(profile, config) != fit_key(profile, other)
    assert fit_key(profile, config) != fit_key(
        profile_by_name("icelake-like"), config
    )


def test_republish_overwrites_the_slot_atomically(profile, config):
    publish_fit(profile, config, value=0.7, fit_mape=0.01, round_index=0)
    publish_fit(profile, config, value=0.875, fit_mape=0.001, round_index=1)
    loaded = load_fit(profile, config)
    assert loaded["value"] == 0.875
    assert loaded["round_index"] == 1
    # one entry per slot: the cache holds the newest fit only
    entries = list(diskcache.cache_dir().glob(f"calibration-fit-{fit_key(profile, config)}.json"))
    assert len(entries) == 1


def test_drift_free_rounds_never_fire(profile, config):
    calibrator = ContinuousCalibrator(profile, config)
    results = calibrator.run(3)
    assert all(not r.drift_detected for r in results)
    assert all(r.windowed_mape == 0.0 for r in results)
    assert calibrator.incumbent == profile


def test_drift_is_detected_and_repaired(profile, config):
    events = []
    injector = DriftInjector(
        profile, (DriftEvent(start_seconds=0.030, path=PATH, scale=1.4),)
    )
    calibrator = ContinuousCalibrator(
        profile, config, drift=injector, observer=events.append
    )
    results = calibrator.run(8)
    fired = [r for r in results if r.drift_detected]
    assert fired, "drift was never detected"
    repair = fired[0]
    truth_value = get_param(profile, PATH) * 1.4
    grid = config.grid(profile)
    step = grid[1] - grid[0]
    assert repair.best is not None
    assert abs(repair.best.value - truth_value) <= step
    assert repair.fit_fingerprint
    # the repaired incumbent holds for the remaining rounds
    after = [r for r in results if r.round_index > repair.round_index]
    assert after and all(not r.drift_detected for r in after)
    assert get_param(calibrator.incumbent, PATH) == repair.best.value
    # the repair was republished through the cache
    loaded = load_fit(profile, config)
    assert loaded is not None and loaded["value"] == repair.best.value
    # observer saw rounds, candidates and the republish
    kinds = {e.kind for e in events}
    assert kinds == {"round", "candidate", "republish"}
    assert all(isinstance(e, CalibrationEvent) for e in events)


def test_calibrate_once_converges(profile, config):
    result = calibrate_once(
        perturbed(profile, PATH, 1.3), config, incumbent=profile
    )
    assert result.converged
    assert result.best is not None
    grid = config.grid(profile)
    step = grid[1] - grid[0]
    assert abs(result.best.value - get_param(profile, PATH) * 1.3) <= step


def test_mismatched_machines_are_rejected(profile, config):
    other = profile_by_name("icelake-like")
    with pytest.raises(ValueError, match="machine"):
        ContinuousCalibrator(profile, config, incumbent=other)
    with pytest.raises(ValueError, match="machine"):
        calibrate_once(profile, config, incumbent=other)


def test_event_render_lines_are_informative():
    round_event = CalibrationEvent(
        kind="round",
        round_index=2,
        parameter=PATH,
        value=0.7,
        mape=0.0098,
        threshold=0.005,
        drift_detected=True,
    )
    assert "drift detected" in round_event.render_line()
    republish = CalibrationEvent(
        kind="republish",
        round_index=2,
        parameter=PATH,
        value=0.875,
        mape=0.0012,
        fingerprint="abcdef0123456789",
    )
    line = republish.render_line()
    assert "republish" in line and "abcdef012345" in line
    candidate = CalibrationEvent(
        kind="candidate",
        round_index=0,
        parameter=PATH,
        value=0.35,
        mape=0.02,
        candidate_index=0,
        candidates_total=9,
    )
    assert "1/9" in candidate.render_line()


def test_oracle_cache_keys_on_contention_parameters():
    from repro.experiments.config import one_per_core
    from repro.experiments.harness import oracle_for
    from repro.hardware.contention import ContentionParameters

    config = one_per_core()
    nominal = oracle_for(config)
    assert oracle_for(config) is nominal
    refit = ContentionParameters(memory_queueing_coefficient=0.875)
    recalibrated = oracle_for(config, contention_parameters=refit)
    assert recalibrated is not nominal
    assert oracle_for(config, contention_parameters=refit) is recalibrated
