"""Unit tests for the NumPy fleet backend (`repro.platform.batch`)."""

import pytest

from repro.hardware.cpu import CPU
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.batch import (
    FleetScenario,
    FleetSweep,
    VectorEngine,
    VectorEngineConfig,
    scenario_grid,
)
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.scheduler import DedicatedCoreScheduler, LeastOccupancyScheduler
from repro.workloads.registry import default_registry
from repro.workloads.synthetic import WorkloadMixer


@pytest.fixture(scope="module")
def registry():
    return default_registry().scaled(0.05)


def _scalar_engine(fast_path=True):
    return SimulationEngine(
        CPU(CASCADE_LAKE_5218),
        LeastOccupancyScheduler(),
        config=EngineConfig(fast_path=fast_path),
    )


class TestVectorEngineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            VectorEngineConfig(epoch_seconds=0.0)
        with pytest.raises(ValueError):
            VectorEngineConfig(fixed_point_iterations=0)
        with pytest.raises(ValueError):
            VectorEngine(CASCADE_LAKE_5218, machines=0)

    def test_submit_validation(self, registry):
        engine = VectorEngine(CASCADE_LAKE_5218, machines=1)
        spec = registry.get("auth-py")
        with pytest.raises(ValueError):
            engine.submit(spec, machine=1)
        with pytest.raises(ValueError):
            engine.submit(spec, thread_id=10_000)


class TestSoloAgreement:
    def test_solo_run_matches_scalar_bit_for_bit(self, registry):
        spec = registry.get("auth-py")
        scalar = SimulationEngine(
            CPU(CASCADE_LAKE_5218), DedicatedCoreScheduler(), config=EngineConfig()
        )
        s_inv = scalar.submit(spec)
        assert scalar.run_until(lambda e: s_inv.is_completed, max_seconds=30.0)

        vector = VectorEngine(CASCADE_LAKE_5218)
        v_inv = vector.submit(spec, thread_id=0)
        assert vector.run_until(lambda e: v_inv.is_completed, max_seconds=30.0)

        assert v_inv.finish_time == s_inv.finish_time
        assert v_inv.counters.snapshot() == s_inv.counters.snapshot()
        assert v_inv.startup_counters == s_inv.startup_counters

    def test_machine_counters_match_scalar(self, registry):
        spec = registry.get("bfs-py")
        scalar = SimulationEngine(
            CPU(CASCADE_LAKE_5218), DedicatedCoreScheduler(), config=EngineConfig()
        )
        s_inv = scalar.submit(spec)
        scalar.run_until(lambda e: s_inv.is_completed, max_seconds=30.0)

        vector = VectorEngine(CASCADE_LAKE_5218)
        v_inv = vector.submit(spec, thread_id=0)
        vector.run_until(lambda e: v_inv.is_completed, max_seconds=30.0)
        assert vector.machine_counters(0) == scalar.cpu.global_counters.snapshot()


class TestColocatedChurnAgreement:
    def test_churn_fleet_matches_scalar(self, registry):
        pool = registry.all()
        cores, colocation, epochs = 3, 4, 600

        mixer_s = WorkloadMixer(pool, seed=7)
        scalar = _scalar_engine()
        s_initial = [
            scalar.submit(mixer_s.next(), thread_id=t)
            for t in range(cores)
            for _ in range(colocation)
        ]
        scalar.add_finish_listener(
            lambda inv, eng: eng.submit(mixer_s.next(), thread_id=inv.thread_id)
        )

        mixer_v = WorkloadMixer(pool, seed=7)
        vector = VectorEngine(CASCADE_LAKE_5218)
        v_initial = [
            vector.submit(mixer_v.next(), thread_id=t)
            for t in range(cores)
            for _ in range(colocation)
        ]
        vector.add_finish_listener(
            lambda handle, eng: eng.submit(mixer_v.next(), thread_id=handle.thread_id)
        )

        for _ in range(epochs):
            scalar.run_epoch()
            vector.run_epoch()

        assert vector.stats.completions == len(scalar.completed_invocations())
        for s_inv, v_inv in zip(s_initial, v_initial):
            vector._sync_handle_counters(v_inv.invocation_id)
            assert v_inv.counters.snapshot() == s_inv.counters.snapshot()
            assert v_inv.finish_time == s_inv.finish_time

    def test_startup_windows_match_scalar(self, registry):
        pool = registry.all()
        mixer_s = WorkloadMixer(pool, seed=3)
        scalar = _scalar_engine()
        for t in range(2):
            for _ in range(3):
                scalar.submit(mixer_s.next(), thread_id=t)
        mixer_v = WorkloadMixer(pool, seed=3)
        vector = VectorEngine(CASCADE_LAKE_5218)
        for t in range(2):
            for _ in range(3):
                vector.submit(mixer_v.next(), thread_id=t)
        for _ in range(400):
            scalar.run_epoch()
            vector.run_epoch()
        s_done = scalar.completed_invocations()
        v_done = vector.completed
        assert len(s_done) == len(v_done)
        for s_inv, v_inv in zip(s_done, v_done):
            assert s_inv.spec.abbreviation == v_inv.spec.abbreviation
            # Per-invocation probe counters are bit-exact; the machine-wide
            # probe snapshot accumulates in a different (vectorized) fold
            # order, so it agrees to rounding noise only.
            assert v_inv.startup_counters == s_inv.startup_counters
            s_l3 = (
                s_inv.machine_counters_at_startup_end.l3_misses
                - s_inv.machine_counters_at_start.l3_misses
            )
            v_l3 = (
                v_inv.machine_counters_at_startup_end.l3_misses
                - v_inv.machine_counters_at_start.l3_misses
            )
            assert v_l3 == pytest.approx(s_l3, rel=1e-9)


class TestMultiMachine:
    def test_machines_are_independent(self, registry):
        spec_a = registry.get("pager-py")
        spec_b = registry.get("fib-go")
        fleet = VectorEngine(CASCADE_LAKE_5218, machines=2)
        a_fleet = fleet.submit(spec_a, machine=0, thread_id=0)
        b_fleet = fleet.submit(spec_b, machine=1, thread_id=0)

        solo = VectorEngine(CASCADE_LAKE_5218, machines=1)
        a_solo = solo.submit(spec_a, thread_id=0)
        solo2 = VectorEngine(CASCADE_LAKE_5218, machines=1)
        b_solo = solo2.submit(spec_b, thread_id=0)

        for engine in (fleet, solo, solo2):
            engine.run_for(0.2)
        assert a_fleet.counters.snapshot() == a_solo.counters.snapshot()
        assert b_fleet.counters.snapshot() == b_solo.counters.snapshot()

    def test_cpu_facade_occupancy(self, registry):
        engine = VectorEngine(CASCADE_LAKE_5218)
        spec = registry.get("auth-py")
        engine.submit(spec, thread_id=2)
        engine.submit(spec, thread_id=2)
        assert engine.cpu.thread(2).occupancy == 2
        assert engine.cpu.thread(0).occupancy == 0
        assert engine.thread_occupancy(0, 2) == 2
        with pytest.raises(KeyError):
            engine.cpu.thread(99999)


class TestFleetSweep:
    def test_backends_agree(self):
        sweep = FleetSweep(
            [FleetScenario(name="t", machines=2, colocation=2, cores_per_machine=3)],
            horizon_seconds=0.25,
            registry_scale=0.05,
        )
        vector, scalar, speedup = sweep.compare()
        assert speedup > 0
        for v, s in zip(vector.scenarios, scalar.scenarios):
            assert v.completed == s.completed
            assert v.submitted == s.submitted
            assert v.instructions == pytest.approx(s.instructions, rel=1e-9)
            assert v.cycles == pytest.approx(s.cycles, rel=1e-9)
            assert v.l3_misses == pytest.approx(s.l3_misses, rel=1e-9)

    def test_scenario_grid(self):
        scenarios = scenario_grid(["all", "memory-intensive"], [1, 2], [1, 4])
        assert len(scenarios) == 8
        names = {s.name for s in scenarios}
        assert "memory-intensive-m2-c4" in names

    def test_render_mentions_fleet_size(self):
        sweep = FleetSweep(
            [FleetScenario(name="r", machines=1, colocation=1, cores_per_machine=2)],
            horizon_seconds=0.05,
            registry_scale=0.05,
        )
        result = sweep.run("vector")
        rendered = result.render()
        assert "Fleet sweep [vector]" in rendered
        assert str(result.fleet_size) in rendered

    def test_unknown_backend_rejected(self):
        sweep = FleetSweep(
            [FleetScenario(name="x")], horizon_seconds=0.05, registry_scale=0.05
        )
        with pytest.raises(ValueError):
            sweep.run("gpu")
