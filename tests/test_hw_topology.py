"""Tests for machine topology descriptions."""

import pytest

from repro.hardware.topology import (
    CASCADE_LAKE_5218,
    ICE_LAKE_4314,
    CacheSpec,
    machine_by_name,
)


class TestCacheSpec:
    def test_size_mb_conversion(self):
        cache = CacheSpec(level="L3", size_kb=22 * 1024, latency_cycles=44, shared=True)
        assert cache.size_mb == pytest.approx(22.0)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            CacheSpec(level="L1", size_kb=0, latency_cycles=4)

    def test_rejects_non_positive_latency(self):
        with pytest.raises(ValueError):
            CacheSpec(level="L1", size_kb=32, latency_cycles=0)


class TestMachineSpec:
    def test_cascade_lake_matches_paper_testbed(self):
        machine = CASCADE_LAKE_5218
        assert machine.architecture == "cascade-lake"
        assert machine.cores == 32
        assert machine.smt_ways == 2
        assert machine.base_frequency_ghz == pytest.approx(2.8)
        assert machine.l2.size_mb == pytest.approx(1.0)
        assert machine.l3.size_mb == pytest.approx(22.0)
        assert machine.l3.shared

    def test_ice_lake_is_smaller(self):
        assert ICE_LAKE_4314.cores < CASCADE_LAKE_5218.cores
        assert ICE_LAKE_4314.memory_gb < CASCADE_LAKE_5218.memory_gb

    def test_hardware_threads(self):
        assert CASCADE_LAKE_5218.hardware_threads == 64

    def test_memory_latency_cycles_scales_with_frequency(self):
        machine = CASCADE_LAKE_5218
        assert machine.memory_latency_cycles == pytest.approx(
            machine.memory_latency_ns * machine.base_frequency_ghz
        )

    def test_scaled_override(self):
        smaller = CASCADE_LAKE_5218.scaled(cores=8)
        assert smaller.cores == 8
        assert smaller.name == CASCADE_LAKE_5218.name
        # The original is untouched.
        assert CASCADE_LAKE_5218.cores == 32

    def test_turbo_must_be_at_least_base(self):
        with pytest.raises(ValueError):
            CASCADE_LAKE_5218.scaled(max_turbo_frequency_ghz=1.0)

    def test_l3_must_be_shared(self):
        bad_l3 = CacheSpec(level="L3", size_kb=1024, latency_cycles=40, shared=False)
        with pytest.raises(ValueError):
            CASCADE_LAKE_5218.scaled(l3=bad_l3)


class TestMachineLookup:
    def test_lookup_by_name(self):
        assert machine_by_name("xeon-gold-5218") is CASCADE_LAKE_5218
        assert machine_by_name("ice-lake") is ICE_LAKE_4314

    def test_unknown_machine_raises(self):
        with pytest.raises(KeyError, match="unknown machine"):
            machine_by_name("epyc-7742")
