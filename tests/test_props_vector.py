"""Property-based tests: vector backend vs scalar engine on random fleets.

The vector backend replicates the scalar engine's per-invocation arithmetic
operation for operation, so randomized fleets — random profiles, phase
structures, placements and schedules — must agree within a tight relative
tolerance (per-invocation counters are in fact bit-exact; the machine-wide
accumulators differ only in floating-point fold order).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.cache import CacheDemand, SharedCacheModel
from repro.hardware.contention import ContentionModel, WorkloadDemand
from repro.hardware.cpu import CPU
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.batch import VectorEngine
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.scheduler import LeastOccupancyScheduler
from repro.workloads.function import FunctionSpec
from repro.workloads.phases import ExecutionPhase, PhaseKind, ResourceProfile
from repro.workloads.runtimes import Language

RTOL = 1e-9

profile_values = st.tuples(
    st.floats(min_value=0.3, max_value=2.0),    # cpi_base
    st.floats(min_value=0.0, max_value=8.0),    # l2_mpki
    st.floats(min_value=0.0, max_value=64.0),   # working_set_mb
    st.floats(min_value=0.0, max_value=1.0),    # solo_l3_hit_fraction
    st.floats(min_value=1.0, max_value=8.0),    # mlp
)


def _spec(index, phase_params):
    phases = tuple(
        ExecutionPhase(
            name=f"body-{p}",
            kind=PhaseKind.BODY,
            instructions=instructions * 1e6,
            profile=ResourceProfile(
                cpi_base=cpi,
                l2_mpki=mpki,
                working_set_mb=ws,
                solo_l3_hit_fraction=hit,
                mlp=mlp,
            ),
        )
        for p, (instructions, (cpi, mpki, ws, hit, mlp)) in enumerate(phase_params)
    )
    return FunctionSpec(
        name=f"prop-{index}",
        abbreviation=f"prop-{index}",
        language=Language.PYTHON,
        suite="property",
        memory_mb=128,
        body_phases=phases,
    )


fleet_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # thread id
        st.lists(
            st.tuples(st.floats(min_value=0.5, max_value=30.0), profile_values),
            min_size=1,
            max_size=3,
        ),
    ),
    min_size=1,
    max_size=10,
)


@given(fleet_strategy, st.integers(min_value=20, max_value=120))
@settings(max_examples=25, deadline=None)
def test_vector_engine_matches_scalar_on_random_fleets(raw_fleet, epochs):
    scalar = SimulationEngine(
        CPU(CASCADE_LAKE_5218), LeastOccupancyScheduler(), config=EngineConfig()
    )
    vector = VectorEngine(CASCADE_LAKE_5218)
    s_invs, v_invs = [], []
    for index, (thread_id, phase_params) in enumerate(raw_fleet):
        spec = _spec(index, phase_params)
        s_invs.append(scalar.submit(spec, thread_id=thread_id))
        v_invs.append(vector.submit(spec, thread_id=thread_id))
    for _ in range(epochs):
        scalar.run_epoch()
        vector.run_epoch()

    assert vector.stats.completions == len(scalar.completed_invocations())
    for s_inv, v_inv in zip(s_invs, v_invs):
        vector._sync_handle_counters(v_inv.invocation_id)
        s_counters = s_inv.counters.snapshot()
        v_counters = v_inv.counters.snapshot()
        for field in (
            "cycles",
            "instructions",
            "stall_cycles_l2_miss",
            "l2_misses",
            "l3_misses",
            "elapsed_seconds",
        ):
            assert getattr(v_counters, field) == pytest.approx(
                getattr(s_counters, field), rel=RTOL, abs=1e-9
            )
        assert v_inv.finish_time == s_inv.finish_time
        assert v_inv.is_completed == s_inv.is_completed

    s_machine = scalar.cpu.global_counters
    v_machine = vector.machine_counters(0)
    assert v_machine.instructions == pytest.approx(s_machine.instructions, rel=RTOL, abs=1e-9)
    assert v_machine.cycles == pytest.approx(s_machine.cycles, rel=RTOL, abs=1e-9)


cache_entries = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5e9),   # request rate
        st.floats(min_value=0.0, max_value=200.0),  # working set MB
        st.floats(min_value=0.0, max_value=1.0),    # solo hit fraction
    ),
    min_size=1,
    max_size=32,
)


@given(cache_entries)
@settings(max_examples=80, deadline=None)
def test_vector_water_fill_is_bit_exact_vs_cache_model(raw):
    """The vectorized water-fill reproduces SharedCacheModel bit for bit."""
    model = ContentionModel(CASCADE_LAKE_5218)
    engine = VectorEngine(CASCADE_LAKE_5218)
    demands = [
        WorkloadDemand(
            workload_id=index,
            l2_miss_rate=rate,
            working_set_mb=ws,
            solo_l3_hit_fraction=hit,
        )
        for index, (rate, ws, hit) in enumerate(raw)
    ]
    penalties = model.evaluate(demands)
    rates = np.array([d.l2_miss_rate for d in demands])
    needs = np.minimum(
        np.array([d.working_set_mb for d in demands]), CASCADE_LAKE_5218.l3.size_mb
    )
    hits = np.array([d.solo_l3_hit_fraction for d in demands])
    result = engine._water_fill(
        rates, needs, hits, np.zeros(len(demands), dtype=np.int64)
    )
    for index, demand in enumerate(demands):
        assert result[index] == penalties[demand.workload_id].l3_hit_fraction


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=200, deadline=None)
def test_utility_curve_matches_python_pow(coverage, exponent):
    """math.pow (libm) is what the scalar engine's ``**`` resolves to."""
    assert math.pow(coverage, exponent) == coverage**exponent


def test_water_fill_matches_on_multiple_machines():
    """Per-machine water-fill equals running the scalar model per machine."""
    rng = np.random.default_rng(42)
    machines = 3
    per_machine = 9
    model = SharedCacheModel(capacity_mb=CASCADE_LAKE_5218.l3.size_mb)
    engine = VectorEngine(CASCADE_LAKE_5218, machines=machines)
    rates, needs, hits, m_of, expected = [], [], [], [], []
    for machine in range(machines):
        demands = [
            CacheDemand(
                workload_id=i,
                request_rate=float(rng.uniform(0, 2e9)),
                working_set_mb=float(rng.uniform(0, 60)),
                solo_hit_fraction=float(rng.uniform(0, 1)),
            )
            for i in range(per_machine)
        ]
        allocations = model.allocate(demands)
        for demand in demands:
            rates.append(demand.request_rate)
            needs.append(min(demand.working_set_mb, CASCADE_LAKE_5218.l3.size_mb))
            hits.append(demand.solo_hit_fraction)
            m_of.append(machine)
            expected.append(allocations[demand.workload_id].hit_fraction)
    result = engine._water_fill(
        np.array(rates), np.array(needs), np.array(hits), np.array(m_of)
    )
    assert result.tolist() == expected
