"""Tests for ``examples/tenant_billing_report.py``.

The examples directory is not a package, so the module is loaded from its
file path.  The invoice arithmetic is checked against a quick price
evaluation; the streamed-usage section is checked against the batch
billing ledger it must reproduce exactly.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLE = Path(__file__).resolve().parent.parent / "examples" / "tenant_billing_report.py"


@pytest.fixture(scope="module")
def billing_report():
    spec = importlib.util.spec_from_file_location("tenant_billing_report", EXAMPLE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_invoice_rows_mirror_the_price_evaluation(billing_report, quick_config):
    from repro.experiments.harness import price_evaluation_cached

    result = price_evaluation_cached(quick_config)
    rows, totals = billing_report.invoice_rows(result)
    assert len(rows) == len(result.rows)
    assert totals["commercial"] == float(len(rows))
    # Litmus refunds money relative to the commercial charge, so the fleet
    # total must come in at or under commercial (ideal likewise).
    assert 0.0 < totals["litmus"] <= totals["commercial"] + 1e-9
    assert 0.0 < totals["ideal"] <= totals["commercial"] + 1e-9
    for row, source in zip(rows, result.rows):
        assert row["function"] == source.function
        assert row["litmus"] == source.litmus_normalized_price
        assert row["refund_pct"] == source.litmus_discount * 100.0


def test_streamed_usage_matches_batch_billing(billing_report):
    from repro.scenarios import compile_spec, load_spec_or_preset

    rows, summary = billing_report.streamed_usage("smoke", chunk_epochs=50)
    assert summary.finished
    assert summary.records >= len(rows)

    batch = compile_spec(load_spec_or_preset("smoke")).sweep(meter=True).run("vector")
    expected = {}
    for scenario in batch.scenarios:
        billed = dict(scenario.billing.billed_gb_seconds)
        for function, true_total in scenario.billing.true_gb_seconds:
            expected[(scenario.name, function)] = (true_total, billed.get(function, 0.0))
    streamed = {
        (row["scenario"], row["function"]): (row["true_gb_s"], row["billed_gb_s"])
        for row in rows
    }
    # Functions that never completed produce no records; everything else
    # must stream to exactly the batch ledger's totals.
    assert set(streamed) <= set(expected)
    for key, (true_total, billed_total) in expected.items():
        got_true, got_billed = streamed.get(key, (0.0, 0.0))
        assert got_true == pytest.approx(true_total, rel=0, abs=1e-12)
        assert got_billed == pytest.approx(billed_total, rel=0, abs=1e-12)


def test_streamed_usage_rows_are_sorted_and_counted(billing_report):
    rows, _summary = billing_report.streamed_usage("smoke", chunk_epochs=125)
    keys = [(row["scenario"], row["function"]) for row in rows]
    assert keys == sorted(keys)
    assert all(row["updates"] >= 1 for row in rows)
