"""Tests for the memory-bandwidth and ring/uncore latency models."""

import pytest

from repro.hardware.memory import MemoryBandwidthModel, MemoryLoad
from repro.hardware.uncore import RingBandwidthModel, RingLoad


class TestMemoryBandwidthModel:
    def make(self, **kwargs):
        defaults = dict(peak_bandwidth_gbs=100.0, unloaded_latency_cycles=238.0)
        defaults.update(kwargs)
        return MemoryBandwidthModel(**defaults)

    def test_unloaded_latency_at_zero_traffic(self):
        model = self.make()
        assert model.effective_latency_cycles(MemoryLoad(0.0)) == pytest.approx(238.0)

    def test_latency_increases_with_utilization(self):
        model = self.make()
        light = model.effective_latency_cycles(MemoryLoad(10e9))
        heavy = model.effective_latency_cycles(MemoryLoad(90e9))
        assert heavy > light > 238.0

    def test_utilization_clamped(self):
        model = self.make(max_utilization=0.95)
        assert model.utilization(MemoryLoad(1e12)) == pytest.approx(0.95)

    def test_latency_inflation_is_ratio(self):
        model = self.make()
        load = MemoryLoad(50e9)
        assert model.latency_inflation(load) == pytest.approx(
            model.effective_latency_cycles(load) / 238.0
        )

    def test_monotone_in_load(self):
        model = self.make()
        loads = [MemoryLoad(x * 1e9) for x in (0, 20, 40, 60, 80, 120)]
        latencies = [model.effective_latency_cycles(load) for load in loads]
        assert latencies == sorted(latencies)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            self.make(peak_bandwidth_gbs=0)
        with pytest.raises(ValueError):
            self.make(unloaded_latency_cycles=0)
        with pytest.raises(ValueError):
            self.make(max_utilization=1.0)
        with pytest.raises(ValueError):
            MemoryLoad(-1.0)


class TestRingBandwidthModel:
    def make(self, **kwargs):
        defaults = dict(peak_accesses_per_us=950.0, unloaded_latency_cycles=44.0)
        defaults.update(kwargs)
        return RingBandwidthModel(**defaults)

    def test_unloaded_latency(self):
        assert self.make().effective_latency_cycles(RingLoad(0.0)) == pytest.approx(44.0)

    def test_latency_increases_with_traffic(self):
        model = self.make()
        light = model.effective_latency_cycles(RingLoad(100e6))
        heavy = model.effective_latency_cycles(RingLoad(900e6))
        assert heavy > light

    def test_ring_saturates_below_memory_latency_scale(self):
        # Even saturated, an L3 hit should remain far cheaper than DRAM.
        model = self.make()
        saturated = model.effective_latency_cycles(RingLoad(5e9))
        assert saturated < 238.0 * 5

    def test_peak_property_round_trip(self):
        assert self.make().peak_accesses_per_us == pytest.approx(950.0)

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            RingLoad(-5.0)
