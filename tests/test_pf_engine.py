"""Tests for the simulation engine: progress, counters, metering windows."""

import pytest

from repro.hardware.cpu import CPU
from repro.hardware.topology import CASCADE_LAKE_5218
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.events import EventKind
from repro.platform.invoker import InvocationState
from repro.platform.metering import measure_invocation
from repro.platform.scheduler import DedicatedCoreScheduler, LeastOccupancyScheduler
from repro.workloads.registry import default_registry
from repro.workloads.traffic import mb_gen


@pytest.fixture()
def spec():
    return default_registry().scaled(0.1).get("auth-py")


@pytest.fixture()
def heavy_spec():
    return default_registry().scaled(0.1).get("pager-py")


def make_engine(**kwargs):
    cpu = CPU(CASCADE_LAKE_5218, **kwargs.pop("cpu_kwargs", {}))
    scheduler = kwargs.pop("scheduler", DedicatedCoreScheduler())
    return SimulationEngine(cpu, scheduler, **kwargs)


class TestEngineBasics:
    def test_submit_starts_invocation(self, spec):
        engine = make_engine()
        invocation = engine.submit(spec)
        assert invocation.state is InvocationState.RUNNING
        assert invocation.thread_id is not None
        assert engine.active_invocations() == [invocation]

    def test_time_advances_by_epochs(self, spec):
        engine = make_engine(config=EngineConfig(epoch_seconds=2e-3))
        engine.run_epoch()
        assert engine.time_seconds == pytest.approx(2e-3)
        engine.run_for(10e-3)
        assert engine.time_seconds == pytest.approx(12e-3)

    def test_solo_run_completes_and_counts_instructions(self, spec):
        engine = make_engine()
        invocation = engine.submit(spec)
        assert engine.run_until(lambda e: invocation.is_completed, max_seconds=10.0)
        assert invocation.counters.instructions == pytest.approx(
            spec.total_instructions, rel=1e-6
        )
        assert invocation.counters.cycles > 0
        assert invocation.occupied_seconds > 0
        assert invocation.wall_time_seconds >= invocation.occupied_seconds - 1e-9

    def test_startup_window_recorded(self, spec):
        engine = make_engine()
        invocation = engine.submit(spec)
        engine.run_until(lambda e: invocation.startup_recorded, max_seconds=10.0)
        assert invocation.startup_counters is not None
        assert invocation.startup_counters.instructions >= spec.startup_instructions
        assert invocation.machine_counters_at_startup_end is not None

    def test_events_logged_in_order(self, spec):
        engine = make_engine()
        invocation = engine.submit(spec)
        engine.run_until(lambda e: invocation.is_completed, max_seconds=10.0)
        kinds = [e.kind for e in engine.event_log.for_invocation(invocation.invocation_id)]
        assert kinds == [
            EventKind.SUBMIT,
            EventKind.START,
            EventKind.STARTUP_COMPLETE,
            EventKind.FINISH,
        ]

    def test_completed_invocations_filtering(self, spec, heavy_spec):
        engine = make_engine()
        a = engine.submit(spec, tags={"role": "test"})
        b = engine.submit(heavy_spec, tags={"role": "churn"})
        engine.run_until(lambda e: a.is_completed and b.is_completed, max_seconds=20.0)
        assert len(engine.completed_invocations()) == 2
        assert engine.completed_invocations(role="test") == [a]
        assert engine.completed_invocations(abbreviation=heavy_spec.abbreviation) == [b]

    def test_machine_counters_track_invocations(self, spec):
        engine = make_engine()
        invocation = engine.submit(spec)
        engine.run_until(lambda e: invocation.is_completed, max_seconds=10.0)
        assert engine.cpu.global_counters.instructions >= invocation.counters.instructions


class TestContentionEffects:
    def test_corunning_slows_execution(self, heavy_spec):
        solo_engine = make_engine()
        solo = solo_engine.submit(heavy_spec)
        solo_engine.run_until(lambda e: solo.is_completed, max_seconds=20.0)

        congested_engine = make_engine()
        victim = congested_engine.submit(heavy_spec, thread_id=0)
        for index, gen_spec in enumerate(mb_gen(16).thread_specs()):
            congested_engine.submit(gen_spec, thread_id=index + 1)
        congested_engine.run_until(lambda e: victim.is_completed, max_seconds=40.0)

        solo_time = measure_invocation(solo).t_total_seconds
        congested_time = measure_invocation(victim).t_total_seconds
        assert congested_time > solo_time * 1.05

    def test_congestion_inflates_shared_more_than_private(self, heavy_spec):
        solo_engine = make_engine()
        solo = solo_engine.submit(heavy_spec)
        solo_engine.run_until(lambda e: solo.is_completed, max_seconds=20.0)
        congested_engine = make_engine()
        victim = congested_engine.submit(heavy_spec, thread_id=0)
        for index, gen_spec in enumerate(mb_gen(16).thread_specs()):
            congested_engine.submit(gen_spec, thread_id=index + 1)
        congested_engine.run_until(lambda e: victim.is_completed, max_seconds=40.0)

        solo_measure = measure_invocation(solo)
        congested_measure = measure_invocation(victim)
        shared_inflation = congested_measure.t_shared_seconds / solo_measure.t_shared_seconds
        private_inflation = congested_measure.t_private_seconds / solo_measure.t_private_seconds
        assert shared_inflation > private_inflation
        assert private_inflation < 1.3


class TestTemporalSharing:
    def test_two_functions_share_a_thread(self, spec):
        engine = make_engine(scheduler=LeastOccupancyScheduler(max_per_thread=4))
        a = engine.submit(spec, thread_id=0)
        b = engine.submit(spec, thread_id=0)
        engine.run_until(lambda e: a.is_completed and b.is_completed, max_seconds=20.0)
        assert a.mean_thread_occupancy > 1.0
        assert a.counters.context_switches > 0

    def test_sharing_inflates_private_time(self, spec):
        solo_engine = make_engine()
        solo = solo_engine.submit(spec)
        solo_engine.run_until(lambda e: solo.is_completed, max_seconds=20.0)

        shared_engine = make_engine(scheduler=LeastOccupancyScheduler(max_per_thread=10))
        shared = [shared_engine.submit(spec, thread_id=0) for _ in range(6)]
        shared_engine.run_until(
            lambda e: all(s.is_completed for s in shared), max_seconds=60.0
        )
        solo_private = measure_invocation(solo).t_private_seconds
        shared_private = measure_invocation(shared[0]).t_private_seconds
        assert shared_private > solo_private
        # The inflation is the saturating switching overhead, i.e. a few percent.
        assert shared_private < solo_private * 1.1


class TestRunUntil:
    def test_returns_false_when_budget_exhausted(self, spec):
        engine = make_engine()
        engine.submit(spec)
        assert engine.run_until(lambda e: False, max_seconds=0.01) is False

    def test_validates_arguments(self, spec):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.run_until(lambda e: True, max_seconds=0)
        with pytest.raises(ValueError):
            engine.run_for(-1)
