"""The bench-regression gate: matching, thresholds, exit codes."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_bench_regression", ROOT / "tools" / "check_bench_regression.py"
)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _trajectory(path: Path, runs) -> Path:
    path.write_text(json.dumps({"version": 1, "runs": runs}), encoding="utf-8")
    return path


def _sweep_run(seconds_vector, seconds_scalar, fleet_size=80):
    return {
        "source": "fleet-sweep",
        "figures": {
            "fleet-sweep-vector": seconds_vector,
            "fleet-sweep-scalar": seconds_scalar,
        },
        "fleet_size": fleet_size,
        "horizon_seconds": 0.5,
        "registry_scale": 0.05,
    }


def _stream_run(seconds, spec="smoke", chunk_epochs=25):
    return {
        "source": "stream-replay",
        "figures": {"stream-replay": seconds},
        "spec": spec,
        "chunk_epochs": chunk_epochs,
    }


def test_clean_run_passes(tmp_path, capsys):
    baseline = _trajectory(
        tmp_path / "base.json", [_sweep_run(0.2, 0.4), _stream_run(0.1)]
    )
    fresh = _trajectory(
        tmp_path / "fresh.json", [_sweep_run(0.22, 0.41), _stream_run(0.12)]
    )
    assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    out = capsys.readouterr().out
    assert "all 3 compared entries" in out


def test_regression_fails(tmp_path, capsys):
    baseline = _trajectory(tmp_path / "base.json", [_stream_run(0.1)])
    fresh = _trajectory(tmp_path / "fresh.json", [_stream_run(0.5)])
    assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_baseline_is_the_minimum_over_matches(tmp_path):
    # two baseline entries: the faster one anchors the gate
    baseline = _trajectory(
        tmp_path / "base.json", [_stream_run(0.3), _stream_run(0.1)]
    )
    fresh = _trajectory(tmp_path / "fresh.json", [_stream_run(0.2)])
    assert (
        gate.main(
            ["--baseline", str(baseline), "--fresh", str(fresh), "--factor", "1.5"]
        )
        == 1
    )


def test_signature_mismatch_is_skipped_not_failed(tmp_path, capsys):
    baseline = _trajectory(tmp_path / "base.json", [_stream_run(0.1, spec="smoke")])
    fresh = _trajectory(
        tmp_path / "fresh.json",
        [_stream_run(5.0, spec="chaos-smoke"), _sweep_run(1.0, 2.0)],
    )
    assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    out = capsys.readouterr().out
    assert out.count("SKIP") == 3  # chaos-smoke stream + both sweep figures


def test_differing_grids_do_not_compare(tmp_path, capsys):
    baseline = _trajectory(
        tmp_path / "base.json", [_sweep_run(0.1, 0.2, fleet_size=80)]
    )
    fresh = _trajectory(
        tmp_path / "fresh.json", [_sweep_run(9.0, 9.0, fleet_size=800)]
    )
    assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    assert "SKIP" in capsys.readouterr().out


def test_ungated_sources_are_ignored(tmp_path, capsys):
    runs = [{"source": "benchmarks", "figures": {"fig11": 10.0}}]
    baseline = _trajectory(tmp_path / "base.json", runs)
    fresh = _trajectory(
        tmp_path / "fresh.json",
        [{"source": "benchmarks", "figures": {"fig11": 99.0}}],
    )
    assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    assert "nothing to compare" in capsys.readouterr().out


def test_calibrate_entries_gate_on_mode_and_profile(tmp_path, capsys):
    cal = {
        "source": "calibrate",
        "figures": {"calibrate": 0.1},
        "mode": "once",
        "profile": "sg2042-like",
        "parameter": "contention.memory_queueing_coefficient",
    }
    baseline = _trajectory(tmp_path / "base.json", [cal])
    slow = dict(cal, figures={"calibrate": 0.5})
    fresh = _trajectory(tmp_path / "fresh.json", [slow])
    assert gate.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 1


def test_bad_factor_is_a_usage_error(tmp_path, capsys):
    baseline = _trajectory(tmp_path / "base.json", [])
    fresh = _trajectory(tmp_path / "fresh.json", [])
    assert (
        gate.main(
            ["--baseline", str(baseline), "--fresh", str(fresh), "--factor", "0.9"]
        )
        == 2
    )


def test_unreadable_trajectory_exits_loudly(tmp_path):
    fresh = _trajectory(tmp_path / "fresh.json", [])
    with pytest.raises(SystemExit, match="cannot read"):
        gate.main(
            ["--baseline", str(tmp_path / "missing.json"), "--fresh", str(fresh)]
        )


def test_committed_baseline_matches_the_ci_smoke_shape():
    """The committed anchor must cover every gated CI smoke entry."""
    document = json.loads((ROOT / "BENCH_baseline.json").read_text(encoding="utf-8"))
    signatures = set()
    for run in document["runs"]:
        for signature, _ in gate._signatures(run):
            signatures.add(signature)
    assert ("fleet-sweep", "fleet-sweep-vector", 80, 0.5, 0.05) in signatures
    assert ("fleet-sweep", "fleet-sweep-scalar", 80, 0.5, 0.05) in signatures
    assert ("stream-replay", "stream-replay", "smoke", 25) in signatures
    assert (
        "calibrate",
        "calibrate",
        "once",
        "sg2042-like",
        "contention.memory_queueing_coefficient",
    ) in signatures
