"""Regression tests for the parallel-runner calibration warm-up.

``python -m repro run --jobs 2`` used to take ~137s against ~50s
sequential: every pool worker started with cold in-process caches at the
same instant and recomputed the same calibration sweeps concurrently
(the disk cache deduplicates *sequential* work, not simultaneous work).
The fix warms each distinct calibration once in the parent before the
fan-out; these tests pin down the dedup arithmetic and the disk-cache
reuse that makes the warmed workers actually start warm.
"""

from __future__ import annotations

import pytest

from repro.core.calibration import Calibrator, clear_calibration_cache
from repro.experiments import harness
from repro.experiments.config import PricingMethod, sharing_160, unfixed_frequency_160
from repro.experiments.harness import (
    calibration_for,
    calibration_identity,
    clear_experiment_caches,
    warm_shared_calibrations,
)
from repro.experiments.runner import FIGURE_MODULES


def test_full_sweep_warms_exactly_four_distinct_calibrations(monkeypatch):
    """All 26 figure jobs share just 4 calibration tables."""
    warmed = []
    monkeypatch.setattr(
        harness, "calibration_for", lambda config: warmed.append(config)
    )
    count = warm_shared_calibrations(list(FIGURE_MODULES))
    assert count == len(warmed) == 4
    identities = {calibration_identity(config) for config in warmed}
    assert len(identities) == 4
    # The four: dedicated/Cascade, shared/Cascade, shared/IceLake, smt/Cascade.
    assert {identity[0] for identity in identities} == {
        "xeon-gold-5218",
        "xeon-silver-4314",
    }
    assert {identity[1].name for identity in identities} == {
        "dedicated-14",
        "shared-5x10",
        "smt-5x5",
    }


def test_calibration_free_figures_warm_nothing(monkeypatch):
    monkeypatch.setattr(
        harness,
        "calibration_for",
        lambda config: pytest.fail("no calibration should be computed"),
    )
    assert warm_shared_calibrations(["table1", "fig01", "fig02", "fig14"]) == 0


def test_turbo_config_shares_the_shared_cascade_tables():
    """frequency_policy must stay out of the identity: fig18 (turbo) reuses
    fig16's calibration rather than forcing a fifth sweep."""
    assert calibration_identity(unfixed_frequency_160()) == calibration_identity(
        sharing_160(PricingMethod.METHOD2)
    )
    # ...while METHOD1's dedicated scenario is a genuinely different table.
    assert calibration_identity(sharing_160(PricingMethod.METHOD1)) != calibration_identity(
        sharing_160(PricingMethod.METHOD2)
    )


def test_warmed_calibration_is_reused_from_disk_by_cold_workers(
    quick_config, monkeypatch
):
    """A worker with cold in-process caches must load the parent's warmed
    calibration from disk instead of re-running the sweep."""
    reference = calibration_for(quick_config)  # parent warms (and persists)

    # Simulate a fresh worker process: in-process caches empty...
    clear_calibration_cache()
    clear_experiment_caches()
    # ...and any attempt to actually calibrate is an error.
    monkeypatch.setattr(
        Calibrator,
        "calibrate",
        lambda self: pytest.fail("cold worker recomputed a warmed calibration"),
    )
    reloaded = calibration_for(quick_config)
    assert reloaded.machine.name == reference.machine.name
    assert reloaded.scenario == reference.scenario
