"""Fault axis: spec parsing, determinism, metering robustness, degradation."""

from __future__ import annotations

import pytest

from repro.platform.batch import FleetSweep, scenario_grid
from repro.platform.faults import FAULT_TYPES, FaultSpec, faults_for_scenario
from repro.platform.metering import MeterFaultInjector, MeteringLedger
from repro.scenarios import (
    DegradationReport,
    SpecError,
    compile_spec,
    expand_grid,
    load_preset,
    parse_spec_text,
)

TINY = dict(horizon_seconds=0.2, epoch_seconds=1e-3, registry_scale=0.05)


def spec_with_faults(fault_toml: str):
    return parse_spec_text(
        'name = "chaos"\n'
        "[sweep]\nhorizon_seconds = 0.2\nregistry_scale = 0.05\n"
        '[grid]\nmixes = ["all"]\nmachines = [1, 2]\ncores_per_machine = 3\n'
        + fault_toml
    )


class TestFaultParsing:
    def test_unknown_type_names_path_and_choices(self):
        with pytest.raises(SpecError) as excinfo:
            spec_with_faults('[[faults]]\ntype = "churn-spiky"\ncount = 1\n')
        message = str(excinfo.value)
        assert "faults[0].type" in message
        assert "'churn-spiky'" in message
        for valid in FAULT_TYPES:
            assert valid in message

    def test_missing_type_is_an_error(self):
        with pytest.raises(SpecError, match=r"faults\[0\]"):
            spec_with_faults("[[faults]]\ncount = 1\n")

    def test_unknown_key_for_type_is_an_error(self):
        # `factor` belongs to freq-throttle, not churn-spike.
        with pytest.raises(SpecError, match=r"faults\[0\]"):
            spec_with_faults(
                '[[faults]]\ntype = "churn-spike"\ncount = 1\nfactor = 0.5\n'
            )

    def test_second_entry_reports_its_own_index(self):
        with pytest.raises(SpecError, match=r"faults\[1\]"):
            spec_with_faults(
                '[[faults]]\ntype = "churn-spike"\ncount = 1\n'
                '[[faults]]\ntype = "meter-drop"\nprobability = 1.5\n'
            )

    def test_probability_out_of_range(self):
        with pytest.raises(SpecError, match=r"probability"):
            spec_with_faults(
                '[[faults]]\ntype = "meter-drop"\nprobability = -0.1\n'
            )

    def test_throttle_factor_above_one_rejected(self):
        with pytest.raises(SpecError, match=r"factor"):
            spec_with_faults(
                '[[faults]]\ntype = "freq-throttle"\nfactor = 1.5\n'
            )

    def test_count_must_be_positive(self):
        with pytest.raises(SpecError, match=r"count"):
            spec_with_faults('[[faults]]\ntype = "churn-spike"\ncount = 0\n')

    def test_start_past_horizon_rejected(self):
        with pytest.raises(SpecError, match=r"start_seconds"):
            spec_with_faults(
                '[[faults]]\ntype = "churn-spike"\ncount = 1\n'
                "start_seconds = 0.5\n"
            )

    def test_scenario_glob_matching_nothing_rejected(self):
        with pytest.raises(SpecError, match=r"matches no scenario"):
            compile_spec(
                spec_with_faults(
                    '[[faults]]\ntype = "churn-spike"\ncount = 1\n'
                    'scenario = "nope-*"\n'
                )
            )

    def test_bad_noisy_neighbor_function_rejected(self):
        with pytest.raises(SpecError, match=r"functions"):
            compile_spec(
                spec_with_faults(
                    '[[faults]]\ntype = "noisy-neighbor"\ncount = 1\n'
                    'functions = ["not-a-fn"]\n'
                )
            )

    def test_expand_grid_attaches_matching_faults(self):
        spec = spec_with_faults(
            '[[faults]]\ntype = "churn-spike"\ncount = 1\nscenario = "all-m1-*"\n'
            '[[faults]]\ntype = "meter-drop"\nprobability = 0.5\n'
        )
        by_name = {cell.name: cell.faults for cell in expand_grid(spec)}
        assert [f.type for f in by_name["all-m1-c1"]] == ["churn-spike", "meter-drop"]
        assert [f.type for f in by_name["all-m2-c1"]] == ["meter-drop"]

    def test_default_seeds_differ_per_entry(self):
        spec = spec_with_faults(
            '[[faults]]\ntype = "meter-drop"\nprobability = 0.5\n'
            '[[faults]]\ntype = "meter-dup"\nprobability = 0.5\n'
        )
        assert spec.faults[0].seed != spec.faults[1].seed

    def test_faults_for_scenario_globs(self):
        faults = (
            FaultSpec(type="churn-spike", count=1, scenario="all-*"),
            FaultSpec(type="meter-drop", probability=0.5, scenario="mem-*"),
        )
        assert [f.type for f in faults_for_scenario(faults, "all-m1-c1")] == [
            "churn-spike"
        ]


class TestMeterRobustness:
    def test_certain_drop_bills_nothing(self):
        ledger = MeteringLedger()
        injector = MeterFaultInjector(drop_probability=1.0)
        for _ in range(10):
            ledger.observe("aes-py", 0.5, 2.0, copies=injector.copies())
        assert ledger.true_total == pytest.approx(10.0)
        assert ledger.billed_total == 0.0
        assert ledger.dropped == 10
        assert ledger.freeze().billing_error_fraction == pytest.approx(-1.0)

    def test_certain_duplication_doubles_the_bill(self):
        ledger = MeteringLedger()
        injector = MeterFaultInjector(duplicate_probability=1.0)
        for _ in range(10):
            ledger.observe("aes-py", 0.5, 2.0, copies=injector.copies())
        assert ledger.billed_total == pytest.approx(2.0 * ledger.true_total)
        assert ledger.duplicated == 10
        assert ledger.freeze().billing_error_fraction == pytest.approx(1.0)

    def test_seeded_partial_loss_is_reproducible_per_tenant(self):
        def run():
            ledger = MeteringLedger()
            injector = MeterFaultInjector(drop_probability=0.3, drop_seed=7)
            for index in range(100):
                tenant = f"fn-{index % 3}"
                ledger.observe(tenant, 0.25, 1.0, copies=injector.copies())
            return ledger.freeze()

        first, second = run(), run()
        assert first == second  # sorted tuples: full bit-comparison
        assert first.dropped > 0
        assert dict(first.per_tenant_error())  # every tenant reported

    def test_drop_consumes_before_duplicate(self):
        """A dropped event must not advance the duplicate RNG stream."""
        both = MeterFaultInjector(
            drop_probability=1.0, duplicate_probability=0.5, duplicate_seed=3
        )
        dup_only = MeterFaultInjector(duplicate_probability=0.5, duplicate_seed=3)
        for _ in range(20):
            assert both.copies() == 0
        # dup stream untouched by the dropped events above.
        fresh = MeterFaultInjector(duplicate_probability=0.5, duplicate_seed=3)
        assert [dup_only.copies() for _ in range(20)] == [
            fresh.copies() for _ in range(20)
        ]


@pytest.mark.slow
class TestFaultedSweeps:
    def test_backends_agree_on_injections(self):
        from dataclasses import replace

        faults = (
            FaultSpec(
                type="churn-spike",
                count=2,
                start_seconds=0.05,
                duration_seconds=0.1,
            ),
            FaultSpec(type="meter-dup", probability=0.3),
        )
        grid = [
            replace(cell, faults=faults)
            for cell in scenario_grid(["all"], [1, 2], [2], cores_per_machine=3, seed=5)
        ]
        vector = FleetSweep(grid, **TINY).run("vector")
        scalar = FleetSweep(grid, **TINY).run("scalar")
        for a, b in zip(vector.scenarios, scalar.scenarios):
            assert a.completed == b.completed
            assert a.fault_stats == b.fault_stats
            # Cross-backend floats agree to rtol like the rest of the suite
            # (bit-exactness is a within-backend/sharding guarantee).
            assert a.billing.events == b.billing.events
            assert a.billing.dropped == b.billing.dropped
            assert a.billing.duplicated == b.billing.duplicated
            assert a.billing.true_total == pytest.approx(
                b.billing.true_total, rel=1e-9
            )
            assert a.billing.billed_total == pytest.approx(
                b.billing.billed_total, rel=1e-9
            )

    def test_chaos_preset_is_deterministic(self):
        compiled = compile_spec(load_preset("chaos-smoke"))
        base = compiled.without_faults().run(shards=1, meter=True)
        first = DegradationReport.build(
            base.result, compiled.run(shards=1, meter=True).result
        )
        second = DegradationReport.build(
            base.result, compiled.run(shards=1, meter=True).result
        )
        assert first.to_dict() == second.to_dict()
        assert first.render() == second.render()
        assert len(first.rows) == 2

    def test_faults_actually_degrade_something(self):
        compiled = compile_spec(load_preset("chaos-smoke"))
        base = compiled.without_faults().run(shards=1, meter=True)
        faulted = compiled.run(shards=1, meter=True)
        report = DegradationReport.build(base.result, faulted.result)
        assert any(row.injections > 0 for row in report.rows)
        assert any(row.billing_error_fraction != 0.0 for row in report.rows)
        assert any(row.throttled_machine_epochs > 0 for row in report.rows)

    def test_fault_free_metered_run_matches_plain(self):
        grid = scenario_grid(["all"], [1, 2], [2], cores_per_machine=3, seed=5)
        plain = FleetSweep(grid, **TINY).run("vector")
        metered = FleetSweep(grid, meter=True, **TINY).run("vector")
        for a, b in zip(plain.scenarios, metered.scenarios):
            assert a.completed == b.completed
            assert a.instructions == b.instructions
            assert b.billing is not None
            assert b.billing.billed_total == b.billing.true_total
