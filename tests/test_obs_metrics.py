"""Observability layer: snapshots, emitter throttling, collector summaries."""

from __future__ import annotations

import json
import queue

import pytest

from repro.obs import JsonlWriter, MetricsCollector, MetricsEmitter, ProgressSnapshot


def payload(**overrides):
    base = dict(
        backend="vector",
        scenarios_total=2,
        scenarios_done=1,
        epochs_done=100,
        epochs_total=400,
        completions=17,
        submissions=20,
        fault_injections=3,
        meter_dropped=1,
        meter_duplicated=0,
        billed_gb_seconds=0.9,
        true_gb_seconds=1.0,
        done=False,
    )
    base.update(overrides)
    return base


class TestProgressSnapshot:
    def snapshot(self, **overrides):
        return ProgressSnapshot(shard="0", wall_seconds=2.0, **payload(**overrides))

    def test_derived_rates(self):
        snap = self.snapshot()
        assert snap.epochs_per_second == pytest.approx(50.0)
        assert snap.progress_fraction == pytest.approx(0.25)
        assert snap.billing_error_fraction == pytest.approx(-0.1)

    def test_zero_denominators_are_safe(self):
        snap = ProgressSnapshot(
            shard="0",
            wall_seconds=0.0,
            **payload(epochs_total=0, true_gb_seconds=0.0),
        )
        assert snap.epochs_per_second == 0.0
        assert snap.progress_fraction == 0.0
        assert snap.billing_error_fraction == 0.0

    def test_to_dict_round_trips_through_json(self):
        record = json.loads(json.dumps(self.snapshot().to_dict()))
        assert record["shard"] == "0"
        assert record["epochs_per_second"] == pytest.approx(50.0)

    def test_render_line_mentions_faults_only_when_present(self):
        assert "faults:" in self.snapshot().render_line()
        clean = self.snapshot(
            fault_injections=0, meter_dropped=0, meter_duplicated=0
        )
        assert "faults:" not in clean.render_line()
        assert "[done]" in self.snapshot(done=True).render_line()


class TestMetricsEmitter:
    def test_throttles_but_passes_done(self):
        q = queue.Queue()
        emitter = MetricsEmitter(q, min_interval_seconds=3600.0)
        emitter(payload())  # first emission always goes out
        for _ in range(5):
            emitter(payload())  # throttled away
        emitter(payload(done=True))  # done bypasses the throttle
        snapshots = []
        while not q.empty():
            snapshots.append(q.get())
        assert len(snapshots) == 2
        assert not snapshots[0].done and snapshots[1].done

    def test_unthrottled_emits_everything(self):
        q = queue.Queue()
        emitter = MetricsEmitter(q, min_interval_seconds=0.0)
        for _ in range(4):
            emitter(payload())
        assert q.qsize() == 4

    def test_shard_label_prefix(self):
        q = queue.Queue()
        MetricsEmitter(q, shard=3, label="base:")(payload())
        assert q.get().shard == "base:3"

    def test_queue_failures_are_swallowed(self):
        class Broken:
            def put(self, item):
                raise RuntimeError("gone")

        MetricsEmitter(Broken(), min_interval_seconds=0.0)(payload())  # no raise


class TestMetricsCollector:
    def drain(self, snapshots, **kwargs):
        q = queue.Queue()
        collector = MetricsCollector(q, **kwargs).start()
        for snap in snapshots:
            q.put(snap)
        collector.stop()
        return collector

    def test_summary_aggregates_final_snapshots(self):
        early = ProgressSnapshot(shard="0", wall_seconds=1.0, **payload())
        final0 = ProgressSnapshot(
            shard="0", wall_seconds=2.0, **payload(epochs_done=400, done=True)
        )
        final1 = ProgressSnapshot(
            shard="1",
            wall_seconds=2.0,
            **payload(epochs_done=300, completions=5, done=True),
        )
        collector = self.drain([early, final0, final1])
        summary = collector.summary()
        assert collector.snapshots_seen == 3
        assert summary["epochs"] == 700
        assert summary["completions"] == 22
        assert summary["shards"]["0"]["done"] and summary["shards"]["1"]["done"]

    def test_unfinished_shard_falls_back_to_latest(self):
        only = ProgressSnapshot(shard="2", wall_seconds=1.0, **payload())
        summary = self.drain([only]).summary()
        assert summary["shards"]["2"]["done"] is False
        assert summary["epochs"] == 100

    def test_jsonl_output(self, tmp_path):
        out = tmp_path / "metrics.jsonl"
        snap = ProgressSnapshot(shard="0", wall_seconds=1.0, **payload(done=True))
        self.drain([snap, snap], out_path=out)
        lines = out.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["shard"] == "0"

    def test_renders_done_lines_to_stream(self, tmp_path):
        import io

        stream = io.StringIO()
        snap = ProgressSnapshot(shard="0", wall_seconds=1.0, **payload(done=True))
        self.drain([snap], stream=stream, min_render_interval_seconds=3600.0)
        assert "[done]" in stream.getvalue()


class TestJsonlWriter:
    def test_appends_sorted_json_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlWriter(path) as writer:
            writer.write({"b": 2, "a": 1})
            writer.write({"figure": "fig11"})
        lines = path.read_text(encoding="utf-8").splitlines()
        assert json.loads(lines[0]) == {"a": 1, "b": 2}
        assert lines[0].index('"a"') < lines[0].index('"b"')
        assert json.loads(lines[1]) == {"figure": "fig11"}
