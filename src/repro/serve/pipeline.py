"""Bounded-queue ingest → simulate → publish pipeline.

The service shape from the opendt exemplar: three small stages around one
deterministic core.  The *ingest* stage feeds trace chunks into a bounded
queue; the *simulate* stage — the caller's thread, and the only thread
that ever touches the engine — consumes them, advances the replay, and
pushes each :class:`~repro.serve.replay.ChunkResult` into a second bounded
queue; the *publish* stage drains that queue into a caller-supplied sink
(a JSONL writer, a metrics emitter, a billing API...).

Both queues have ``queue_depth`` slots, so a slow simulator stalls the
ingester and a slow publisher stalls the simulator — backpressure, not
unbounded buffering.  Because only the simulate stage drives the engine,
the threading never perturbs results: the epoch/submit sequence is the
single-threaded one, bit for bit.

Checkpoints are written by the simulate stage every ``checkpoint_every``
chunks (and once more when stopping early), so a killed service resumes
from a consistent, fully-published prefix of the trace.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional

from repro.obs.trace import SpanContext, Tracer, TraceSpan
from repro.serve.checkpoint import save_checkpoint
from repro.serve.replay import ChunkResult, StreamReplay
from repro.scenarios.trace import TraceChunk

#: Publish sink: called once per ChunkResult, in chunk order.
PublishSink = Callable[[ChunkResult], None]

_DONE = None


@dataclass(frozen=True)
class StreamSummary:
    """What one :meth:`StreamPipeline.run` call accomplished."""

    chunks: int
    epochs: int
    records: int
    completions: int
    checkpoints_written: int
    finished: bool
    time_seconds: float


class StreamPipeline:
    """Run a replay over a chunk plan with staged backpressure.

    Parameters: ``replay`` the (possibly restored) replay; ``chunks`` the
    trace chunks still to ingest (callers resuming from a checkpoint pass
    the remaining suffix of the plan); ``publish`` the per-chunk sink;
    ``queue_depth`` the backpressure bound of each inter-stage queue;
    ``checkpoint_to`` + ``checkpoint_every`` enable periodic checkpoints;
    ``max_chunks`` stops early after that many chunks (taking a final
    checkpoint), which is how the kill-and-resume tests and the CI resume
    step interrupt a run deterministically; ``finalize`` drains residual
    epochs to the horizon after the last chunk (on by default — pass
    ``False`` only with ``max_chunks``-style partial runs).
    """

    def __init__(
        self,
        replay: StreamReplay,
        chunks: Iterable[TraceChunk],
        *,
        publish: Optional[PublishSink] = None,
        queue_depth: int = 4,
        checkpoint_to: Optional[Path] = None,
        checkpoint_every: int = 0,
        max_chunks: Optional[int] = None,
        finalize: bool = True,
        tracer: Optional[Tracer] = None,
        trace_parent: Optional[SpanContext] = None,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if max_chunks is not None and max_chunks < 1:
            raise ValueError("max_chunks must be >= 1")
        self._replay = replay
        self._chunks = list(chunks)
        self._publish = publish
        self._in: "queue.Queue[Optional[TraceChunk]]" = queue.Queue(queue_depth)
        self._out: "queue.Queue[Optional[ChunkResult]]" = queue.Queue(queue_depth)
        self._checkpoint_to = checkpoint_to
        self._checkpoint_every = checkpoint_every
        self._max_chunks = max_chunks
        self._finalize = finalize
        self._stop = threading.Event()
        self._publish_error: List[BaseException] = []
        #: Optional span tracing (repro.obs.trace).  Stage spans parent
        #: explicitly on ``trace_parent`` — three threads share one
        #: tracer, so the open-span stack cannot be relied on here.
        self._tracer = tracer
        self._trace_parent = trace_parent

    def _stage_span(self, name: str) -> Optional[TraceSpan]:
        if self._tracer is None:
            return None
        return self._tracer.start(
            name, parent=self._trace_parent, tags={"phase": name}
        )

    def _end_span(self, span: Optional[TraceSpan], **tags: object) -> None:
        if self._tracer is not None and span is not None:
            span.tags.update(tags)
            self._tracer.finish(span)

    def _ingest_stage(self) -> None:
        span = self._stage_span("ingest")
        try:
            self._ingest_loop()
        finally:
            self._end_span(span, chunks=len(self._chunks))

    def _ingest_loop(self) -> None:
        for chunk in self._chunks:
            while not self._stop.is_set():
                try:
                    self._in.put(chunk, timeout=0.1)
                    break
                except queue.Full:
                    continue
            if self._stop.is_set():
                return
        # Sentinel: the trace is fully ingested.
        while not self._stop.is_set():
            try:
                self._in.put(_DONE, timeout=0.1)
                return
            except queue.Full:
                continue

    def _publish_stage(self) -> None:
        span = self._stage_span("publish")
        published = 0
        try:
            while True:
                result = self._out.get()
                if result is _DONE:
                    return
                if self._publish is not None:
                    try:
                        self._publish(result)
                        published += 1
                    except BaseException as error:  # surfaced by run()
                        self._publish_error.append(error)
                        self._stop.set()
                        return
        finally:
            self._end_span(span, published=published)

    def _get_in(self) -> Optional[TraceChunk]:
        """Next chunk, or the sentinel once ingest is done or stopping."""
        while True:
            try:
                return self._in.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set():
                    return _DONE
                continue

    def _put_out(self, item: Optional[ChunkResult]) -> bool:
        """Offer ``item`` to the publisher; gives up if it already died."""
        while True:
            if self._publish_error:
                return False
            try:
                self._out.put(item, timeout=0.1)
                return True
            except queue.Full:
                continue

    def _maybe_checkpoint(self, force: bool = False) -> bool:
        if self._checkpoint_to is None:
            return False
        due = (
            self._checkpoint_every > 0
            and self._replay.chunks_ingested % self._checkpoint_every == 0
        )
        if not (due or force):
            return False
        save_checkpoint(self._checkpoint_to, self._replay)
        return True

    def run(self) -> StreamSummary:
        """Drive the three stages to completion (or the ``max_chunks`` stop)."""
        replay = self._replay
        ingest = threading.Thread(target=self._ingest_stage, name="stream-ingest")
        publish = threading.Thread(target=self._publish_stage, name="stream-publish")
        ingest.start()
        publish.start()
        chunks = 0
        epochs = 0
        records = 0
        checkpoints = 0
        simulate_span = self._stage_span("simulate")
        try:
            while not self._stop.is_set():
                item = self._get_in()
                if item is _DONE:
                    break
                chunk_span = (
                    None
                    if self._tracer is None
                    else self._tracer.start(
                        f"chunk-{replay.chunks_ingested}",
                        parent=simulate_span,
                        tags={"phase": "chunk"},
                    )
                )
                result = replay.ingest(item)
                chunks += 1
                epochs += result.epochs
                records += len(result.records)
                self._end_span(
                    chunk_span, epochs=result.epochs, records=len(result.records)
                )
                self._put_out(result)
                if self._maybe_checkpoint():
                    checkpoints += 1
                if self._max_chunks is not None and chunks >= self._max_chunks:
                    self._stop.set()
                    break
            stopped_early = self._stop.is_set()
            if not stopped_early and self._finalize and not replay.finished:
                result = replay.drain()
                epochs += result.epochs
                records += len(result.records)
                self._put_out(result)
            if stopped_early and not replay.finished:
                if self._maybe_checkpoint(force=True):
                    checkpoints += 1
        finally:
            self._stop.set()
            self._put_out(_DONE)
            ingest.join()
            publish.join()
            self._end_span(simulate_span, chunks=chunks, epochs=epochs)
        if self._publish_error:
            raise self._publish_error[0]
        return StreamSummary(
            chunks=chunks,
            epochs=epochs,
            records=records,
            completions=replay.completions,
            checkpoints_written=checkpoints,
            finished=replay.finished,
            time_seconds=replay.time_seconds,
        )
