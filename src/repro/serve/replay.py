"""The resumable streaming replay state machine.

:class:`StreamReplay` drives one :class:`~repro.platform.batch.VectorEngine`
through the exact epoch/submit sequence of the batch sweep's instrumented
vector path (``FleetSweep._run_vector_instrumented``), but pausable after
*any* epoch.  Bit-exactness falls out of two invariants:

* The horizon is segmented at the same fault boundaries, and each
  segment's float target is computed **once**, on segment entry, with the
  batch loop's own ``target = time + (boundary - time)`` arithmetic —
  at that moment the engine clock equals the batch run's clock at the same
  point, so the targets are bit-identical no matter where the chunk
  boundaries fall.
* Completions resubmit churn through the very same listener logic, so the
  engine sees an identical submission stream.

The whole object pickles (that is the checkpoint format — see
:mod:`repro.serve.checkpoint`): one pickle preserves object identity
between the mixer pools and the engine's spec table, so a restored run
continues bit-exact.  Progress callbacks are excluded from the pickle and
finish listeners are re-attached on restore.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import diskcache
from repro.obs.series import SeriesPoint
from repro.platform.batch.sweep import (
    FleetSweepResult,
    ProgressCallback,
    ScenarioResult,
    _BoundaryAction,
    _BurstState,
    _fault_boundaries,
    _throttle_scale,
)
from repro.platform.batch.vector_engine import VectorEngine, VectorEngineConfig
from repro.platform.faults import FaultCounters
from repro.platform.metering import MeterFaultInjector, MeteringLedger
from repro.scenarios.spec import CompiledSweep
from repro.scenarios.trace import TraceChunk
from repro.workloads.synthetic import Mixer

#: The streamed backend label on emitted results and metrics payloads.
STREAM_BACKEND = "stream"


@dataclass(frozen=True)
class BillingRecord:
    """One per-tenant metering delta emitted while a chunk was ingested.

    ``true_gb_seconds`` / ``billed_gb_seconds`` are the *increments* over
    the previous chunk; summing a tenant's records over all chunks yields
    exactly the batch ledger entry (same floats, subtracted back out of
    the same cumulative sums).
    """

    chunk: int
    scenario: str
    function: str
    true_gb_seconds: float
    billed_gb_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "chunk": self.chunk,
            "scenario": self.scenario,
            "function": self.function,
            "true_gb_seconds": self.true_gb_seconds,
            "billed_gb_seconds": self.billed_gb_seconds,
        }


@dataclass(frozen=True)
class ChunkResult:
    """What one :meth:`StreamReplay.ingest` call produced."""

    chunk: int
    epochs: int
    time_seconds: float
    completions: int
    submissions: int
    done: bool
    records: Tuple[BillingRecord, ...]


class StreamReplay:
    """Incremental, checkpointable replay of one compiled sweep.

    Construction performs the batch sweep's full setup (engine, seeded
    churn mixers, initial fleet submission, ledgers, fault plumbing) but
    steps zero epochs; :meth:`ingest` / :meth:`advance_epochs` move time
    forward.  ``meter`` defaults to True — a billing service that does not
    meter is not billing — and matches the batch reference runs the
    differential tests compare against (``FleetSweep(meter=True)``).
    """

    def __init__(self, compiled: CompiledSweep, *, meter: bool = True) -> None:
        self._sweep = compiled.sweep(meter=meter)
        self._fingerprint = diskcache.fingerprint(compiled.spec)
        sweep = self._sweep
        scenarios = sweep.scenarios
        spec = sweep.machine_spec
        total_machines = sum(s.machines for s in scenarios)
        self._engine = VectorEngine(
            spec,
            machines=total_machines,
            config=VectorEngineConfig(epoch_seconds=sweep.epoch_seconds),
            materialize_handles=False,
            initial_capacity=max(4 * sweep.fleet_size, 1024),
        )
        self._scenarios = scenarios
        self._mixers: Dict[int, Mixer] = {}
        self._scenario_of_machine: Dict[int, int] = {}
        self._submitted = [0] * len(scenarios)
        self._completed = [0] * len(scenarios)
        self._machine_offset = [0] * len(scenarios)

        offset = 0
        for s, scenario in enumerate(scenarios):
            cores = scenario.cores(spec)
            self._machine_offset[s] = offset
            for machine in range(offset, offset + scenario.machines):
                self._scenario_of_machine[machine] = s
                self._mixers[machine] = sweep._make_mixer(scenario, machine - offset)
                for thread in range(cores):
                    for _ in range(scenario.colocation):
                        self._engine.submit(
                            self._mixers[machine].next(),
                            machine=machine,
                            thread_id=thread,
                        )
                        self._submitted[s] += 1
            offset += scenario.machines

        self._ledgers: List[Optional[MeteringLedger]] = [
            MeteringLedger() if sweep._scenario_metered(s) else None
            for s in scenarios
        ]
        self._fault_counters: List[Optional[FaultCounters]] = [
            FaultCounters() if s.faults else None for s in scenarios
        ]
        boundaries: Dict[float, List[Tuple[int, _BoundaryAction]]] = {}
        for s, scenario in enumerate(scenarios):
            if self._fault_counters[s] is not None:
                self._fault_counters[s].throttled_machine_epochs = (
                    sweep._nominal_throttled_epochs(scenario)
                )
            for when, actions in _fault_boundaries(
                scenario.faults, sweep.horizon_seconds
            ):
                boundaries.setdefault(when, []).extend((s, a) for a in actions)

        self._injectors: Dict[int, MeterFaultInjector] = {}
        for machine, s in self._scenario_of_machine.items():
            if self._ledgers[s] is not None:
                injector = sweep._meter_injector(
                    scenarios[s], machine - self._machine_offset[s]
                )
                if injector is not None:
                    self._injectors[machine] = injector
        self._burst_of: Dict[int, _BurstState] = {}
        self._active_factors: List[List[float]] = [[] for _ in scenarios]

        #: The batch drive loop, flattened: every fault boundary in time
        #: order, then a sentinel segment ending at the horizon (the batch
        #: code's trailing ``advance(self._horizon)``).
        self._segments: List[Tuple[float, List[Tuple[int, _BoundaryAction]]]] = sorted(
            boundaries.items()
        )
        self._segments.append((sweep.horizon_seconds, []))
        self._segment_index = 0
        #: The current segment's float target, computed once on entry.
        self._segment_target: Optional[float] = None

        self._chunks_ingested = 0
        self._wall_seconds = 0.0
        #: Cumulative per-tenant sums already emitted as BillingRecords.
        self._published: Dict[Tuple[int, str], Tuple[float, float]] = {}
        self._progress: Optional[ProgressCallback] = None
        self._engine.add_finish_listener(self._on_finish)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """Fingerprint of the compiled spec (checkpoint compatibility key)."""
        return self._fingerprint

    @property
    def finished(self) -> bool:
        """Whether the replay has reached the horizon."""
        return self._segment_index >= len(self._segments)

    @property
    def time_seconds(self) -> float:
        """Simulated time reached so far."""
        return self._engine.time_seconds

    @property
    def epochs_done(self) -> int:
        """Epochs stepped so far."""
        return self._engine.stats.epochs

    @property
    def epochs_total(self) -> int:
        """Nominal epoch count of the full horizon."""
        return int(round(self._sweep.horizon_seconds / self._sweep.epoch_seconds))

    @property
    def chunks_ingested(self) -> int:
        """Chunks consumed so far (restored checkpoints carry this on)."""
        return self._chunks_ingested

    @property
    def completions(self) -> int:
        """Steady-churn completions across every scenario."""
        return sum(self._completed)

    @property
    def submissions(self) -> int:
        """Steady-churn submissions across every scenario."""
        return sum(self._submitted)

    def set_progress(self, progress: Optional[ProgressCallback]) -> None:
        """Attach a progress callback (``repro.obs`` payload consumer).

        Deliberately not a constructor argument: callbacks are transient
        wiring, never checkpoint state, and restored replays start bare.
        """
        self._progress = progress

    def progress_payload(self, *, done: bool = False) -> Dict[str, object]:
        """A ``repro.obs`` metrics payload describing the current state."""
        return self._sweep._progress_payload(
            STREAM_BACKEND,
            scenarios_done=len(self._scenarios) if done else 0,
            epochs_done=self.epochs_done,
            epochs_total=self.epochs_total,
            completions=self.completions,
            submissions=self.submissions,
            counters=self._fault_counters,
            ledgers=self._ledgers,
            done=done,
        )

    def _series_point(self) -> SeriesPoint:
        """One epoch's :class:`~repro.obs.series.SeriesPoint` reading."""
        injections = dropped = 0
        billed = true = 0.0
        for counter in self._fault_counters:
            if counter is not None:
                injections += (
                    counter.spike_submissions + counter.neighbor_submissions
                )
        for ledger in self._ledgers:
            if ledger is not None:
                dropped += ledger.dropped
                billed += ledger.billed_total
                true += ledger.true_total
        return SeriesPoint(
            shard="",
            epoch=int(self._engine.stats.epochs),
            time_seconds=float(self._engine.time_seconds),
            completions=self.completions,
            shared_stall_fraction=self._engine.fleet_shared_stall_fraction,
            fault_injections=injections,
            meter_dropped=dropped,
            billing_error_fraction=(
                (billed - true) / true if true > 0 else 0.0
            ),
        )

    # ------------------------------------------------------------------ #
    # The drive loop
    # ------------------------------------------------------------------ #
    def _on_finish(self, index: object, eng: VectorEngine) -> None:
        # Bit-for-bit replica of the batch instrumented path's listener.
        machine = int(eng.machine_of[index])
        s = self._scenario_of_machine[machine]
        burst = self._burst_of.pop(index, None)
        if burst is not None:
            self._fault_counters[s].count_burst_finish(burst.fault.type)
            if eng.time_seconds < burst.end_seconds:
                replacement = eng.submit(burst.mixers[machine].next(), machine=machine)
                self._burst_of[replacement] = burst
                self._fault_counters[s].count_burst_submit(burst.fault.type)
            return
        ledger = self._ledgers[s]
        if ledger is not None:
            function = eng.invocation_spec(index)
            injector = self._injectors.get(machine)
            ledger.observe(
                function.abbreviation,
                function.memory_gb,
                eng.invocation_elapsed_seconds(index),
                injector.copies() if injector is not None else 1,
            )
        thread = int(eng.gthread[index]) - machine * eng.threads_per_machine
        self._completed[s] += 1
        eng.submit(self._mixers[machine].next(), machine=machine, thread_id=thread)
        self._submitted[s] += 1

    def _apply_boundary_actions(
        self, entries: List[Tuple[int, _BoundaryAction]]
    ) -> None:
        sweep = self._sweep
        engine = self._engine
        for s, action in entries:
            scenario = self._scenarios[s]
            first = self._machine_offset[s]
            fleet = range(first, first + scenario.machines)
            if action.kind == "burst-open":
                burst = _BurstState(
                    fault=action.fault,
                    end_seconds=action.window[1],
                    mixers={
                        machine: sweep._burst_mixer(
                            scenario, action.fault, machine - first
                        )
                        for machine in fleet
                    },
                    scenario_index=s,
                )
                for machine in fleet:
                    for _ in range(action.fault.count):
                        index = engine.submit(
                            burst.mixers[machine].next(), machine=machine
                        )
                        self._burst_of[index] = burst
                        self._fault_counters[s].count_burst_submit(action.fault.type)
            else:
                if action.kind == "throttle-open":
                    self._active_factors[s].append(action.fault.factor)
                else:
                    self._active_factors[s].remove(action.fault.factor)
                engine.set_frequency_scale(
                    fleet, _throttle_scale(self._active_factors[s])
                )

    def advance_epochs(self, max_epochs: int) -> int:
        """Step at most ``max_epochs`` epochs; returns the number stepped.

        Fewer are stepped only when the horizon is reached.  Boundary
        actions consume no epochs, exactly as in the batch loop.
        """
        if max_epochs < 0:
            raise ValueError("max_epochs must be >= 0")
        engine = self._engine
        # Duck-typed per-epoch sampler (see repro.obs.series): a
        # MetricsEmitter with a series budget exposes ``epoch_sample``;
        # anything else costs nothing per epoch.  Read-only by design.
        sampler = (
            None
            if self._progress is None
            else getattr(self._progress, "epoch_sample", None)
        )
        start = time.perf_counter()
        stepped = 0
        while stepped < max_epochs and not self.finished:
            if self._segment_target is None:
                until = self._segments[self._segment_index][0]
                self._segment_target = engine.time_seconds + (
                    until - engine.time_seconds
                )
            if engine.time_seconds < self._segment_target - 1e-12:
                engine.run_epoch()
                stepped += 1
                if sampler is not None:
                    sampler(self._series_point())
                if self._progress is not None and engine.stats.epochs % 64 == 0:
                    self._progress(self.progress_payload())
                continue
            self._apply_boundary_actions(self._segments[self._segment_index][1])
            self._segment_index += 1
            self._segment_target = None
        if self.finished and self._progress is not None:
            self._progress(self.progress_payload(done=True))
        self._wall_seconds += time.perf_counter() - start
        return stepped

    def _drain_records(self, chunk_index: int) -> Tuple[BillingRecord, ...]:
        records: List[BillingRecord] = []
        for s, ledger in enumerate(self._ledgers):
            if ledger is None:
                continue
            billing = ledger.freeze()
            billed = dict(billing.billed_gb_seconds)
            for function, true_total in billing.true_gb_seconds:
                billed_total = billed.get(function, 0.0)
                seen_true, seen_billed = self._published.get((s, function), (0.0, 0.0))
                if true_total == seen_true and billed_total == seen_billed:
                    continue
                records.append(
                    BillingRecord(
                        chunk=chunk_index,
                        scenario=self._scenarios[s].name,
                        function=function,
                        true_gb_seconds=true_total - seen_true,
                        billed_gb_seconds=billed_total - seen_billed,
                    )
                )
                self._published[(s, function)] = (true_total, billed_total)
        return tuple(records)

    def ingest(self, chunk: TraceChunk) -> ChunkResult:
        """Consume one trace chunk: advance its epochs, emit the deltas."""
        epochs = self.advance_epochs(chunk.epochs)
        self._chunks_ingested += 1
        return ChunkResult(
            chunk=chunk.index,
            epochs=epochs,
            time_seconds=self.time_seconds,
            completions=self.completions,
            submissions=self.submissions,
            done=self.finished,
            records=self._drain_records(chunk.index),
        )

    def drain(self, *, chunk_index: int = -1) -> ChunkResult:
        """Run any residual epochs to the horizon and flush final deltas.

        The chunk plan is built from the *nominal* epoch count; float
        accumulation in the epoch clock can leave the true count one off
        either way, so completion is always decided by :attr:`finished`,
        never by epoch arithmetic.
        """
        epochs = 0
        while not self.finished:
            epochs += self.advance_epochs(1024)
        return ChunkResult(
            chunk=chunk_index,
            epochs=epochs,
            time_seconds=self.time_seconds,
            completions=self.completions,
            submissions=self.submissions,
            done=True,
            records=self._drain_records(chunk_index),
        )

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def result(self) -> FleetSweepResult:
        """The sweep result so far (bit-exact vs batch once finished).

        Mirrors the batch vector path's result assembly; ``backend`` is
        :data:`STREAM_BACKEND` so streamed results are distinguishable,
        and the differential tests compare every other field.
        """
        sweep = self._sweep
        engine = self._engine
        for s in range(len(self._scenarios)):
            sweep._fill_meter_counts(self._fault_counters[s], self._ledgers[s])
        results: List[ScenarioResult] = []
        offset = 0
        for s, scenario in enumerate(self._scenarios):
            machines = range(offset, offset + scenario.machines)
            instructions = cycles = stall = l3 = 0.0
            for machine in machines:
                counters = engine.machine_counters(machine)
                instructions += counters.instructions
                cycles += counters.cycles
                stall += counters.stall_cycles_l2_miss
                l3 += counters.l3_misses
            results.append(
                ScenarioResult(
                    name=scenario.name,
                    backend=STREAM_BACKEND,
                    fleet_size=scenario.fleet_size(sweep.machine_spec),
                    machines=scenario.machines,
                    colocation=scenario.colocation,
                    submitted=self._submitted[s],
                    completed=self._completed[s],
                    simulated_seconds=sweep.horizon_seconds,
                    instructions=instructions,
                    cycles=cycles,
                    stall_cycles=stall,
                    l3_misses=l3,
                    billing=(
                        None if self._ledgers[s] is None else self._ledgers[s].freeze()
                    ),
                    fault_stats=(
                        None
                        if self._fault_counters[s] is None
                        else self._fault_counters[s].freeze()
                    ),
                )
            )
            offset += scenario.machines
        return FleetSweepResult(
            backend=STREAM_BACKEND,
            scenarios=tuple(results),
            wall_seconds=self._wall_seconds,
            horizon_seconds=sweep.horizon_seconds,
        )

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, object]:
        # Progress callbacks are transient wiring (queues, emitters) and
        # must never leak into a checkpoint; the engine drops its finish
        # listeners itself (see VectorEngine.__getstate__).
        state = self.__dict__.copy()
        state["_progress"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        # The pickled engine carries no listeners; re-attach ours so the
        # restored replay resumes the identical churn stream.
        self._engine.add_finish_listener(self._on_finish)
