"""Atomic, fingerprinted checkpoints for :class:`StreamReplay`.

A checkpoint is a JSON envelope around one compressed pickle of the whole
replay object.  Pickling everything in one blob is deliberate: the engine's
spec table and the churn mixers share ``FunctionSpec`` objects by identity,
and the pickle memo preserves that sharing, so a restored replay interns
specs exactly like the uninterrupted run.  The envelope carries the spec
fingerprint and enough plain-JSON metadata (``chunks_ingested``,
``epochs_done``, ``time_seconds``) for tooling to inspect a checkpoint
without unpickling it.

Writes go through :func:`repro.diskcache.atomic_write_text`, so a reader
never observes a torn checkpoint even if the service dies mid-write —
the resume guarantee the kill-and-resume tests exercise.

Checkpoints are trusted local state (same trust domain as the disk cache);
:func:`load_checkpoint` refuses version or fingerprint skew with
:class:`CheckpointError` before unpickling anything.
"""

from __future__ import annotations

import base64
import json
import pickle
import zlib
from pathlib import Path
from typing import Optional

from repro.diskcache import atomic_write_text
from repro.serve.replay import StreamReplay

#: Bump whenever the replay's pickled layout changes incompatibly.
CHECKPOINT_VERSION = 1

_FORMAT = "repro-stream-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint could not be loaded (corrupt, stale, or mismatched)."""


def checkpoint_path(directory: Path, fingerprint: str) -> Path:
    """Where a replay with ``fingerprint`` checkpoints inside ``directory``."""
    return Path(directory) / f"stream-{fingerprint}.ckpt.json"


def save_checkpoint(path: Path, replay: StreamReplay) -> Path:
    """Atomically persist ``replay`` to ``path``; returns the path."""
    blob = base64.b64encode(
        zlib.compress(pickle.dumps(replay, protocol=pickle.HIGHEST_PROTOCOL))
    ).decode("ascii")
    envelope = {
        "format": _FORMAT,
        "checkpoint_version": CHECKPOINT_VERSION,
        "fingerprint": replay.fingerprint,
        "chunks_ingested": replay.chunks_ingested,
        "epochs_done": replay.epochs_done,
        "time_seconds": replay.time_seconds,
        "state": blob,
    }
    return atomic_write_text(
        Path(path), json.dumps(envelope, sort_keys=True), prefix=".stream-"
    )


def load_checkpoint(
    path: Path, *, expect_fingerprint: Optional[str] = None
) -> StreamReplay:
    """Restore a replay from ``path``.

    ``expect_fingerprint`` (the fingerprint of the spec about to be
    resumed) guards against resuming the wrong study from a shared
    checkpoint directory.
    """
    path = Path(path)
    try:
        envelope = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from None
    except ValueError:
        raise CheckpointError(f"checkpoint {path} is not valid JSON") from None
    if not isinstance(envelope, dict) or envelope.get("format") != _FORMAT:
        raise CheckpointError(f"{path} is not a stream checkpoint")
    version = envelope.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    fingerprint = envelope.get("fingerprint")
    if expect_fingerprint is not None and fingerprint != expect_fingerprint:
        raise CheckpointError(
            f"checkpoint {path} was taken for spec fingerprint {fingerprint!r}, "
            f"not {expect_fingerprint!r}; refusing to resume a different study"
        )
    try:
        blob = zlib.decompress(base64.b64decode(envelope["state"]))
        replay = pickle.loads(blob)
    except (KeyError, ValueError, zlib.error, pickle.UnpicklingError) as error:
        raise CheckpointError(f"checkpoint {path} is corrupt: {error}") from None
    if not isinstance(replay, StreamReplay):
        raise CheckpointError(f"checkpoint {path} did not contain a StreamReplay")
    return replay
