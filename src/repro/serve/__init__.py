"""Streaming billing/replay service over the vector sweep engine.

Where :class:`repro.platform.batch.FleetSweep` runs a whole horizon in one
call, this package replays the same simulation *incrementally*: trace
chunks (:mod:`repro.scenarios.trace`) are ingested one at a time, the
fleet advances epoch-by-epoch with bounded memory, and per-tenant billing
records stream out as each chunk completes.  The correctness contract —
enforced by ``tests/test_sv_stream_replay.py`` and
``tests/test_props_stream.py`` — is that the streamed cumulative ledgers
and per-invocation counters are **bit-exact** against the batch sweep for
the same spec, for any chunk partition, including under ``[[faults]]``
and across a checkpoint/restore cycle.

Entry points:

* :class:`StreamReplay` — the resumable replay state machine;
* :mod:`repro.serve.checkpoint` — atomic, fingerprinted checkpoints built
  on :func:`repro.diskcache.atomic_write_text`;
* :class:`StreamPipeline` — bounded-queue ingest → simulate → publish
  stages;
* ``python -m repro stream`` — the CLI front end (see docs/streaming.md).
"""

from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve.pipeline import StreamPipeline, StreamSummary
from repro.serve.replay import BillingRecord, ChunkResult, StreamReplay

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "checkpoint_path",
    "load_checkpoint",
    "save_checkpoint",
    "StreamPipeline",
    "StreamSummary",
    "BillingRecord",
    "ChunkResult",
    "StreamReplay",
]
