"""Command-line interface: regenerate paper figures and inspect the registry.

Usage examples::

    python -m repro list                     # every available figure/table
    python -m repro run fig11                # regenerate Figure 11 and print it
    python -m repro run fig16 --output results/fig16.txt
    python -m repro run --figures all --jobs 4      # full parallel sweep
    python -m repro run --figures all --check       # staleness check vs results/
    python -m repro run --figures fig02 --profile   # cProfile top-20 per figure
    python -m repro registry                 # dump the Table-1 workload registry
    python -m repro sweep --machines 4 --colocation 10   # vectorized fleet sweep
    python -m repro sweep --compare          # vector vs scalar fast-path speedup
    python -m repro sweep --spec smoke --shards 2        # declarative spec, sharded
    python -m repro sweep --spec studies/big.toml --shards 8
    python -m repro sweep --spec chaos-smoke --shards 2 --metrics   # fault axis + live metrics
    python -m repro stream --spec smoke --verify         # streaming replay, batch-checked
    python -m repro stream --spec smoke --checkpoint-dir .ckpt --max-chunks 2
    python -m repro stream --spec smoke --checkpoint-dir .ckpt      # ...resumes

Single-figure runs print the regenerated rows; sweep runs (``--figures``)
write every figure to the results directory, append per-figure wall-clock to
the ``BENCH_engine.json`` trajectory, and — with ``--check`` — fail with a
diff when the regenerated text does not match the committed results.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro._version import __version__
from repro.experiments.runner import (
    FIGURE_MODULES,
    FigureRun,
    resolve_figure_names,
    resolve_runner,
    run_figures,
)

#: Backward-compatible alias (the mapping moved to ``repro.experiments.runner``).
_resolve_runner = resolve_runner


def _command_list(_: argparse.Namespace) -> int:
    width = max(len(name) for name in FIGURE_MODULES)
    for name, target in sorted(FIGURE_MODULES.items()):
        print(f"{name.ljust(width)}  {target}")
    return 0


def _run_single(args: argparse.Namespace) -> int:
    name = args.figure
    if name not in FIGURE_MODULES:
        known = ", ".join(sorted(FIGURE_MODULES))
        print(f"unknown figure {name!r}; known figures: {known}", file=sys.stderr)
        return 2
    runner = resolve_runner(name)
    result = runner()
    rendered = result.render()
    print(rendered)
    if args.output is not None:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(rendered + "\n", encoding="utf-8")
        print(f"\n[written to {output}]")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        names = resolve_figure_names(args.figures)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    results_dir = Path(args.results_dir)

    def progress(run: FigureRun) -> None:
        print(f"  {run.name}: {run.seconds:.1f}s", flush=True)
        if run.profile_text:
            print(f"--- cProfile top 20 [{run.name}] ---")
            print(run.profile_text, flush=True)

    report = run_figures(
        names,
        jobs=args.jobs,
        results_dir=results_dir,
        check=args.check,
        bench_path=Path(args.bench_json) if args.bench_json else None,
        progress=progress,
        profile=args.profile,
        metrics_path=Path(args.metrics_out) if args.metrics_out else None,
    )
    total_cpu = sum(run.seconds for run in report.runs)
    print(
        f"{len(report.runs)} figure(s), jobs={report.jobs}: "
        f"{report.wall_seconds:.1f}s wall, {total_cpu:.1f}s figure time"
    )
    if report.bench_path is not None:
        print(f"[trajectory appended to {report.bench_path}]")
    if args.check:
        if report.mismatches:
            for run in report.mismatches:
                print(f"\nSTALE: results/{run.name}.txt", file=sys.stderr)
                if run.diff:
                    sys.stderr.write(run.diff)
            print(
                f"\n{len(report.mismatches)} stale figure(s); regenerate with "
                f"`python -m repro run --figures all` and commit the results.",
                file=sys.stderr,
            )
            return 1
        print("all regenerated figures match the committed results")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.figure is not None and args.figures is not None:
        print("pass either a figure name or --figures, not both", file=sys.stderr)
        return 2
    if args.figure is not None:
        # Sweep-only flags are meaningful only with --figures; silently
        # dropping them would fake e.g. a passing --check.
        ignored = [
            flag
            for flag, value in (
                ("--check", args.check),
                ("--jobs", args.jobs != 1),
                ("--results-dir", args.results_dir != "results"),
                ("--bench-json", args.bench_json is not None),
                ("--profile", args.profile),
                ("--metrics-out", args.metrics_out is not None),
            )
            if value
        ]
        if ignored:
            print(
                f"{', '.join(ignored)} only valid in sweep mode; "
                f"use --figures {args.figure}",
                file=sys.stderr,
            )
            return 2
        return _run_single(args)
    if args.figures is None:
        print("nothing to run: pass a figure name or --figures all", file=sys.stderr)
        return 2
    if args.output is not None:
        print(
            "--output only applies to single-figure mode; sweeps write to "
            "--results-dir",
            file=sys.stderr,
        )
        return 2
    return _run_sweep(args)


def _parse_positive_int_list(value: str, flag: str) -> list:
    """Parse a comma-separated positive-integer flag, naming bad tokens."""
    items = []
    for token in value.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            number = int(token)
        except ValueError:
            raise ValueError(
                f"invalid {flag} value {token!r}: expected a positive integer "
                f"(comma-separated, e.g. '1,2,4')"
            ) from None
        if number < 1:
            raise ValueError(f"invalid {flag} value {token!r}: must be >= 1")
        items.append(number)
    if not items:
        raise ValueError(f"{flag} must list at least one positive integer")
    return items


#: Grid/engine flags a --spec file supersedes.  They are declared with
#: ``default=None`` so "explicitly passed" is simply "not None" — the
#: effective defaults below apply only to flag-driven sweeps.
_SPEC_CONFLICT_FLAGS = (
    ("--mixes", "mixes"),
    ("--machines", "machines"),
    ("--colocation", "colocation"),
    ("--cores", "cores"),
    ("--horizon", "horizon"),
    ("--epoch-seconds", "epoch_seconds"),
    ("--registry-scale", "registry_scale"),
    ("--seed", "seed"),
)


def _command_sweep(args: argparse.Namespace) -> int:
    from repro import benchlog
    from repro.hardware.topology import CASCADE_LAKE_5218
    from repro.platform.batch import FleetSweep, run_sharded, scenario_grid
    from repro.scenarios import (
        DegradationReport,
        SpecError,
        compile_spec,
        load_spec_or_preset,
    )

    if args.shards is not None and args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    metrics_enabled = args.metrics or args.metrics_out is not None

    spec = None
    compiled = None
    if args.spec is not None:
        conflicts = [
            flag
            for flag, attribute in _SPEC_CONFLICT_FLAGS
            if getattr(args, attribute) is not None
        ]
        if conflicts:
            print(
                f"{', '.join(conflicts)} conflict with --spec: the spec file "
                f"defines the grid and engine settings (see docs/scenarios.md)",
                file=sys.stderr,
            )
            return 2
        try:
            spec = load_spec_or_preset(args.spec)
            compiled = compile_spec(spec)
        except SpecError as error:
            print(error, file=sys.stderr)
            return 2
        scenarios = list(compiled.scenarios)
        machine = compiled.machine
        horizon = spec.horizon_seconds
        epoch_seconds = spec.epoch_seconds
        registry_scale = spec.registry_scale
        backend = args.backend or spec.backend
        shards = args.shards if args.shards is not None else spec.shards
        fleet_size = compiled.fleet_size
    else:
        machine = CASCADE_LAKE_5218
        horizon = args.horizon if args.horizon is not None else 2.0
        epoch_seconds = args.epoch_seconds if args.epoch_seconds is not None else 1e-3
        registry_scale = (
            args.registry_scale if args.registry_scale is not None else 0.1
        )
        seed = args.seed if args.seed is not None else 2024
        backend = args.backend or "vector"
        shards = args.shards if args.shards is not None else 1
        try:
            machine_counts = _parse_positive_int_list(
                args.machines or "1", "--machines"
            )
            colocations = _parse_positive_int_list(
                args.colocation or "1", "--colocation"
            )
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        mixes = [part.strip() for part in (args.mixes or "all").split(",") if part.strip()]
        if not mixes:
            print(
                "--mixes is empty; valid mixes: all, memory-intensive, or "
                "function abbreviations joined with '+' (see 'python -m repro "
                "registry' for the function list)",
                file=sys.stderr,
            )
            return 2
        try:
            scenarios = scenario_grid(
                mixes,
                machine_counts,
                colocations,
                cores_per_machine=args.cores,
                seed=seed,
            )
            sweep = FleetSweep(
                scenarios,
                machine=machine,
                horizon_seconds=horizon,
                epoch_seconds=epoch_seconds,
                registry_scale=registry_scale,
            )
            sweep.validate()
            fleet_size = sweep.fleet_size
        except (ValueError, KeyError) as error:
            message = error.args[0] if error.args else error
            print(message, file=sys.stderr)
            return 2

    has_faults = compiled is not None and compiled.has_faults
    if args.compare and has_faults:
        print(
            f"--compare is not supported for fault-carrying specs "
            f"(spec {spec.name!r} declares [[faults]]); faulted sweeps "
            f"already run a fault-free baseline for the degradation report",
            file=sys.stderr,
        )
        return 2

    print(
        f"fleet sweep: {len(scenarios)} scenario(s), "
        f"{fleet_size} concurrent invocations, "
        f"{horizon:g}s horizon, {shards} shard(s)"
        + (f" [spec: {spec.name}]" if spec is not None else "")
        + (" [faults]" if has_faults else ""),
        flush=True,
    )

    collector = None
    metrics_queue = None
    manager = None
    tracer = None
    root_span = None
    series_budget = args.series_budget if args.series_budget else None
    if metrics_enabled:
        import multiprocessing

        from repro.obs import MetricsCollector, Tracer

        manager = multiprocessing.Manager()
        metrics_queue = manager.Queue()
        collector = MetricsCollector(
            metrics_queue,
            stream=sys.stderr,
            out_path=Path(args.metrics_out) if args.metrics_out else None,
        ).start()
        # One root span per run; shard workers parent on it through the
        # queue, so the whole sharded sweep files into a single trace.
        tracer = Tracer(sink=metrics_queue.put)
        root_span = tracer.start(
            "sweep",
            tags={
                "phase": "sweep",
                "backend": backend,
                "shards": shards,
                "scenarios": len(scenarios),
                **({"spec": spec.name} if spec is not None else {}),
            },
        )

    def execute(run_backend: str, scenario_list=None, *, meter=False, label=""):
        return run_sharded(
            scenarios if scenario_list is None else scenario_list,
            shards=shards,
            backend=run_backend,
            machine=machine,
            horizon_seconds=horizon,
            epoch_seconds=epoch_seconds,
            registry_scale=registry_scale,
            meter=meter,
            metrics_queue=metrics_queue,
            metrics_label=label,
            trace=None if root_span is None else root_span.context(),
            series_budget=series_budget,
        )

    figures = {}
    extra = {
        "fleet_size": fleet_size,
        "horizon_seconds": horizon,
        "registry_scale": registry_scale,
        "scenarios": [scenario.name for scenario in scenarios],
    }
    if spec is not None:
        extra["spec"] = spec.name
    if has_faults:
        # Faulted sweeps run twice on the same grid: once with the faults
        # stripped (the pricing-accuracy baseline), once as declared.
        baseline = execute(backend, compiled.without_faults().scenarios,
                           meter=True, label="base:")
        faulted = execute(backend, meter=True, label="fault:")
        report = DegradationReport.build(baseline.result, faulted.result)
        print(faulted.render())
        print(report.render())
        print(
            f"{faulted.completed} invocations completed in "
            f"{faulted.wall_seconds:.2f}s wall (+{baseline.wall_seconds:.2f}s "
            f"baseline) [{faulted.result.backend}, {faulted.shards} shard(s)]"
        )
        figures[f"fleet-sweep-{faulted.result.backend}"] = faulted.wall_seconds
        extra.update(
            backend=faulted.result.backend,
            completed=faulted.completed,
            baseline_completed=baseline.completed,
            shards=faulted.shards,
            shard_seconds=[round(t.wall_seconds, 4) for t in faulted.shard_timings],
            baseline_wall_seconds=round(baseline.wall_seconds, 4),
            fault_report=report.to_dict(),
        )
    elif args.compare:
        vector = execute("vector")
        scalar = execute("scalar")
        speedup = scalar.wall_seconds / max(vector.wall_seconds, 1e-9)
        print(vector.render())
        print(scalar.render())
        print(
            f"vector {vector.wall_seconds:.2f}s vs scalar fast-path "
            f"{scalar.wall_seconds:.2f}s -> {speedup:.1f}x speedup "
            f"[{vector.shards} shard(s)]"
        )
        figures["fleet-sweep-vector"] = vector.wall_seconds
        figures["fleet-sweep-scalar"] = scalar.wall_seconds
        extra.update(
            backend="compare",
            speedup=round(speedup, 2),
            completed=vector.completed,
            scalar_completed=scalar.completed,
            shards=vector.shards,
            shard_seconds=[round(t.wall_seconds, 4) for t in vector.shard_timings],
            scalar_shard_seconds=[
                round(t.wall_seconds, 4) for t in scalar.shard_timings
            ],
        )
    else:
        result = execute(backend)
        print(result.render())
        print(
            f"{result.completed} invocations completed in "
            f"{result.wall_seconds:.2f}s wall "
            f"[{result.result.backend}, {result.shards} shard(s)]"
        )
        figures[f"fleet-sweep-{result.result.backend}"] = result.wall_seconds
        extra.update(
            backend=result.result.backend,
            completed=result.completed,
            shards=result.shards,
            shard_seconds=[round(t.wall_seconds, 4) for t in result.shard_timings],
        )

    if collector is not None:
        collector.stop()
        extra["metrics"] = collector.summary()
        # Close the run's root span: fold in the overhead every worker
        # self-reported, then append it directly to the JSONL (the
        # collector is already stopped, so it cannot ride the queue).
        tracer.add_overhead(collector.span_overhead_seconds)
        tracer.finish(root_span, root=True, emit=False)
        extra["obs_overhead_fraction"] = root_span.tags["obs_overhead_fraction"]
        if args.metrics_out:
            from repro.obs import JsonlWriter, wrap

            with JsonlWriter(Path(args.metrics_out)) as span_writer:
                span_writer.write(wrap("span", root_span.to_dict()))
            print(f"[metrics written to {args.metrics_out}]")
    if manager is not None:
        manager.shutdown()

    if not args.no_bench:
        bench_path = (
            Path(args.bench_json)
            if args.bench_json
            else benchlog.default_path(Path("results"))
        )
        written = benchlog.append_run(
            figures, source="fleet-sweep", path=bench_path, extra=extra
        )
        print(f"[trajectory appended to {written}]")
    return 0


def _compare_stream_to_batch(stream_result, batch_result) -> list:
    """Field-by-field bit-exactness check; returns mismatch descriptions."""
    mismatches = []
    stream_by_name = {s.name: s for s in stream_result.scenarios}
    for batch in batch_result.scenarios:
        streamed = stream_by_name.get(batch.name)
        if streamed is None:
            mismatches.append(f"{batch.name}: missing from streamed result")
            continue
        for field in (
            "submitted",
            "completed",
            "instructions",
            "cycles",
            "stall_cycles",
            "l3_misses",
            "billing",
            "fault_stats",
        ):
            expected = getattr(batch, field)
            actual = getattr(streamed, field)
            if actual != expected:
                mismatches.append(
                    f"{batch.name}.{field}: stream={actual!r} batch={expected!r}"
                )
    return mismatches


def _command_stream(args: argparse.Namespace) -> int:
    import time as _time

    from repro import benchlog, diskcache
    from repro.scenarios import (
        SpecError,
        chunk_plan,
        compile_spec,
        load_spec_or_preset,
    )
    from repro.serve import (
        CheckpointError,
        StreamPipeline,
        StreamReplay,
        checkpoint_path,
        load_checkpoint,
    )

    if args.chunk_epochs < 1:
        print("--chunk-epochs must be >= 1", file=sys.stderr)
        return 2
    if args.checkpoint_every < 1:
        print("--checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    if args.max_chunks is not None and args.max_chunks < 1:
        print("--max-chunks must be >= 1", file=sys.stderr)
        return 2
    if args.queue_depth < 1:
        print("--queue-depth must be >= 1", file=sys.stderr)
        return 2
    if args.verify and args.max_chunks is not None:
        print(
            "--verify needs the full horizon; it cannot be combined with "
            "--max-chunks (resume the run to completion first)",
            file=sys.stderr,
        )
        return 2

    try:
        spec = load_spec_or_preset(args.spec)
        compiled = compile_spec(spec)
    except SpecError as error:
        print(error, file=sys.stderr)
        return 2

    fingerprint = diskcache.fingerprint(spec)
    ckpt_file = None
    replay = None
    resumed = False
    if args.checkpoint_dir is not None:
        ckpt_file = checkpoint_path(Path(args.checkpoint_dir), fingerprint)
        if ckpt_file.exists():
            try:
                replay = load_checkpoint(ckpt_file, expect_fingerprint=fingerprint)
            except CheckpointError as error:
                print(error, file=sys.stderr)
                return 2
            resumed = True
    if replay is None:
        replay = StreamReplay(compiled)

    # Chunks pace the replay but never change it, so a resumed run may
    # re-chunk the remaining epochs with any --chunk-epochs: the partition
    # is rebuilt over what is left, not sliced out of the original plan.
    remaining_epochs = max(replay.epochs_total - replay.epochs_done, 0)
    plan = (
        chunk_plan(remaining_epochs, args.chunk_epochs) if remaining_epochs else []
    )
    print(
        f"stream replay: spec {spec.name!r}, {replay.epochs_total} epochs, "
        f"{len(plan)} chunk(s) of {args.chunk_epochs}"
        + (
            f" [resumed at epoch {replay.epochs_done}, "
            f"chunk {replay.chunks_ingested}]"
            if resumed
            else ""
        ),
        flush=True,
    )

    collector = None
    metrics_queue = None
    tracer = None
    root_span = None
    if args.metrics or args.metrics_out is not None:
        import queue as _queue

        from repro.obs import MetricsCollector, MetricsEmitter, Tracer

        metrics_queue = _queue.Queue()
        collector = MetricsCollector(
            metrics_queue,
            stream=sys.stderr,
            out_path=Path(args.metrics_out) if args.metrics_out else None,
        ).start()
        replay.set_progress(
            MetricsEmitter(
                metrics_queue,
                label="stream",
                series_budget=args.series_budget if args.series_budget else None,
            )
        )
        tracer = Tracer(sink=metrics_queue.put)
        root_span = tracer.start(
            "stream",
            tags={
                "phase": "stream",
                "spec": spec.name,
                "chunks": len(plan),
                "resumed": resumed,
            },
        )

    writer = None
    sink = None
    if args.records_out is not None:
        from repro.obs import JsonlWriter

        writer = JsonlWriter(Path(args.records_out))

        def sink(result) -> None:
            for record in result.records:
                writer.write(record.as_dict())

    start = _time.perf_counter()
    try:
        summary = StreamPipeline(
            replay,
            plan,
            publish=sink,
            queue_depth=args.queue_depth,
            checkpoint_to=ckpt_file,
            checkpoint_every=args.checkpoint_every,
            max_chunks=args.max_chunks,
            finalize=args.max_chunks is None,
            tracer=tracer,
            trace_parent=None if root_span is None else root_span.context(),
        ).run()
    finally:
        if writer is not None:
            writer.close()
        if tracer is not None and root_span is not None:
            tracer.finish(root_span, root=True)
        if collector is not None:
            collector.stop()
    wall = _time.perf_counter() - start

    result = replay.result()
    if summary.finished:
        print(result.render())
        if ckpt_file is not None and ckpt_file.exists():
            # The trace is fully replayed and published; a stale checkpoint
            # would otherwise resume a finished run forever.
            ckpt_file.unlink()
            print(f"[checkpoint {ckpt_file} removed: replay complete]")
    elif ckpt_file is not None:
        print(
            f"[stopped after {summary.chunks} chunk(s) at "
            f"t={summary.time_seconds:g}s; checkpoint at {ckpt_file}]"
        )
    print(
        f"{summary.chunks} chunk(s), {summary.epochs} epoch(s), "
        f"{summary.records} billing record(s), {summary.completions} "
        f"completion(s) in {wall:.2f}s wall"
        + (f" [{summary.checkpoints_written} checkpoint(s)]"
           if summary.checkpoints_written else "")
    )
    if args.records_out is not None:
        print(f"[billing records appended to {args.records_out}]")

    verified = None
    if args.verify:
        batch = compiled.sweep(meter=True).run("vector")
        mismatches = _compare_stream_to_batch(result, batch)
        if mismatches:
            for line in mismatches:
                print(f"DIVERGED: {line}", file=sys.stderr)
            print(
                f"stream replay diverged from the batch sweep in "
                f"{len(mismatches)} field(s)",
                file=sys.stderr,
            )
            return 1
        verified = True
        print("verified: streamed ledgers and counters are bit-exact vs batch")

    obs_overhead_fraction = None
    if root_span is not None:
        obs_overhead_fraction = root_span.tags.get("obs_overhead_fraction", 0.0)
    if collector is not None:
        if args.metrics_out:
            print(f"[metrics written to {args.metrics_out}]")

    if not args.no_bench:
        billed = sum(
            s.billing.billed_total for s in result.scenarios if s.billing is not None
        )
        true = sum(
            s.billing.true_total for s in result.scenarios if s.billing is not None
        )
        extra = {
            "spec": spec.name,
            "fingerprint": fingerprint,
            "chunk_epochs": args.chunk_epochs,
            "chunks": summary.chunks,
            "epochs": summary.epochs,
            "records": summary.records,
            "completed": summary.completions,
            "finished": summary.finished,
            "resumed": resumed,
            "checkpoints_written": summary.checkpoints_written,
            "billed_gb_seconds": round(billed, 6),
            "true_gb_seconds": round(true, 6),
        }
        if verified is not None:
            extra["verified_bit_exact"] = verified
        if collector is not None:
            extra["metrics"] = collector.summary()
        if obs_overhead_fraction is not None:
            extra["obs_overhead_fraction"] = obs_overhead_fraction
        bench_path = (
            Path(args.bench_json)
            if args.bench_json
            else benchlog.default_path(Path("results"))
        )
        written = benchlog.append_run(
            {"stream-replay": wall},
            source="stream-replay",
            path=bench_path,
            extra=extra,
        )
        print(f"[trajectory appended to {written}]")
    return 0


def _command_calibrate(args: argparse.Namespace) -> int:
    import time as _time

    from repro import benchlog
    from repro.calibrate import (
        CalibrationConfig,
        ContinuousCalibrator,
        DriftEvent,
        DriftInjector,
        MeasureConfig,
        ProfileError,
        calibrate_once,
        get_param,
        perturbed,
        profile_by_name,
    )
    from repro.obs import JsonlWriter

    if args.once == args.watch:
        print("exactly one of --once / --watch is required", file=sys.stderr)
        return 2
    if args.points < 2:
        print("--points must be >= 2", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.rounds < 1:
        print("--rounds must be >= 1", file=sys.stderr)
        return 2
    if len(args.drift_at) != len(args.drift_scale):
        print(
            "--drift-at and --drift-scale must be given the same number of times",
            file=sys.stderr,
        )
        return 2

    try:
        profile = profile_by_name(args.profile)
        config = CalibrationConfig(
            parameter=args.param,
            search_min=args.min,
            search_max=args.max,
            linspace_points=args.points,
            max_parallel_workers=args.workers,
            mape_window_epochs=args.window,
            drift_mape_threshold=args.threshold,
            epochs_per_round=args.epochs_per_round,
            measure=MeasureConfig(seed=args.seed),
        )
        nominal_value = get_param(profile, args.param)
    except (ProfileError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2

    from repro.obs import wrap

    writer = JsonlWriter(Path(args.metrics_out)) if args.metrics_out else None
    show_candidates = args.metrics or args.metrics_out is not None

    def observer(event) -> None:
        if writer is not None:
            writer.write(wrap("calibration", event.to_dict()))
        if event.kind != "candidate" or show_candidates:
            print(event.render_line(), flush=True)

    tracer = None
    root_span = None
    if writer is not None:
        from repro.obs import Tracer

        tracer = Tracer(
            sink=lambda span: writer.write(wrap("span", span.to_dict()))
        )
        root_span = tracer.start(
            "calibrate",
            tags={
                "phase": "calibrate",
                "profile": profile.name,
                "parameter": args.param,
                "mode": "once" if args.once else "watch",
            },
        )

    republishes = []
    start = _time.perf_counter()
    if args.once:
        truth = perturbed(profile, args.param, args.perturb_scale)
        print(
            f"[calibrate] profile {profile.name}: truth fabricated with "
            f"{args.param} x{args.perturb_scale:g} "
            f"({nominal_value:g} -> {get_param(truth, args.param):g}); "
            f"searching {config.linspace_points} candidates"
        )
        result = calibrate_once(
            truth,
            config,
            incumbent=profile,
            observer=observer,
            tracer=tracer,
            trace_parent=None if root_span is None else root_span.context(),
        )
        results = [result]
        republishes.append(result)
    else:
        events = tuple(
            DriftEvent(start_seconds=at, path=args.param, scale=scale)
            for at, scale in zip(args.drift_at, args.drift_scale)
        )
        drift = DriftInjector(profile, events) if events else None
        calibrator = ContinuousCalibrator(
            profile,
            config,
            drift=drift,
            observer=observer,
            tracer=tracer,
            trace_parent=None if root_span is None else root_span.context(),
        )
        results = calibrator.run(args.rounds)
        republishes = [r for r in results if r.drift_detected and r.best is not None]
    wall = _time.perf_counter() - start
    obs_overhead_fraction = None
    if writer is not None:
        # Each round's measured window becomes per-epoch series points —
        # the measured value IS the shared-stall fraction (see
        # repro.calibrate.measure), so the mapping is exact.
        from repro.obs import SeriesPoint

        epoch = 0
        for result in results:
            for value in result.measured:
                writer.write(
                    wrap(
                        "series",
                        SeriesPoint(
                            shard="calibrate",
                            epoch=epoch,
                            time_seconds=epoch * config.measure.epoch_seconds,
                            completions=0,
                            shared_stall_fraction=value,
                            fault_injections=0,
                            meter_dropped=0,
                            billing_error_fraction=0.0,
                        ).to_dict(),
                    )
                )
                epoch += 1
        if tracer is not None and root_span is not None:
            tracer.finish(root_span, root=True)
            obs_overhead_fraction = root_span.tags.get(
                "obs_overhead_fraction", 0.0
            )
        writer.close()
        print(f"[calibration events written to {args.metrics_out}]")

    last = results[-1]
    converged = last.converged
    grid = config.grid(profile)
    step = grid[1] - grid[0]
    for result in republishes:
        print(
            f"republished {args.param}={result.best.value:g} "
            f"(mape {100.0 * result.best.mape:.3f}%, grid step {step:g}) "
            f"fit {result.fit_fingerprint[:12]}"
        )
    print(
        f"{len(results)} round(s), {len(republishes)} republish(es) in "
        f"{wall:.2f}s wall — "
        + ("converged" if converged else "NOT converged")
    )

    if not args.no_bench:
        extra = {
            "mode": "once" if args.once else "watch",
            "profile": profile.name,
            "parameter": args.param,
            "rounds": len(results),
            "republishes": len(republishes),
            "converged": converged,
        }
        if republishes:
            extra["fitted_value"] = republishes[-1].best.value
            extra["fitted_mape"] = round(republishes[-1].best.mape, 8)
        if obs_overhead_fraction is not None:
            extra["obs_overhead_fraction"] = obs_overhead_fraction
        bench_path = (
            Path(args.bench_json)
            if args.bench_json
            else benchlog.default_path(Path("results"))
        )
        written = benchlog.append_run(
            {"calibrate": wall}, source="calibrate", path=bench_path, extra=extra
        )
        print(f"[trajectory appended to {written}]")
    return 0 if converged else 1


def _command_obs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.analyze import (
        export_chrome_trace,
        format_summary,
        render_record,
        summarize,
        tail_records,
    )

    path = Path(args.file)
    if not path.exists():
        print(f"no such file: {path}", file=sys.stderr)
        return 2
    try:
        if args.obs_command == "summarize":
            summary = summarize(path, top=args.top)
            if args.json:
                print(_json.dumps(summary, indent=2, sort_keys=True))
            else:
                print(format_summary(summary))
            return 0
        if args.obs_command == "tail":
            try:
                for kind, payload in tail_records(
                    path,
                    follow=not args.no_follow,
                    max_seconds=args.max_seconds,
                ):
                    print(render_record(kind, payload), flush=True)
            except KeyboardInterrupt:  # pragma: no cover - interactive stop
                pass
            return 0
        # export-trace
        out = Path(args.out) if args.out else path.with_suffix(".trace.json")
        trace = export_chrome_trace(path, out)
        spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
        counters = sum(1 for e in trace["traceEvents"] if e.get("ph") == "C")
        print(
            f"[{spans} span(s), {counters} counter sample(s) written to {out}; "
            f"open in https://ui.perfetto.dev]"
        )
        return 0
    except BrokenPipeError:  # obs ... | head: downstream closed early
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


def _command_registry(_: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table
    from repro.workloads.registry import table1_rows

    print(
        format_table(
            table1_rows(),
            columns=(
                "abbreviation",
                "name",
                "suite",
                "language",
                "reference",
                "memory_mb",
            ),
            title="Table 1: serverless benchmarks",
            float_format="{:.0f}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Litmus: Fair Pricing for Serverless Computing'",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list",
        help="list the available figures/tables",
        epilog="Docs: docs/architecture.md (system layout), "
        "docs/scenarios.md (scenario specs and presets).",
    )
    list_parser.set_defaults(handler=_command_list)

    run_parser = subparsers.add_parser(
        "run", help="regenerate one figure/table, or sweep many in parallel"
    )
    run_parser.add_argument(
        "figure",
        nargs="?",
        default=None,
        help="figure name, e.g. fig11 (see 'list'); omit when using --figures",
    )
    run_parser.add_argument(
        "--output", "-o", default=None, help="also write the rendered rows to this file"
    )
    run_parser.add_argument(
        "--figures",
        default=None,
        help="sweep mode: 'all' or a comma-separated list of figure names",
    )
    run_parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for sweep mode (default 1)",
    )
    run_parser.add_argument(
        "--check",
        action="store_true",
        help="sweep mode: compare regenerated text against the committed "
        "results instead of writing; exit 1 with a diff on any mismatch",
    )
    run_parser.add_argument(
        "--results-dir",
        default="results",
        help="directory the sweep writes to / checks against (default: results)",
    )
    run_parser.add_argument(
        "--bench-json",
        default=None,
        help="override the BENCH_engine.json trajectory path",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="sweep mode: run each figure under cProfile and print the "
        "top-20 cumulative entries",
    )
    run_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="sweep mode: append one JSON line per completed figure to FILE "
        "(see docs/observability.md)",
    )
    run_parser.set_defaults(handler=_command_run)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="simulate a fleet-scale scenario grid on the vectorized backend",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Scenario specs: pass --spec FILE.toml (or a shipped preset name:\n"
            "smoke, chaos-smoke, steady-state, memory-pressure,\n"
            "colocation-ladder) instead of grid flags; add --shards N to fan\n"
            "the grid out over worker processes with results identical to\n"
            "--shards 1.  Specs declaring [[faults]] also run a fault-free\n"
            "baseline and print a degradation report; --metrics streams live\n"
            "per-shard progress.\n"
            "Docs: docs/scenarios.md (spec format + cookbook),\n"
            "docs/chaos.md (fault axis), docs/observability.md (--metrics),\n"
            "docs/backends.md (vector vs scalar engines)."
        ),
    )
    sweep_parser.add_argument(
        "--spec",
        default=None,
        help="declarative scenario spec: a .toml/.json path or a preset name "
        "(replaces the grid flags below; see docs/scenarios.md)",
    )
    sweep_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the grid across N worker processes (default: 1, or "
        "the spec's [sweep].shards); results are shard-count independent",
    )
    sweep_parser.add_argument(
        "--mixes",
        default=None,
        help="comma-separated traffic mixes: all, memory-intensive, or "
        "explicit function lists joined with '+' (default: all)",
    )
    sweep_parser.add_argument(
        "--machines",
        default=None,
        help="comma-separated machine counts per scenario (default: 1)",
    )
    sweep_parser.add_argument(
        "--colocation",
        default=None,
        help="comma-separated functions-per-thread levels (default: 1)",
    )
    sweep_parser.add_argument(
        "--cores",
        type=int,
        default=None,
        help="cores hosting functions per machine (default: all cores)",
    )
    sweep_parser.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="simulated seconds per scenario (default: 2.0)",
    )
    sweep_parser.add_argument(
        "--epoch-seconds",
        type=float,
        default=None,
        help="epoch length in simulated seconds (default: 1e-3)",
    )
    sweep_parser.add_argument(
        "--registry-scale",
        type=float,
        default=None,
        help="body-length scale applied to every function (default: 0.1)",
    )
    sweep_parser.add_argument(
        "--seed", type=int, default=None, help="base churn seed (default: 2024)"
    )
    sweep_parser.add_argument(
        "--backend",
        choices=("vector", "scalar"),
        default=None,
        help="simulation backend (default: vector, or the spec's "
        "[sweep].backend)",
    )
    sweep_parser.add_argument(
        "--compare",
        action="store_true",
        help="run both backends and report the vector speedup",
    )
    sweep_parser.add_argument(
        "--bench-json",
        default=None,
        help="override the BENCH_engine.json trajectory path",
    )
    sweep_parser.add_argument(
        "--no-bench",
        action="store_true",
        help="skip appending a fleet-sweep record to BENCH_engine.json",
    )
    sweep_parser.add_argument(
        "--metrics",
        action="store_true",
        help="stream live per-shard progress (epochs/sec, completions, fault "
        "counters) to stderr while the sweep runs (see docs/observability.md)",
    )
    sweep_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="append every metrics record (snapshots, per-epoch series, "
        "trace spans) to FILE as enveloped JSON lines, consumable by "
        "`python -m repro obs` (implies --metrics)",
    )
    sweep_parser.add_argument(
        "--series-budget",
        type=int,
        default=512,
        metavar="POINTS",
        help="per-shard point budget for per-epoch series telemetry "
        "(deterministic stride decimation keeps memory bounded; 0 disables; "
        "default: 512)",
    )
    sweep_parser.set_defaults(handler=_command_sweep)

    stream_parser = subparsers.add_parser(
        "stream",
        help="replay a scenario spec incrementally, streaming billing records",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "The streaming service ingests the spec's trace chunk-by-chunk\n"
            "and emits per-tenant billing deltas as it goes; results are\n"
            "bit-exact against `python -m repro sweep` for the same spec\n"
            "(assert it with --verify).  With --checkpoint-dir the replay\n"
            "checkpoints periodically and auto-resumes from an existing\n"
            "checkpoint; --max-chunks stops early (checkpointing) so a later\n"
            "invocation can resume.\n"
            "Docs: docs/streaming.md (cookbook, checkpoint format,\n"
            "backpressure knobs), docs/observability.md (--metrics)."
        ),
    )
    stream_parser.add_argument(
        "--spec",
        required=True,
        help="declarative scenario spec: a .toml/.json path or a preset name "
        "(see docs/scenarios.md)",
    )
    stream_parser.add_argument(
        "--chunk-epochs",
        type=int,
        default=32,
        help="epochs ingested per trace chunk (default: 32; pacing only — "
        "results are chunk-size independent)",
    )
    stream_parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for resumable checkpoints; an existing matching "
        "checkpoint is resumed automatically",
    )
    stream_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        help="checkpoint every N chunks when --checkpoint-dir is set "
        "(default: 8)",
    )
    stream_parser.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        help="stop after N chunks (writing a checkpoint when --checkpoint-dir "
        "is set) instead of running to the horizon",
    )
    stream_parser.add_argument(
        "--queue-depth",
        type=int,
        default=4,
        help="bounded-queue depth between the ingest/simulate/publish stages "
        "(default: 4)",
    )
    stream_parser.add_argument(
        "--records-out",
        default=None,
        metavar="FILE",
        help="append every billing record to FILE as JSON lines",
    )
    stream_parser.add_argument(
        "--verify",
        action="store_true",
        help="after streaming, run the batch sweep and fail (exit 1) unless "
        "ledgers and counters are bit-exact",
    )
    stream_parser.add_argument(
        "--bench-json",
        default=None,
        help="override the BENCH_engine.json trajectory path",
    )
    stream_parser.add_argument(
        "--no-bench",
        action="store_true",
        help="skip appending a stream-replay record to BENCH_engine.json",
    )
    stream_parser.add_argument(
        "--metrics",
        action="store_true",
        help="stream live replay progress to stderr (see docs/observability.md)",
    )
    stream_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="append every metrics record (snapshots, per-epoch series, "
        "trace spans) to FILE as enveloped JSON lines, consumable by "
        "`python -m repro obs` (implies --metrics)",
    )
    stream_parser.add_argument(
        "--series-budget",
        type=int,
        default=512,
        metavar="POINTS",
        help="point budget for per-epoch series telemetry (0 disables; "
        "default: 512)",
    )
    stream_parser.set_defaults(handler=_command_stream)

    calibrate_parser = subparsers.add_parser(
        "calibrate",
        help="continuously calibrate the contention model against drifting hardware",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "--once fabricates drifted hardware (--perturb-scale), grid-\n"
            "searches the parameter and republishes the best fit through the\n"
            "versioned disk cache, exiting 0 iff the fit's MAPE lands under\n"
            "--threshold.  --watch runs drift-check rounds continuously,\n"
            "searching only when the incumbent's sliding-window MAPE crosses\n"
            "the threshold; --drift-at/--drift-scale inject mid-run drift.\n"
            "Docs: docs/calibration.md (cookbook, knobs, shipped profiles)."
        ),
    )
    calibrate_parser.add_argument(
        "--once", action="store_true", help="single-shot: search, republish, exit"
    )
    calibrate_parser.add_argument(
        "--watch", action="store_true", help="run --rounds drift-check rounds"
    )
    calibrate_parser.add_argument(
        "--profile",
        default="cascade-lake-5218",
        help="hardware profile: a built-in/shipped name or a .toml path "
        "(default: cascade-lake-5218; see docs/calibration.md)",
    )
    calibrate_parser.add_argument(
        "--param",
        default="contention.memory_queueing_coefficient",
        help="dot path of the model parameter to fit "
        "(default: contention.memory_queueing_coefficient)",
    )
    calibrate_parser.add_argument(
        "--perturb-scale",
        type=float,
        default=1.3,
        help="--once only: fabricate truth by scaling the parameter "
        "(default: 1.3)",
    )
    calibrate_parser.add_argument(
        "--min",
        type=float,
        default=None,
        help="grid lower bound (default: half the nominal value)",
    )
    calibrate_parser.add_argument(
        "--max",
        type=float,
        default=None,
        help="grid upper bound (default: double the nominal value)",
    )
    calibrate_parser.add_argument(
        "--points",
        type=int,
        default=9,
        help="linspace grid resolution (default: 9)",
    )
    calibrate_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="candidate evaluations in this many parallel processes "
        "(default: 1 = inline; results are worker-count independent)",
    )
    calibrate_parser.add_argument(
        "--window",
        type=int,
        default=48,
        help="sliding MAPE window depth in epochs, and the probe window "
        "length (default: 48)",
    )
    calibrate_parser.add_argument(
        "--epochs-per-round",
        type=int,
        default=16,
        help="epochs measured per drift-check round (default: 16)",
    )
    calibrate_parser.add_argument(
        "--threshold",
        type=float,
        default=0.005,
        help="windowed MAPE above this detects drift (default: 0.005)",
    )
    calibrate_parser.add_argument(
        "--rounds",
        type=int,
        default=8,
        help="--watch only: drift-check rounds to run (default: 8)",
    )
    calibrate_parser.add_argument(
        "--drift-at",
        type=float,
        action="append",
        default=[],
        metavar="SECONDS",
        help="--watch only: inject drift on --param at this simulated time "
        "(repeatable, pairs with --drift-scale)",
    )
    calibrate_parser.add_argument(
        "--drift-scale",
        type=float,
        action="append",
        default=[],
        metavar="SCALE",
        help="scale applied by the matching --drift-at event (repeatable)",
    )
    calibrate_parser.add_argument(
        "--seed",
        type=int,
        default=2024,
        help="measurement churn seed (default: 2024)",
    )
    calibrate_parser.add_argument(
        "--bench-json",
        default=None,
        help="override the BENCH_engine.json trajectory path",
    )
    calibrate_parser.add_argument(
        "--no-bench",
        action="store_true",
        help="skip appending a calibrate record to BENCH_engine.json",
    )
    calibrate_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print per-candidate search progress (see docs/observability.md)",
    )
    calibrate_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="append every calibration event to FILE as JSON lines "
        "(implies --metrics)",
    )
    calibrate_parser.set_defaults(handler=_command_calibrate)

    obs_parser = subparsers.add_parser(
        "obs",
        help="analyze an enveloped metrics JSONL (summarize, tail, export-trace)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Consumes the --metrics-out file any long-running command\n"
            "(sweep, stream, calibrate, run) writes: summarize prints the\n"
            "per-phase wall-clock breakdown and the slowest spans; tail\n"
            "follows a growing file live; export-trace writes Chrome\n"
            "trace-event JSON, viewable at https://ui.perfetto.dev.\n"
            "Unknown record kinds and future schema versions are skipped\n"
            "with a warning, never a crash.\n"
            "Docs: docs/observability.md (schema table, tracing cookbook)."
        ),
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    summarize_parser = obs_sub.add_parser(
        "summarize", help="per-phase wall-clock breakdown + slowest spans"
    )
    summarize_parser.add_argument("file", help="enveloped metrics JSONL file")
    summarize_parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many slowest spans to list (default: 10)",
    )
    summarize_parser.add_argument(
        "--json",
        action="store_true",
        help="print the summary as JSON instead of text",
    )
    tail_parser = obs_sub.add_parser(
        "tail", help="live-tail a (growing) metrics JSONL"
    )
    tail_parser.add_argument("file", help="enveloped metrics JSONL file")
    tail_parser.add_argument(
        "--no-follow",
        action="store_true",
        help="print what exists and exit instead of polling for appends",
    )
    tail_parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop following after this long (default: until interrupted)",
    )
    export_parser = obs_sub.add_parser(
        "export-trace",
        help="write Chrome trace-event JSON (open in Perfetto)",
    )
    export_parser.add_argument("file", help="enveloped metrics JSONL file")
    export_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="output path (default: <file>.trace.json)",
    )
    obs_parser.set_defaults(handler=_command_obs)

    registry_parser = subparsers.add_parser("registry", help="print the workload registry")
    registry_parser.set_defaults(handler=_command_registry)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
