"""Command-line interface: regenerate paper figures and inspect the registry.

Usage examples::

    python -m repro list                 # every available figure/table
    python -m repro run fig11            # regenerate Figure 11 and print it
    python -m repro run fig16 --output results/fig16.txt
    python -m repro registry             # dump the Table-1 workload registry

Each figure's ``run`` entry point accepts the library defaults; the CLI is a
thin wrapper intended for quick inspection, not a replacement for the
benchmark harness (which also asserts the expected shapes).
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro._version import __version__

#: Figure/table name -> experiments module implementing ``run()``.
FIGURE_MODULES: Dict[str, str] = {
    "table1": "repro.experiments.table1",
    "fig01": "repro.experiments.fig01_traffic",
    "fig02": "repro.experiments.fig02_corun_slowdown",
    "fig03": "repro.experiments.fig03_time_split",
    "fig04": "repro.experiments.fig04_distribution",
    "fig05": "repro.experiments.fig05_tables",
    "fig06": "repro.experiments.fig06_startup_ipc",
    "fig07": "repro.experiments.fig07_probe_timeline",
    "fig08": "repro.experiments.fig08_reference_mbgen",
    "fig09": "repro.experiments.fig09_regression",
    "fig10": "repro.experiments.fig10_interpolation",
    "fig11": "repro.experiments.fig11_price_26",
    "fig12": "repro.experiments.fig12_price_errors",
    "fig13": "repro.experiments.fig13_discount_lines",
    "fig14": "repro.experiments.fig14_switching",
    "fig15": "repro.experiments.fig15_method1",
    "fig16": "repro.experiments.fig16_method2",
    "fig17": "repro.experiments.fig17_heavy",
    "fig18": "repro.experiments.fig18_frequency",
    "fig19": "repro.experiments.fig19_icelake",
    "fig20": "repro.experiments.fig20_reused_tables",
    "fig21": "repro.experiments.fig21_smt",
    "ablation-rate-split": "repro.experiments.ablation:run_rate_split_ablation",
    "ablation-interpolation": "repro.experiments.ablation:run_interpolation_ablation",
    "ablation-reference-count": "repro.experiments.ablation:run_reference_count_ablation",
}


def _resolve_runner(name: str) -> Callable[[], object]:
    """Import the ``run`` callable behind a figure name."""
    target = FIGURE_MODULES[name]
    if ":" in target:
        module_name, attribute = target.split(":", 1)
    else:
        module_name, attribute = target, "run"
    module = importlib.import_module(module_name)
    return getattr(module, attribute)


def _command_list(_: argparse.Namespace) -> int:
    width = max(len(name) for name in FIGURE_MODULES)
    for name, target in sorted(FIGURE_MODULES.items()):
        print(f"{name.ljust(width)}  {target}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    name = args.figure
    if name not in FIGURE_MODULES:
        known = ", ".join(sorted(FIGURE_MODULES))
        print(f"unknown figure {name!r}; known figures: {known}", file=sys.stderr)
        return 2
    runner = _resolve_runner(name)
    result = runner()
    rendered = result.render()
    print(rendered)
    if args.output is not None:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(rendered + "\n", encoding="utf-8")
        print(f"\n[written to {output}]")
    return 0


def _command_registry(_: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table
    from repro.workloads.registry import table1_rows

    print(
        format_table(
            table1_rows(),
            columns=(
                "abbreviation",
                "name",
                "suite",
                "language",
                "reference",
                "memory_mb",
            ),
            title="Table 1: serverless benchmarks",
            float_format="{:.0f}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Litmus: Fair Pricing for Serverless Computing'",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the available figures/tables")
    list_parser.set_defaults(handler=_command_list)

    run_parser = subparsers.add_parser("run", help="regenerate one figure/table")
    run_parser.add_argument("figure", help="figure name, e.g. fig11 (see 'list')")
    run_parser.add_argument(
        "--output", "-o", default=None, help="also write the rendered rows to this file"
    )
    run_parser.set_defaults(handler=_command_run)

    registry_parser = subparsers.add_parser("registry", help="print the workload registry")
    registry_parser.set_defaults(handler=_command_registry)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
