"""The CPU sharing domain: cores, shared-resource models and global counters.

A :class:`CPU` bundles everything the platform engine needs from the
hardware side:

* the machine description (:class:`repro.hardware.topology.MachineSpec`),
* the physical cores and their SMT hardware threads,
* the contention model for the shared domain,
* the frequency governor, and
* a machine-wide PMU accumulator (the counter a Litmus test reads to obtain
  the system's L3 miss count during a startup window).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hardware.contention import ContentionModel, ContentionParameters
from repro.hardware.core import Core, HardwareThread, build_cores
from repro.hardware.frequency import FrequencyGovernor, FrequencyPolicy
from repro.hardware.pmu import PMUCounters
from repro.hardware.topology import MachineSpec


class CPU:
    """One sharing domain (socket) of the simulated machine."""

    def __init__(
        self,
        machine: MachineSpec,
        *,
        smt_enabled: bool = False,
        frequency_policy: FrequencyPolicy = FrequencyPolicy.FIXED,
        contention_parameters: Optional[ContentionParameters] = None,
    ) -> None:
        self._machine = machine
        self._smt_enabled = smt_enabled
        smt_ways = machine.smt_ways if smt_enabled else 1
        self._cores: List[Core] = build_cores(machine.cores, smt_ways)
        self._threads: Dict[int, HardwareThread] = {
            thread.thread_id: thread for core in self._cores for thread in core
        }
        self._thread_core: Dict[int, Core] = {
            thread.thread_id: core for core in self._cores for thread in core
        }
        self._contention = ContentionModel(machine, contention_parameters)
        self._governor = FrequencyGovernor(machine=machine, policy=frequency_policy)
        self._global_counters = PMUCounters()

    # ------------------------------------------------------------------ #
    # Topology access
    # ------------------------------------------------------------------ #
    @property
    def machine(self) -> MachineSpec:
        return self._machine

    @property
    def smt_enabled(self) -> bool:
        return self._smt_enabled

    @property
    def cores(self) -> List[Core]:
        return list(self._cores)

    @property
    def threads(self) -> List[HardwareThread]:
        return [thread for core in self._cores for thread in core]

    @property
    def thread_count(self) -> int:
        return len(self._threads)

    def thread(self, thread_id: int) -> HardwareThread:
        try:
            return self._threads[thread_id]
        except KeyError:
            raise KeyError(f"no hardware thread with id {thread_id}") from None

    def core_of(self, thread_id: int) -> Core:
        try:
            return self._thread_core[thread_id]
        except KeyError:
            raise KeyError(f"no hardware thread with id {thread_id}") from None

    # ------------------------------------------------------------------ #
    # Shared models
    # ------------------------------------------------------------------ #
    @property
    def contention(self) -> ContentionModel:
        return self._contention

    def set_contention_parameters(
        self, parameters: Optional[ContentionParameters]
    ) -> None:
        """Swap the contention model's coefficients from now on.

        The hardware-drift hook (see :mod:`repro.calibrate`): the machine
        geometry stays fixed but the calibrated coefficients describing it
        change mid-run, exactly like a microcode update or thermal regime
        shift would on real hardware.  The engine layer is responsible for
        invalidating any state derived from the old model.
        """
        self._contention = ContentionModel(self._machine, parameters)

    @property
    def governor(self) -> FrequencyGovernor:
        return self._governor

    @property
    def global_counters(self) -> PMUCounters:
        """Machine-wide counter totals (all invocations plus generators)."""
        return self._global_counters

    # ------------------------------------------------------------------ #
    # Derived state
    # ------------------------------------------------------------------ #
    @property
    def active_thread_count(self) -> int:
        return sum(1 for thread in self._threads.values() if thread.is_busy)

    def current_frequency_ghz(self) -> float:
        return self._governor.frequency_ghz(self.active_thread_count)

    def current_frequency_hz(self) -> float:
        return self._governor.frequency_hz(self.active_thread_count)

    def smt_private_penalty(self, thread_id: int) -> float:
        """Private-resource inflation caused by an active SMT sibling.

        Returns 1.0 when the sibling context is idle or SMT is disabled.
        """
        core = self.core_of(thread_id)
        if core.smt_ways < 2:
            return 1.0
        thread = self.thread(thread_id)
        sibling = core.sibling_of(thread)
        if sibling is not None and sibling.is_busy and thread.is_busy:
            return self._machine.smt_private_penalty
        return 1.0

    def reset_counters(self) -> None:
        self._global_counters.reset()
