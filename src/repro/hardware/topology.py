"""Machine topology descriptions.

The paper evaluates Litmus on two Intel servers:

* a dual-socket Xeon Gold 5218 (Cascade Lake), 16 cores/socket, 1 MB L2 per
  core, 22 MB shared L3 per socket, 384 GB DRAM, pinned at 2.8 GHz;
* a Xeon Silver 4314 (Ice Lake) with 128 GB DRAM used in the sensitivity
  study (Figure 19).

Only the parameters that influence the contention model are captured here.
Everything is plain data so new machines can be described without touching
any simulator code.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and latency of one cache level.

    Sizes are in kibibytes; latencies are in CPU cycles for a hit in that
    level.  ``shared`` marks whether the cache is private to a core (L1/L2)
    or shared across the socket (L3).
    """

    level: str
    size_kb: float
    latency_cycles: float
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_kb <= 0:
            raise ValueError(f"cache size must be positive, got {self.size_kb}")
        if self.latency_cycles <= 0:
            raise ValueError(
                f"cache latency must be positive, got {self.latency_cycles}"
            )

    @property
    def size_mb(self) -> float:
        return self.size_kb / 1024.0


@dataclass(frozen=True)
class MachineSpec:
    """A socket-level description of the machine the platform runs on.

    The simulator treats one socket as the sharing domain (the paper pins
    its experiments to cores of a single socket and stresses that socket's
    L3 and memory bandwidth).  ``cores`` is therefore the number of physical
    cores in the sharing domain, not the whole box.
    """

    name: str
    architecture: str
    cores: int
    smt_ways: int
    base_frequency_ghz: float
    max_turbo_frequency_ghz: float
    l1d: CacheSpec
    l2: CacheSpec
    l3: CacheSpec
    memory_gb: float
    memory_latency_ns: float
    memory_bandwidth_gbs: float
    ring_peak_accesses_per_us: float
    line_size_bytes: int = 64
    smt_private_penalty: float = 1.55
    context_switch_cost_us: float = 3.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("machine must have at least one core")
        if self.smt_ways < 1:
            raise ValueError("smt_ways must be >= 1")
        if self.base_frequency_ghz <= 0:
            raise ValueError("base frequency must be positive")
        if self.max_turbo_frequency_ghz < self.base_frequency_ghz:
            raise ValueError("turbo frequency cannot be below base frequency")
        if not self.l3.shared:
            raise ValueError("the L3 cache must be marked shared")
        if self.memory_bandwidth_gbs <= 0:
            raise ValueError("memory bandwidth must be positive")

    @property
    def hardware_threads(self) -> int:
        """Total number of hardware threads in the sharing domain."""
        return self.cores * self.smt_ways

    @property
    def base_frequency_hz(self) -> float:
        return self.base_frequency_ghz * 1e9

    @property
    def memory_latency_cycles(self) -> float:
        """Unloaded DRAM latency expressed in cycles at the base frequency."""
        return self.memory_latency_ns * self.base_frequency_ghz

    def scaled(self, **overrides: object) -> "MachineSpec":
        """Return a copy of this spec with selected fields replaced.

        Useful for sensitivity studies (e.g. a machine with a smaller L3 or
        less memory bandwidth) without redefining the whole topology.
        """
        values = {f: getattr(self, f) for f in self.__dataclass_fields__}
        values.update(overrides)
        return MachineSpec(**values)  # type: ignore[arg-type]


def _xeon_gold_5218() -> MachineSpec:
    return MachineSpec(
        name="xeon-gold-5218",
        architecture="cascade-lake",
        cores=32,
        smt_ways=2,
        base_frequency_ghz=2.8,
        max_turbo_frequency_ghz=3.9,
        l1d=CacheSpec(level="L1D", size_kb=32, latency_cycles=4),
        l2=CacheSpec(level="L2", size_kb=1024, latency_cycles=14),
        l3=CacheSpec(level="L3", size_kb=22 * 1024, latency_cycles=44, shared=True),
        memory_gb=384.0,
        memory_latency_ns=85.0,
        memory_bandwidth_gbs=105.0,
        ring_peak_accesses_per_us=950.0,
    )


def _xeon_silver_4314() -> MachineSpec:
    return MachineSpec(
        name="xeon-silver-4314",
        architecture="ice-lake",
        cores=16,
        smt_ways=2,
        base_frequency_ghz=2.4,
        max_turbo_frequency_ghz=3.4,
        l1d=CacheSpec(level="L1D", size_kb=48, latency_cycles=5),
        l2=CacheSpec(level="L2", size_kb=1280, latency_cycles=14),
        l3=CacheSpec(level="L3", size_kb=24 * 1024, latency_cycles=48, shared=True),
        memory_gb=128.0,
        memory_latency_ns=92.0,
        memory_bandwidth_gbs=76.0,
        ring_peak_accesses_per_us=700.0,
    )


#: The paper's primary testbed: dual-socket Xeon Gold 5218 (one socket is the
#: sharing domain used by the experiments, exposing 32 logical stress levels).
CASCADE_LAKE_5218 = _xeon_gold_5218()

#: The sensitivity-study machine of Figure 19.
ICE_LAKE_4314 = _xeon_silver_4314()

_MACHINES = {
    CASCADE_LAKE_5218.name: CASCADE_LAKE_5218,
    ICE_LAKE_4314.name: ICE_LAKE_4314,
    "cascade-lake": CASCADE_LAKE_5218,
    "ice-lake": ICE_LAKE_4314,
}


def machine_by_name(name: str) -> MachineSpec:
    """Look up a predefined machine by name or architecture alias."""
    try:
        return _MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(_MACHINES))
        raise KeyError(f"unknown machine {name!r}; known machines: {known}") from None
