"""Off-chip memory bandwidth and latency model.

Traffic that misses the L3 travels to DRAM.  Under light load an access pays
the unloaded DRAM latency; as the aggregate bandwidth demand approaches the
socket's peak, queueing delays inflate the effective latency sharply.  The
model is a standard open-queue latency/bandwidth curve:

    latency(u) = latency_unloaded * (1 + k * u / (1 - u))

with the utilisation ``u`` clamped below 1.  MB-Gen drives the system into
the steep right-hand side of this curve; CT-Gen barely registers on it, which
is exactly the distinction the Litmus test exploits through L3 miss counts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryLoad:
    """Aggregate DRAM traffic during an epoch."""

    bytes_per_second: float

    def __post_init__(self) -> None:
        if self.bytes_per_second < 0:
            raise ValueError("bytes_per_second must be >= 0")


class MemoryBandwidthModel:
    """Latency inflation of DRAM accesses as bandwidth saturates."""

    def __init__(
        self,
        peak_bandwidth_gbs: float,
        unloaded_latency_cycles: float,
        queueing_coefficient: float = 0.55,
        max_utilization: float = 0.97,
    ) -> None:
        if peak_bandwidth_gbs <= 0:
            raise ValueError("peak_bandwidth_gbs must be positive")
        if unloaded_latency_cycles <= 0:
            raise ValueError("unloaded_latency_cycles must be positive")
        if queueing_coefficient < 0:
            raise ValueError("queueing_coefficient must be >= 0")
        if not 0.0 < max_utilization < 1.0:
            raise ValueError("max_utilization must be in (0, 1)")
        self._peak_bytes_per_second = peak_bandwidth_gbs * 1e9
        self._unloaded_latency_cycles = unloaded_latency_cycles
        self._queueing_coefficient = queueing_coefficient
        self._max_utilization = max_utilization

    @property
    def peak_bandwidth_gbs(self) -> float:
        return self._peak_bytes_per_second / 1e9

    @property
    def unloaded_latency_cycles(self) -> float:
        return self._unloaded_latency_cycles

    def utilization(self, load: MemoryLoad) -> float:
        """Fraction of peak bandwidth consumed, clamped to the model maximum."""
        raw = load.bytes_per_second / self._peak_bytes_per_second
        return min(max(raw, 0.0), self._max_utilization)

    def effective_latency_cycles(self, load: MemoryLoad) -> float:
        """Loaded DRAM latency in cycles for the given aggregate traffic."""
        u = self.utilization(load)
        inflation = 1.0 + self._queueing_coefficient * u / (1.0 - u)
        return self._unloaded_latency_cycles * inflation

    def latency_inflation(self, load: MemoryLoad) -> float:
        """Ratio of loaded to unloaded latency (>= 1)."""
        return self.effective_latency_cycles(load) / self._unloaded_latency_cycles
