"""Cores and hardware threads.

These are lightweight bookkeeping objects: the scheduler in
``repro.platform.scheduler`` decides which sandboxes are attached to which
hardware thread, and the engine asks each thread which invocations are
runnable this epoch.  The objects themselves only track identity, SMT
siblings and occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass
class HardwareThread:
    """One logical CPU (SMT context) belonging to a physical core."""

    thread_id: int
    core_id: int
    smt_index: int
    #: Identifiers of the invocations currently queued on this thread.
    run_queue: List[int] = field(default_factory=list)

    @property
    def occupancy(self) -> int:
        """Number of invocations sharing this hardware thread."""
        return len(self.run_queue)

    @property
    def is_busy(self) -> bool:
        return bool(self.run_queue)

    def enqueue(self, invocation_id: int) -> None:
        if invocation_id in self.run_queue:
            raise ValueError(
                f"invocation {invocation_id} is already queued on thread "
                f"{self.thread_id}"
            )
        self.run_queue.append(invocation_id)

    def dequeue(self, invocation_id: int) -> None:
        try:
            self.run_queue.remove(invocation_id)
        except ValueError:
            raise ValueError(
                f"invocation {invocation_id} is not queued on thread "
                f"{self.thread_id}"
            ) from None


@dataclass
class Core:
    """One physical core holding ``smt_ways`` hardware threads."""

    core_id: int
    threads: List[HardwareThread]

    def __post_init__(self) -> None:
        if not self.threads:
            raise ValueError("a core needs at least one hardware thread")
        for thread in self.threads:
            if thread.core_id != self.core_id:
                raise ValueError(
                    f"thread {thread.thread_id} belongs to core {thread.core_id}, "
                    f"not {self.core_id}"
                )

    @property
    def smt_ways(self) -> int:
        return len(self.threads)

    @property
    def busy_thread_count(self) -> int:
        return sum(1 for thread in self.threads if thread.is_busy)

    @property
    def occupancy(self) -> int:
        """Total invocations queued across the core's hardware threads."""
        return sum(thread.occupancy for thread in self.threads)

    def smt_active(self) -> bool:
        """True when more than one SMT context of this core has work."""
        return self.busy_thread_count > 1

    def sibling_of(self, thread: HardwareThread) -> Optional[HardwareThread]:
        """Return the other SMT context of a 2-way core, if any."""
        others = [t for t in self.threads if t.thread_id != thread.thread_id]
        if not others:
            return None
        if len(others) == 1:
            return others[0]
        raise ValueError("sibling_of is only defined for 2-way SMT cores")

    def __iter__(self) -> Iterator[HardwareThread]:
        return iter(self.threads)


def build_cores(core_count: int, smt_ways: int) -> List[Core]:
    """Construct ``core_count`` cores each with ``smt_ways`` hardware threads.

    Thread ids are assigned the way Linux numbers logical CPUs on Intel
    machines: the first ``core_count`` ids cover SMT index 0 of every core,
    the next ``core_count`` ids cover SMT index 1, and so on.
    """
    if core_count <= 0:
        raise ValueError("core_count must be positive")
    if smt_ways <= 0:
        raise ValueError("smt_ways must be positive")
    cores: List[Core] = []
    for core_id in range(core_count):
        threads = [
            HardwareThread(
                thread_id=smt_index * core_count + core_id,
                core_id=core_id,
                smt_index=smt_index,
            )
            for smt_index in range(smt_ways)
        ]
        cores.append(Core(core_id=core_id, threads=threads))
    return cores
