"""Shared last-level-cache capacity model.

When many functions run together they compete for L3 capacity.  The model
used here follows the spirit of utility-based cache partitioning studies:
each active workload occupies a share of the L3 proportional to the pressure
it exerts (its rate of requests arriving at the L3), capped at its working
set; leftover capacity is redistributed to workloads that can still use it.

Given an allocation, a workload's effective L3 hit fraction degrades from its
solo hit fraction following a concave utility curve: a workload that receives
half the capacity it needs retains noticeably more than half of its hits
(temporal locality means the hottest blocks stay resident), but the hit rate
falls steeply once the allocation becomes a small fraction of the working
set.  The exponent of that curve is a model parameter
(:class:`repro.hardware.contention.ContentionParameters.cache_utility_exponent`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence


@dataclass(frozen=True)
class CacheDemand:
    """One workload's demand on the shared cache during an epoch."""

    workload_id: int
    #: Requests per second arriving at the L3 (i.e. the L2 miss rate).
    request_rate: float
    #: Cache footprint the workload would like resident, in MB.
    working_set_mb: float
    #: Fraction of L3 lookups that hit when the workload runs alone.
    solo_hit_fraction: float

    def __post_init__(self) -> None:
        if self.request_rate < 0:
            raise ValueError("request_rate must be >= 0")
        if self.working_set_mb < 0:
            raise ValueError("working_set_mb must be >= 0")
        if not 0.0 <= self.solo_hit_fraction <= 1.0:
            raise ValueError("solo_hit_fraction must be in [0, 1]")


@dataclass(frozen=True)
class CacheAllocation:
    """The outcome of capacity sharing for one workload."""

    workload_id: int
    allocated_mb: float
    hit_fraction: float


class SharedCacheModel:
    """Pressure-weighted occupancy model for a shared L3 cache."""

    def __init__(self, capacity_mb: float, utility_exponent: float = 0.40) -> None:
        if capacity_mb <= 0:
            raise ValueError("capacity_mb must be positive")
        if utility_exponent <= 0 or utility_exponent > 1.0:
            raise ValueError("utility_exponent must be in (0, 1]")
        self._capacity_mb = capacity_mb
        self._utility_exponent = utility_exponent

    @property
    def capacity_mb(self) -> float:
        return self._capacity_mb

    @property
    def utility_exponent(self) -> float:
        return self._utility_exponent

    def allocate(self, demands: Sequence[CacheDemand]) -> Mapping[int, CacheAllocation]:
        """Split capacity among ``demands`` and derive effective hit fractions.

        The allocation is a water-filling of capacity weighted by request
        rate: workloads whose proportional share exceeds their working set
        are capped at the working set and the surplus is re-offered to the
        rest.  Workloads with zero request rate receive no allocation (they
        are not touching the L3 this epoch) but keep their solo hit fraction
        because they are not being evicted into either.
        """
        result: dict[int, CacheAllocation] = {}
        active = [d for d in demands if d.request_rate > 0 and d.working_set_mb > 0]
        active_ids = {d.workload_id for d in active}
        inactive = [d for d in demands if d.workload_id not in active_ids]

        for demand in inactive:
            result[demand.workload_id] = CacheAllocation(
                workload_id=demand.workload_id,
                allocated_mb=min(demand.working_set_mb, self._capacity_mb),
                hit_fraction=demand.solo_hit_fraction,
            )

        allocations = self._water_fill(active)
        for demand in active:
            allocated = allocations[demand.workload_id]
            result[demand.workload_id] = CacheAllocation(
                workload_id=demand.workload_id,
                allocated_mb=allocated,
                hit_fraction=self.effective_hit_fraction(demand, allocated),
            )
        return result

    def effective_hit_fraction(self, demand: CacheDemand, allocated_mb: float) -> float:
        """Hit fraction achieved with ``allocated_mb`` of cache.

        When the allocation covers the footprint the workload keeps its solo
        hit fraction; otherwise the hit fraction shrinks along the concave
        utility curve ``(alloc / need)^utility_exponent``.
        """
        need_mb = min(demand.working_set_mb, self._capacity_mb)
        if need_mb <= 0:
            return demand.solo_hit_fraction
        coverage = min(max(allocated_mb / need_mb, 0.0), 1.0)
        return demand.solo_hit_fraction * coverage**self._utility_exponent

    def _water_fill(self, demands: Sequence[CacheDemand]) -> dict[int, float]:
        """Distribute capacity proportional to request rate, capped at need."""
        remaining_capacity = self._capacity_mb
        remaining = {d.workload_id: d for d in demands}
        allocations: dict[int, float] = {d.workload_id: 0.0 for d in demands}

        # Iterate until no workload is capped or nothing is left to give.
        # Each pass removes at least one capped workload, so the loop is
        # bounded by the number of demands.
        for _ in range(len(demands) + 1):
            if not remaining or remaining_capacity <= 1e-12:
                break
            total_rate = sum(d.request_rate for d in remaining.values())
            if total_rate <= 0:
                break
            capped: list[int] = []
            for workload_id, demand in remaining.items():
                share = remaining_capacity * demand.request_rate / total_rate
                need = min(demand.working_set_mb, self._capacity_mb)
                if share >= need - allocations[workload_id]:
                    capped.append(workload_id)
            if not capped:
                for workload_id, demand in remaining.items():
                    share = remaining_capacity * demand.request_rate / total_rate
                    allocations[workload_id] += share
                remaining_capacity = 0.0
                break
            for workload_id in capped:
                demand = remaining.pop(workload_id)
                need = min(demand.working_set_mb, self._capacity_mb)
                grant = need - allocations[workload_id]
                allocations[workload_id] = need
                remaining_capacity -= grant
        return allocations
