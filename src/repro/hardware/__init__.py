"""Hardware substrate: machine topologies, contention models and counters.

The paper runs on real Cascade Lake / Ice Lake Xeons and reads hardware
performance-monitoring counters through Linux perf.  This package replaces
that testbed with an analytic model that exposes the *same observables*:

* per-invocation cycles, instructions, L2 misses, L3 misses and cycles
  stalled on L2 misses (the counter Litmus uses to split execution time into
  ``T_private`` and ``T_shared``), and
* machine-wide L3 miss counts (the supplementary probe metric of Section 6).

The central abstraction is :class:`repro.hardware.contention.ContentionModel`
which, given the set of currently-active workload demands, returns effective
L3 hit fractions and latencies for every workload.  The platform engine uses
those to advance each invocation's progress epoch by epoch.
"""

from repro.hardware.topology import (
    CacheSpec,
    MachineSpec,
    CASCADE_LAKE_5218,
    ICE_LAKE_4314,
    machine_by_name,
)
from repro.hardware.pmu import CounterSnapshot, PMUCounters
from repro.hardware.cache import SharedCacheModel, CacheAllocation
from repro.hardware.memory import MemoryBandwidthModel
from repro.hardware.uncore import RingBandwidthModel
from repro.hardware.frequency import FrequencyGovernor, FrequencyPolicy
from repro.hardware.contention import (
    ContentionModel,
    ContentionParameters,
    WorkloadDemand,
    SharedResourcePenalty,
)
from repro.hardware.core import Core, HardwareThread
from repro.hardware.cpu import CPU

__all__ = [
    "CacheSpec",
    "MachineSpec",
    "CASCADE_LAKE_5218",
    "ICE_LAKE_4314",
    "machine_by_name",
    "CounterSnapshot",
    "PMUCounters",
    "SharedCacheModel",
    "CacheAllocation",
    "MemoryBandwidthModel",
    "RingBandwidthModel",
    "FrequencyGovernor",
    "FrequencyPolicy",
    "ContentionModel",
    "ContentionParameters",
    "WorkloadDemand",
    "SharedResourcePenalty",
    "Core",
    "HardwareThread",
    "CPU",
]
