"""Performance-monitoring-unit bookkeeping.

Litmus pricing consumes a small set of counters that Linux perf exposes on
the paper's Intel machines:

* ``cycles`` and ``instructions`` (total work),
* ``cycle_activity.stalls_l2_miss`` — cycles stalled waiting for data that
  missed the L2; Litmus treats these as ``T_shared``,
* L2 and L3 miss counts (the L3 miss count is the supplementary Litmus-test
  metric used to decide whether congestion resembles CT-Gen or MB-Gen).

:class:`PMUCounters` is a mutable accumulator used for a hardware thread, an
invocation, or the whole machine; :class:`CounterSnapshot` is an immutable
point-in-time copy so metering windows can be expressed as differences of
two snapshots, exactly like a ``perf stat`` interval.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable copy of counter values at a point in (simulated) time."""

    cycles: float = 0.0
    instructions: float = 0.0
    stall_cycles_l2_miss: float = 0.0
    l2_misses: float = 0.0
    l3_misses: float = 0.0
    context_switches: float = 0.0
    elapsed_seconds: float = 0.0

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Return the counter difference ``self - earlier``.

        This mirrors reading counters at the start and end of a measurement
        window and subtracting, the way ``perf`` interval mode works.
        """
        return CounterSnapshot(
            cycles=self.cycles - earlier.cycles,
            instructions=self.instructions - earlier.instructions,
            stall_cycles_l2_miss=self.stall_cycles_l2_miss
            - earlier.stall_cycles_l2_miss,
            l2_misses=self.l2_misses - earlier.l2_misses,
            l3_misses=self.l3_misses - earlier.l3_misses,
            context_switches=self.context_switches - earlier.context_switches,
            elapsed_seconds=self.elapsed_seconds - earlier.elapsed_seconds,
        )

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the window (0 when no cycles ran)."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def private_cycles(self) -> float:
        """Cycles not stalled on L2 misses — the paper's ``T_private``."""
        return max(self.cycles - self.stall_cycles_l2_miss, 0.0)

    @property
    def shared_cycles(self) -> float:
        """Cycles stalled on L2 misses — the paper's ``T_shared``."""
        return self.stall_cycles_l2_miss

    def shared_fraction(self) -> float:
        """Fraction of cycles spent stalled on shared resources."""
        if self.cycles <= 0:
            return 0.0
        return min(max(self.stall_cycles_l2_miss / self.cycles, 0.0), 1.0)


@dataclass
class PMUCounters:
    """Mutable counter accumulator.

    One instance is attached to every invocation record and one to the CPU
    as a whole (the machine-wide view a Litmus test reads for L3 misses).
    """

    cycles: float = 0.0
    instructions: float = 0.0
    stall_cycles_l2_miss: float = 0.0
    l2_misses: float = 0.0
    l3_misses: float = 0.0
    context_switches: float = 0.0
    elapsed_seconds: float = 0.0

    def observe(
        self,
        *,
        cycles: float = 0.0,
        instructions: float = 0.0,
        stall_cycles_l2_miss: float = 0.0,
        l2_misses: float = 0.0,
        l3_misses: float = 0.0,
        context_switches: float = 0.0,
        elapsed_seconds: float = 0.0,
    ) -> None:
        """Accumulate one epoch's worth of activity.

        All arguments must be non-negative; the simulator never rolls
        counters backwards.
        """
        for name, value in (
            ("cycles", cycles),
            ("instructions", instructions),
            ("stall_cycles_l2_miss", stall_cycles_l2_miss),
            ("l2_misses", l2_misses),
            ("l3_misses", l3_misses),
            ("context_switches", context_switches),
            ("elapsed_seconds", elapsed_seconds),
        ):
            if value < 0:
                raise ValueError(f"counter increment {name} must be >= 0, got {value}")
        self.cycles += cycles
        self.instructions += instructions
        self.stall_cycles_l2_miss += stall_cycles_l2_miss
        self.l2_misses += l2_misses
        self.l3_misses += l3_misses
        self.context_switches += context_switches
        self.elapsed_seconds += elapsed_seconds

    def merge(self, other: "PMUCounters") -> None:
        """Add another accumulator's totals into this one."""
        self.observe(
            cycles=other.cycles,
            instructions=other.instructions,
            stall_cycles_l2_miss=other.stall_cycles_l2_miss,
            l2_misses=other.l2_misses,
            l3_misses=other.l3_misses,
            context_switches=other.context_switches,
            elapsed_seconds=other.elapsed_seconds,
        )

    def snapshot(self) -> CounterSnapshot:
        """Return an immutable copy of the current totals."""
        return CounterSnapshot(
            cycles=self.cycles,
            instructions=self.instructions,
            stall_cycles_l2_miss=self.stall_cycles_l2_miss,
            l2_misses=self.l2_misses,
            l3_misses=self.l3_misses,
            context_switches=self.context_switches,
            elapsed_seconds=self.elapsed_seconds,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.cycles = 0.0
        self.instructions = 0.0
        self.stall_cycles_l2_miss = 0.0
        self.l2_misses = 0.0
        self.l3_misses = 0.0
        self.context_switches = 0.0
        self.elapsed_seconds = 0.0

    @property
    def private_cycles(self) -> float:
        return max(self.cycles - self.stall_cycles_l2_miss, 0.0)

    @property
    def shared_cycles(self) -> float:
        return self.stall_cycles_l2_miss

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles
