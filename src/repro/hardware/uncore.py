"""On-chip interconnect (ring / mesh) and L3 access-port model.

CT-Gen stresses the path between the cores and the L3: it produces a flood of
L2 misses that *hit* in the L3, so the congestion it creates lives in the
uncore interconnect and the L3 access ports rather than in DRAM bandwidth.
This model inflates the L3 hit latency as the aggregate rate of L3 lookups
approaches the uncore's service capacity, with the same queueing-curve shape
as the memory model but its own (much higher) capacity.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RingLoad:
    """Aggregate rate of L3 lookups during an epoch."""

    accesses_per_second: float

    def __post_init__(self) -> None:
        if self.accesses_per_second < 0:
            raise ValueError("accesses_per_second must be >= 0")


class RingBandwidthModel:
    """L3 hit-latency inflation as uncore traffic saturates."""

    def __init__(
        self,
        peak_accesses_per_us: float,
        unloaded_latency_cycles: float,
        queueing_coefficient: float = 0.35,
        max_utilization: float = 0.97,
    ) -> None:
        if peak_accesses_per_us <= 0:
            raise ValueError("peak_accesses_per_us must be positive")
        if unloaded_latency_cycles <= 0:
            raise ValueError("unloaded_latency_cycles must be positive")
        if queueing_coefficient < 0:
            raise ValueError("queueing_coefficient must be >= 0")
        if not 0.0 < max_utilization < 1.0:
            raise ValueError("max_utilization must be in (0, 1)")
        self._peak_accesses_per_second = peak_accesses_per_us * 1e6
        self._unloaded_latency_cycles = unloaded_latency_cycles
        self._queueing_coefficient = queueing_coefficient
        self._max_utilization = max_utilization

    @property
    def unloaded_latency_cycles(self) -> float:
        return self._unloaded_latency_cycles

    @property
    def peak_accesses_per_us(self) -> float:
        return self._peak_accesses_per_second / 1e6

    def utilization(self, load: RingLoad) -> float:
        raw = load.accesses_per_second / self._peak_accesses_per_second
        return min(max(raw, 0.0), self._max_utilization)

    def effective_latency_cycles(self, load: RingLoad) -> float:
        u = self.utilization(load)
        inflation = 1.0 + self._queueing_coefficient * u / (1.0 - u)
        return self._unloaded_latency_cycles * inflation

    def latency_inflation(self, load: RingLoad) -> float:
        return self.effective_latency_cycles(load) / self._unloaded_latency_cycles
