"""CPU frequency governor.

The paper pins the CPUs at 2.8 GHz for the main experiments (as commercial
FaaS platforms expose a single fixed vCPU frequency) and evaluates one
sensitivity configuration where Turbo is left enabled (Figure 18).  The
governor abstracts both policies:

* ``FIXED`` always returns the base frequency;
* ``TURBO`` returns a frequency that decays from the single-core turbo bin
  towards the base frequency as more hardware threads become active,
  mirroring how Intel Turbo sheds frequency with active core count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.topology import MachineSpec


class FrequencyPolicy(enum.Enum):
    """How the clock is managed for the sharing domain."""

    FIXED = "fixed"
    TURBO = "turbo"


@dataclass
class FrequencyGovernor:
    """Returns the operating frequency given the number of active threads."""

    machine: MachineSpec
    policy: FrequencyPolicy = FrequencyPolicy.FIXED
    #: Exponential decay constant for the turbo curve, in units of active
    #: hardware threads.  Larger values keep the clock high for longer.
    turbo_decay_threads: float = 6.0

    def frequency_ghz(self, active_threads: int) -> float:
        """Operating frequency with ``active_threads`` busy hardware threads."""
        if active_threads < 0:
            raise ValueError("active_threads must be >= 0")
        if self.policy is FrequencyPolicy.FIXED:
            return self.machine.base_frequency_ghz
        if active_threads <= 1:
            return self.machine.max_turbo_frequency_ghz
        import math

        span = self.machine.max_turbo_frequency_ghz - self.machine.base_frequency_ghz
        decay = math.exp(-(active_threads - 1) / self.turbo_decay_threads)
        return self.machine.base_frequency_ghz + span * decay

    def frequency_hz(self, active_threads: int) -> float:
        return self.frequency_ghz(active_threads) * 1e9

    def scaling_factor(self, active_threads: int) -> float:
        """Frequency relative to the base clock (1.0 under the fixed policy)."""
        return self.frequency_ghz(active_threads) / self.machine.base_frequency_ghz
