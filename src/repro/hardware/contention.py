"""The combined shared-resource contention model.

This is the heart of the hardware substrate.  Every simulation epoch the
platform engine collects one :class:`WorkloadDemand` per active invocation
(its rate of L2 misses, its cache footprint and how memory-level parallel its
misses are) and asks the :class:`ContentionModel` what each workload
experiences in return:

* the fraction of its L3 lookups that still hit (capacity contention),
* the latency of those hits (ring/uncore congestion, CT-Gen territory),
* the latency of its L3 misses (memory-bandwidth congestion, MB-Gen
  territory), and
* a small inflation of its *private* execution (the paper observes ~4-5 %
  growth of ``T_private`` under heavy sharing, attributable to TLB/prefetch
  pollution and other second-order effects).

The model is deliberately analytic rather than cycle-accurate: Litmus only
consumes aggregate counters, so what matters is that the counters respond to
congestion with the shapes the paper reports (``T_shared`` highly sensitive,
``T_private`` barely, L3 misses separating on-chip from off-chip pressure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.hardware.cache import CacheDemand, SharedCacheModel
from repro.hardware.memory import MemoryBandwidthModel, MemoryLoad
from repro.hardware.topology import MachineSpec
from repro.hardware.uncore import RingBandwidthModel, RingLoad


@dataclass(frozen=True)
class ContentionParameters:
    """Tunable coefficients of the contention model.

    The defaults are calibrated so the characterization experiments
    reproduce the paper's aggregate numbers (Figures 2 and 3): a ~11.5 %
    geometric-mean slowdown with 26 co-runners, ``T_shared`` inflating by
    roughly 2.8x on average and ``T_private`` by only a few percent.
    """

    cache_utility_exponent: float = 0.40
    memory_queueing_coefficient: float = 0.55
    ring_queueing_coefficient: float = 0.35
    max_utilization: float = 0.97
    #: Peak ``T_private`` inflation caused by shared-domain pressure alone
    #: (excludes SMT and context-switch overheads, which the platform layer
    #: applies separately).
    private_pressure_sensitivity: float = 0.12


@dataclass(frozen=True)
class WorkloadDemand:
    """One workload's pressure on the shared domain during an epoch."""

    workload_id: int
    #: L2 misses per second, i.e. the rate of requests reaching the L3.
    l2_miss_rate: float
    #: Cache footprint in MB competing for L3 capacity.
    working_set_mb: float
    #: Fraction of L3 lookups that hit when the workload runs alone.
    solo_l3_hit_fraction: float
    #: Average memory-level parallelism of the workload's off-core accesses;
    #: the per-miss stall observed by the core is latency / mlp.
    mlp: float = 1.0

    def __post_init__(self) -> None:
        if self.l2_miss_rate < 0:
            raise ValueError("l2_miss_rate must be >= 0")
        if self.working_set_mb < 0:
            raise ValueError("working_set_mb must be >= 0")
        if not 0.0 <= self.solo_l3_hit_fraction <= 1.0:
            raise ValueError("solo_l3_hit_fraction must be in [0, 1]")
        if self.mlp <= 0:
            raise ValueError("mlp must be positive")


@dataclass(frozen=True)
class SharedResourcePenalty:
    """What one workload experiences from the shared domain this epoch."""

    workload_id: int
    l3_hit_fraction: float
    l3_hit_latency_cycles: float
    memory_latency_cycles: float
    ring_utilization: float
    bandwidth_utilization: float
    private_inflation: float

    def stall_cycles_per_l2_miss(self, mlp: float) -> float:
        """Average core-visible stall cycles caused by one L2 miss."""
        if mlp <= 0:
            raise ValueError("mlp must be positive")
        hit = self.l3_hit_fraction * self.l3_hit_latency_cycles
        miss = (1.0 - self.l3_hit_fraction) * self.memory_latency_cycles
        return (hit + miss) / mlp


class ContentionModel:
    """Combines the cache, uncore and memory models for one sharing domain."""

    def __init__(
        self,
        machine: MachineSpec,
        parameters: ContentionParameters | None = None,
    ) -> None:
        self._machine = machine
        self._parameters = parameters or ContentionParameters()
        self._cache = SharedCacheModel(
            capacity_mb=machine.l3.size_mb,
            utility_exponent=self._parameters.cache_utility_exponent,
        )
        self._memory = MemoryBandwidthModel(
            peak_bandwidth_gbs=machine.memory_bandwidth_gbs,
            unloaded_latency_cycles=machine.memory_latency_cycles,
            queueing_coefficient=self._parameters.memory_queueing_coefficient,
            max_utilization=self._parameters.max_utilization,
        )
        self._ring = RingBandwidthModel(
            peak_accesses_per_us=machine.ring_peak_accesses_per_us,
            unloaded_latency_cycles=machine.l3.latency_cycles,
            queueing_coefficient=self._parameters.ring_queueing_coefficient,
            max_utilization=self._parameters.max_utilization,
        )

    @property
    def machine(self) -> MachineSpec:
        return self._machine

    @property
    def parameters(self) -> ContentionParameters:
        return self._parameters

    @property
    def cache(self) -> SharedCacheModel:
        return self._cache

    @property
    def memory(self) -> MemoryBandwidthModel:
        return self._memory

    @property
    def ring(self) -> RingBandwidthModel:
        return self._ring

    def evaluate(
        self, demands: Sequence[WorkloadDemand]
    ) -> Mapping[int, SharedResourcePenalty]:
        """Evaluate the shared domain for one epoch.

        Returns a mapping from workload id to the penalties it experiences.
        The computation is a single forward pass; the platform engine
        iterates it to a fixed point because the miss *rates* themselves
        depend on how fast each workload can run under the penalties.
        """
        cache_demands = [
            CacheDemand(
                workload_id=d.workload_id,
                request_rate=d.l2_miss_rate,
                working_set_mb=d.working_set_mb,
                solo_hit_fraction=d.solo_l3_hit_fraction,
            )
            for d in demands
        ]
        allocations = self._cache.allocate(cache_demands)

        total_l3_lookups = sum(d.l2_miss_rate for d in demands)
        total_dram_bytes = 0.0
        for d in demands:
            hit_fraction = allocations[d.workload_id].hit_fraction
            miss_rate = d.l2_miss_rate * (1.0 - hit_fraction)
            total_dram_bytes += miss_rate * self._machine.line_size_bytes

        ring_load = RingLoad(accesses_per_second=total_l3_lookups)
        memory_load = MemoryLoad(bytes_per_second=total_dram_bytes)

        l3_hit_latency = self._ring.effective_latency_cycles(ring_load)
        memory_latency = self._memory.effective_latency_cycles(memory_load)
        ring_utilization = self._ring.utilization(ring_load)
        bandwidth_utilization = self._memory.utilization(memory_load)
        private_inflation = 1.0 + self._parameters.private_pressure_sensitivity * max(
            ring_utilization, bandwidth_utilization
        )

        penalties: dict[int, SharedResourcePenalty] = {}
        for d in demands:
            allocation = allocations[d.workload_id]
            penalties[d.workload_id] = SharedResourcePenalty(
                workload_id=d.workload_id,
                l3_hit_fraction=allocation.hit_fraction,
                l3_hit_latency_cycles=l3_hit_latency,
                memory_latency_cycles=memory_latency,
                ring_utilization=ring_utilization,
                bandwidth_utilization=bandwidth_utilization,
                private_inflation=private_inflation,
            )
        return penalties

    def evaluate_tuples(
        self, entries: Sequence[tuple]
    ) -> dict[int, SharedResourcePenalty]:
        """Exact, allocation-free replica of :meth:`evaluate`.

        ``entries`` is a sequence of ``(workload_id, l2_miss_rate,
        working_set_mb, solo_l3_hit_fraction, mlp)`` tuples.  The simulation
        engine's fast path sits in a tight per-epoch loop where building one
        :class:`WorkloadDemand` and one :class:`CacheDemand` per workload per
        fixed-point iteration dominates; this method performs the identical
        arithmetic — same operations, same iteration order, bit-identical
        results (asserted by the fast-path property tests) — on plain tuples.
        Behavioural changes must be made to :meth:`evaluate` (the reference
        implementation) and mirrored here.
        """
        capacity_mb = self._cache.capacity_mb
        utility_exponent = self._cache.utility_exponent

        # --- SharedCacheModel.allocate, fused -------------------------- #
        hit_fractions: dict[int, float] = {}
        active = [e for e in entries if e[1] > 0 and e[2] > 0]
        if len(active) != len(entries):
            active_ids = {e[0] for e in active}
            for workload_id, _, _, solo_hit, _ in entries:
                if workload_id not in active_ids:
                    hit_fractions[workload_id] = solo_hit

        # _water_fill on the active workloads.  Shares are computed once per
        # pass (the reference implementation recomputes the identical
        # expression in its second loop, so reusing the value is exact), and
        # each workload's capped need — ``min(working_set, capacity)`` of
        # the same two floats everywhere — is computed once up front.
        remaining = {e[0]: e for e in active}
        allocations: dict[int, float] = {e[0]: 0.0 for e in active}
        needs: dict[int, float] = {e[0]: min(e[2], capacity_mb) for e in active}
        remaining_capacity = capacity_mb
        for _ in range(len(active) + 1):
            if not remaining or remaining_capacity <= 1e-12:
                break
            total_rate = sum(e[1] for e in remaining.values())
            if total_rate <= 0:
                break
            capped: list[int] = []
            shares: dict[int, float] = {}
            for workload_id, entry in remaining.items():
                share = remaining_capacity * entry[1] / total_rate
                shares[workload_id] = share
                if share >= needs[workload_id] - allocations[workload_id]:
                    capped.append(workload_id)
            if not capped:
                for workload_id, share in shares.items():
                    allocations[workload_id] += share
                remaining_capacity = 0.0
                break
            for workload_id in capped:
                del remaining[workload_id]
                need = needs[workload_id]
                grant = need - allocations[workload_id]
                allocations[workload_id] = need
                remaining_capacity -= grant

        for workload_id, _, _, solo_hit, _ in active:
            need_mb = needs[workload_id]
            if need_mb <= 0:
                hit_fractions[workload_id] = solo_hit
                continue
            coverage = min(max(allocations[workload_id] / need_mb, 0.0), 1.0)
            hit_fractions[workload_id] = solo_hit * coverage**utility_exponent

        # --- aggregate loads ------------------------------------------- #
        total_l3_lookups = sum(e[1] for e in entries)
        line_size = self._machine.line_size_bytes
        total_dram_bytes = 0.0
        for workload_id, rate, _, _, _ in entries:
            miss_rate = rate * (1.0 - hit_fractions[workload_id])
            total_dram_bytes += miss_rate * line_size

        ring_load = RingLoad(accesses_per_second=total_l3_lookups)
        memory_load = MemoryLoad(bytes_per_second=total_dram_bytes)

        ring = self._ring
        memory = self._memory
        l3_hit_latency = ring.effective_latency_cycles(ring_load)
        memory_latency = memory.effective_latency_cycles(memory_load)
        ring_utilization = ring.utilization(ring_load)
        bandwidth_utilization = memory.utilization(memory_load)
        private_inflation = 1.0 + self._parameters.private_pressure_sensitivity * max(
            ring_utilization, bandwidth_utilization
        )

        # Constructing millions of frozen dataclasses per sweep is the
        # hottest allocation site in the engine, and ``__init__`` spends its
        # time routing every field through ``object.__setattr__``.  Building
        # the instances through ``__dict__`` produces objects
        # indistinguishable from constructor-built ones (same fields, same
        # ``__eq__``/``__hash__``/``repr``) at a fifth of the cost.
        penalties: dict[int, SharedResourcePenalty] = {}
        new = object.__new__
        cls = SharedResourcePenalty
        for workload_id, _, _, _, _ in entries:
            penalty = new(cls)
            penalty.__dict__.update(
                workload_id=workload_id,
                l3_hit_fraction=hit_fractions[workload_id],
                l3_hit_latency_cycles=l3_hit_latency,
                memory_latency_cycles=memory_latency,
                ring_utilization=ring_utilization,
                bandwidth_utilization=bandwidth_utilization,
                private_inflation=private_inflation,
            )
            penalties[workload_id] = penalty
        return penalties

    def solo_penalty(self, demand: WorkloadDemand) -> SharedResourcePenalty:
        """Penalties experienced when the workload runs alone on the machine."""
        return self.evaluate([demand])[demand.workload_id]
