"""Wall-clock trajectory of the figure sweep (``BENCH_engine.json``).

Every sweep — the parallel runner and the pytest-benchmark harness alike —
appends one run record with per-figure wall-clock seconds.  The file
accumulates a trajectory across commits, so CI artifacts show how engine
changes move the cost of regenerating the paper.

Caveat for readers: figures share calibrations, solo profiles and price
evaluations through in-process and on-disk caches, so a per-figure number
mostly records which job paid for a shared artefact first.  Compare
``total_seconds``/``wall_seconds`` across records of the same temperature —
runner records carry ``disk_cache_enabled`` and
``disk_cache_entries_at_start`` so cold sweeps (0 entries) are
distinguishable from warm ones:

.. code-block:: json

    {
      "version": 1,
      "runs": [
        {
          "timestamp": "2026-07-29T12:00:00+00:00",
          "source": "runner",
          "jobs": 2,
          "figures": {"fig16": 12.81, "fig17": 11.02},
          "total_seconds": 23.83
        }
      ]
    }

Fleet sweeps (``source: "fleet-sweep"``, appended by ``python -m repro
sweep``) reuse the same record shape: ``figures`` maps the backend (e.g.
``fleet-sweep-vector``) to aggregate wall-clock, and the extras carry the
grid (``scenarios``, ``fleet_size``), the spec name for spec-driven runs,
and — for sharded runs — ``shards`` plus the per-shard ``shard_seconds``
breakdown, so the trajectory records how sharding moves sweep cost.

``REPRO_BENCH_JSON`` overrides the destination path.
"""

from __future__ import annotations

import contextlib
import datetime
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.diskcache import atomic_write_text

try:  # POSIX only; on other platforms appends fall back to best effort.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None


@contextlib.contextmanager
def _append_lock(path: Path) -> Iterator[None]:
    """Serialize read-modify-write cycles on the trajectory file.

    The atomic replace in :func:`append_run` keeps readers safe from torn
    files, but two concurrent appenders could still load the same document
    and silently drop one record; an advisory ``flock`` on a sidecar lock
    file makes the whole cycle exclusive where the platform supports it.
    """
    if fcntl is None:
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    with open(lock_path, "w") as lock_file:
        try:
            fcntl.flock(lock_file, fcntl.LOCK_EX)
        except OSError:
            yield
            return
        try:
            yield
        finally:
            try:
                fcntl.flock(lock_file, fcntl.LOCK_UN)
            except OSError:
                pass

FORMAT_VERSION = 1

_ENV_PATH = "REPRO_BENCH_JSON"


def default_path(results_dir: Path) -> Path:
    """``BENCH_engine.json`` next to the results directory (repo root)."""
    override = os.environ.get(_ENV_PATH)
    if override:
        return Path(override)
    return results_dir.resolve().parent / "BENCH_engine.json"


def _load_document(path: Path) -> Dict[str, Any]:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {"version": FORMAT_VERSION, "runs": []}
    if (
        not isinstance(document, dict)
        or document.get("version") != FORMAT_VERSION
        or not isinstance(document.get("runs"), list)
    ):
        return {"version": FORMAT_VERSION, "runs": []}
    return document


def append_run(
    figures: Mapping[str, float],
    *,
    source: str,
    path: Path,
    jobs: Optional[int] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Append one sweep record to the trajectory file and return its path."""
    record: Dict[str, Any] = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "source": source,
        "figures": {name: round(seconds, 4) for name, seconds in sorted(figures.items())},
        "total_seconds": round(sum(figures.values()), 4),
    }
    if jobs is not None:
        record["jobs"] = jobs
    if extra:
        record.update(extra)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Exclusive lock around the read-modify-write so concurrent appenders
    # cannot drop each other's records; atomic replace so readers never see
    # a torn file.
    with _append_lock(path):
        document = _load_document(path)
        document["runs"].append(record)
        atomic_write_text(path, json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
