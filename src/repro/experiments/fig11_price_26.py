"""Figure 11: Litmus vs ideal prices with 26 co-runners (one function/core).

The paper reports an average Litmus discount of 10.7 % against an ideal
discount of 10.3 % (a 0.4 % gap) in this environment.  The reproduction runs
the same comparison on the simulated platform; the discounts differ in
absolute value but the ordering (commercial > Litmus ~ ideal) and the small
gap between Litmus and ideal are preserved.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import (
    FigureResult,
    price_evaluation_cached,
    price_figure_result,
)


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 11 (normalized prices, 26 co-runners)."""
    config = config or one_per_core()
    result = price_evaluation_cached(config)
    return price_figure_result(
        "fig11",
        "Figure 11: Litmus vs ideal prices with 26 co-runners, normalized to commercial",
        result,
    )
