"""Figure 21: pricing with simultaneous multithreading enabled.

With SMT the shared-resource domain extends into the physical core itself,
roughly doubling slowdowns: the paper's ideal price drops to 47.3 % of the
commercial price and Litmus lands within 1.9 % of it.  The tables are
rebuilt with SMT enabled (50 functions over 5 physical cores / 10 hardware
threads).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig, smt_160
from repro.experiments.harness import (
    FigureResult,
    price_evaluation_cached,
    price_figure_result,
)


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 21 (Method 2 with SMT, 160 co-runners)."""
    config = config or smt_160()
    result = price_evaluation_cached(config)
    return price_figure_result(
        "fig21",
        "Figure 21: Litmus (Method 2) vs ideal prices in an SMT-enabled system",
        result,
    )
