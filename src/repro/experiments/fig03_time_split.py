"""Figure 3: ``T_private`` vs ``T_shared`` sensitivity to congestion.

With 26 co-runners the paper observes ``T_shared`` (cycles stalled on L2
misses) inflating by 181 % on average — up to 4.9x — while ``T_private``
grows by only ~4 %.  This asymmetry is what justifies charging the two time
components at different rates.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult, run_characterization


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 3 (normalized T_private and T_shared per function)."""
    config = config or one_per_core()
    result = run_characterization(config)
    rows: list[Mapping[str, object]] = [
        {
            "function": f.function,
            "normalized_t_private": f.private_slowdown,
            "normalized_t_shared": f.shared_slowdown,
        }
        for f in result.functions
    ]
    rows.append(
        {
            "function": "gmean",
            "normalized_t_private": result.gmean_private_slowdown,
            "normalized_t_shared": result.gmean_shared_slowdown,
        }
    )
    return FigureResult(
        name="fig03",
        description="Figure 3: T_private / T_shared with 26 co-runners, normalized to solo",
        columns=("function", "normalized_t_private", "normalized_t_shared"),
        rows=tuple(rows),
        summary={
            "gmean_private_slowdown": result.gmean_private_slowdown,
            "gmean_shared_slowdown": result.gmean_shared_slowdown,
            "max_shared_slowdown": max(f.shared_slowdown for f in result.functions),
        },
    )
