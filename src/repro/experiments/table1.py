"""Table 1: the serverless benchmark suite and its language runtimes."""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import FigureResult
from repro.workloads.registry import default_registry, table1_rows
from repro.workloads.runtimes import Language


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Table 1 (benchmarks, suites, runtimes, reference marks)."""
    registry = default_registry()
    rows = table1_rows()
    return FigureResult(
        name="table1",
        description="Table 1: serverless benchmarks and language runtimes",
        columns=(
            "abbreviation",
            "name",
            "suite",
            "language",
            "reference",
            "memory_mb",
            "body_instructions",
        ),
        rows=tuple(rows),
        summary={
            "functions": float(len(registry)),
            "reference_functions": float(len(registry.reference_functions())),
            "test_functions": float(len(registry.test_functions())),
            "python_functions": float(len(registry.by_language(Language.PYTHON))),
            "nodejs_functions": float(len(registry.by_language(Language.NODEJS))),
            "go_functions": float(len(registry.by_language(Language.GO))),
        },
    )
