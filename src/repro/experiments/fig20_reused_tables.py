"""Figure 20: more sharing than the tables were built for (240 functions).

The evaluation runs 15 functions per core while reusing the tables built for
10 per core.  Because the switching overhead saturates (Figure 14), the
mismatch costs little: the paper reports a 16.7 % discount against an ideal
17.9 % (1.2 % error).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig, sharing_240_reused
from repro.experiments.harness import (
    FigureResult,
    price_evaluation_cached,
    price_figure_result,
)


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 20 (Method 2 with reused tables, 240 co-runners)."""
    config = config or sharing_240_reused()
    result = price_evaluation_cached(config)
    return price_figure_result(
        "fig20",
        "Figure 20: Litmus (Method 2, reused tables) vs ideal prices with 240 co-runners",
        result,
    )
