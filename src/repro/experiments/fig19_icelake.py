"""Figure 19: a different CPU — Xeon Silver 4314 (Ice Lake).

The sensitivity study repeats the Method 2 evaluation on an Ice Lake server
with less memory (70 co-running functions over 7 cores, tables built with 50
functions over 5 cores).  The paper reports tenants paying 82.5 % of the
commercial price, within 0.7 % of the ideal price.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig, icelake_70
from repro.experiments.harness import (
    FigureResult,
    price_evaluation_cached,
    price_figure_result,
)


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 19 (Method 2 on Ice Lake, 70 co-runners)."""
    config = config or icelake_70()
    result = price_evaluation_cached(config)
    return price_figure_result(
        "fig19",
        "Figure 19: Litmus (Method 2) vs ideal prices on Xeon Silver 4314",
        result,
    )
