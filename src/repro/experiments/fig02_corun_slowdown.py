"""Figure 2: execution-time slowdown of each benchmark with 26 co-runners.

The paper reports functions slowing by up to ~35 % with a geometric mean of
~11.5 % when 26 other randomly selected functions share the machine (one
function per core).  This module runs the characterization harness in that
environment and reports the per-function total slowdowns.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult, run_characterization


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 2 (normalized execution time with 26 co-runners)."""
    config = config or one_per_core()
    result = run_characterization(config)
    rows: list[Mapping[str, object]] = [
        {"function": f.function, "normalized_execution_time": f.total_slowdown}
        for f in result.functions
    ]
    rows.append(
        {"function": "gmean", "normalized_execution_time": result.gmean_total_slowdown}
    )
    return FigureResult(
        name="fig02",
        description="Figure 2: execution time with 26 co-runners, normalized to solo",
        columns=("function", "normalized_execution_time"),
        rows=tuple(rows),
        summary={
            "gmean_slowdown": result.gmean_total_slowdown,
            "max_slowdown": result.max_total_slowdown,
        },
    )
