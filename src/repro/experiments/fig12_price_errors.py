"""Figure 12: weighted errors of the Litmus price against the ideal price.

Positive errors mean the tenant was under-compensated, negative errors mean
over-compensated.  The paper reports per-function absolute errors up to
0.072 with an absolute geometric mean of 0.023; the per-component errors
(``P_private`` weighted by the private share, ``P_shared`` by the shared
share) show that the total error is dominated by the private component for
compute-bound functions and by the shared component for memory-bound ones.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult, price_evaluation_cached


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 12 (weighted price error rates)."""
    config = config or one_per_core()
    result = price_evaluation_cached(config)
    rows: List[Mapping[str, object]] = []
    for row in result.rows:
        rows.append(
            {
                "function": row.function,
                "private_error": row.errors.private_error,
                "shared_error": row.errors.shared_error,
                "total_error": row.errors.total_error,
            }
        )
    rows.append(
        {
            "function": "abs geomean",
            "private_error": 0.0,
            "shared_error": 0.0,
            "total_error": result.abs_error_geomean,
        }
    )
    return FigureResult(
        name="fig12",
        description="Figure 12: weighted errors of Litmus prices vs ideal prices",
        columns=("function", "private_error", "shared_error", "total_error"),
        rows=tuple(rows),
        summary={
            "abs_error_geomean": result.abs_error_geomean,
            "max_abs_error": result.max_abs_error,
        },
    )
