"""Figure 15: Method 1 pricing with 160 co-running functions.

Method 1 keeps the dedicated-core tables and calibrates the probe's
``T_private`` for the switching overhead instead of rebuilding the tables.
The paper reports an average Litmus discount of 14.5 % against an ideal
discount of 17.4 % — Method 1 systematically undershoots, which motivates
Method 2.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig, PricingMethod, sharing_160
from repro.experiments.harness import (
    FigureResult,
    price_evaluation_cached,
    price_figure_result,
)


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 15 (Method 1, 160 co-running functions)."""
    config = config or sharing_160(PricingMethod.METHOD1)
    result = price_evaluation_cached(config)
    return price_figure_result(
        "fig15",
        "Figure 15: Litmus (Method 1) vs ideal prices with 160 co-runners",
        result,
    )
