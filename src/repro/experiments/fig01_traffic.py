"""Figure 1: CT-Gen and MB-Gen traffic characteristics.

The paper normalizes each generator's L2 and L3 miss counts (as thread count
grows from 1 to 31) by the average misses of the serverless benchmarks.  The
reproduction runs each generator alone on the machine for a fixed window and
reports the same normalized counts: CT-Gen's L2 misses grow linearly with
thread count while its L3 misses stay small; MB-Gen produces massive L3
misses but fewer L2 misses than CT-Gen because it throttles itself on DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult, oracle_for, registry_for
from repro.hardware.cpu import CPU
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.scheduler import DedicatedCoreScheduler
from repro.workloads.traffic import GeneratorKind, generator

#: How long each generator configuration is observed (simulated seconds).
_OBSERVATION_WINDOW_SECONDS = 0.02

DEFAULT_LEVELS: Sequence[int] = (1, 4, 7, 10, 13, 16, 19, 22, 25, 28, 31)


@dataclass(frozen=True)
class GeneratorTrafficPoint:
    """Normalized L2/L3 misses of one generator at one stress level."""

    generator: str
    threads: int
    normalized_l2_misses: float
    normalized_l3_misses: float


def _average_application_misses(config: ExperimentConfig) -> tuple[float, float]:
    """Average solo L2/L3 misses per benchmark run (the normalization base)."""
    registry = registry_for(config)
    oracle = oracle_for(config)
    l2_total = 0.0
    l3_total = 0.0
    specs = registry.all()
    for spec in specs:
        execution = oracle.profile(spec).execution
        l2_total += execution.l2_misses
        l3_total += execution.l3_misses
    return l2_total / len(specs), l3_total / len(specs)


def _generator_misses(
    config: ExperimentConfig, kind: GeneratorKind, threads: int
) -> tuple[float, float]:
    cpu = CPU(config.machine)
    engine = SimulationEngine(
        cpu,
        DedicatedCoreScheduler(),
        config=EngineConfig(epoch_seconds=config.epoch_seconds, record_events=False),
    )
    for index, spec in enumerate(generator(kind, threads).thread_specs()):
        engine.submit(spec, thread_id=index, tags={"role": "generator"})
    engine.run_for(_OBSERVATION_WINDOW_SECONDS)
    counters = cpu.global_counters
    return counters.l2_misses, counters.l3_misses


def run(
    config: Optional[ExperimentConfig] = None,
    levels: Sequence[int] = DEFAULT_LEVELS,
) -> FigureResult:
    """Regenerate Figure 1 (normalized generator L2/L3 misses vs level)."""
    config = config or one_per_core()
    base_l2, base_l3 = _average_application_misses(config)
    points: List[GeneratorTrafficPoint] = []
    for kind in (GeneratorKind.CT, GeneratorKind.MB):
        for threads in levels:
            l2, l3 = _generator_misses(config, kind, threads)
            points.append(
                GeneratorTrafficPoint(
                    generator=kind.value,
                    threads=threads,
                    normalized_l2_misses=l2 / max(base_l2, 1e-9),
                    normalized_l3_misses=l3 / max(base_l3, 1e-9),
                )
            )

    rows: List[Mapping[str, object]] = [
        {
            "generator": p.generator,
            "threads": p.threads,
            "normalized_l2_misses": p.normalized_l2_misses,
            "normalized_l3_misses": p.normalized_l3_misses,
        }
        for p in points
    ]
    ct_max_l3 = max(
        p.normalized_l3_misses for p in points if p.generator == GeneratorKind.CT.value
    )
    mb_max_l3 = max(
        p.normalized_l3_misses for p in points if p.generator == GeneratorKind.MB.value
    )
    ct_max_l2 = max(
        p.normalized_l2_misses for p in points if p.generator == GeneratorKind.CT.value
    )
    mb_max_l2 = max(
        p.normalized_l2_misses for p in points if p.generator == GeneratorKind.MB.value
    )
    return FigureResult(
        name="fig01",
        description="Figure 1: normalized L2/L3 misses of CT-Gen and MB-Gen",
        columns=("generator", "threads", "normalized_l2_misses", "normalized_l3_misses"),
        rows=tuple(rows),
        summary={
            "ct_gen_max_normalized_l2": ct_max_l2,
            "mb_gen_max_normalized_l2": mb_max_l2,
            "ct_gen_max_normalized_l3": ct_max_l3,
            "mb_gen_max_normalized_l3": mb_max_l3,
            "l3_separation_ratio": mb_max_l3 / max(ct_max_l3, 1e-9),
        },
    )
