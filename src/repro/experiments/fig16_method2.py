"""Figure 16: Method 2 pricing with 160 co-running functions.

Method 2 rebuilds the congestion/performance tables inside the temporally
shared environment (50 functions over 5 cores during calibration).  The
paper reports the Litmus discount landing within 0.2 % of the ideal 17.4 %
discount — the headline result of the evaluation.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig, PricingMethod, sharing_160
from repro.experiments.harness import (
    FigureResult,
    price_evaluation_cached,
    price_figure_result,
)


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 16 (Method 2, 160 co-running functions)."""
    config = config or sharing_160(PricingMethod.METHOD2)
    result = price_evaluation_cached(config)
    return price_figure_result(
        "fig16",
        "Figure 16: Litmus (Method 2) vs ideal prices with 160 co-runners",
        result,
    )
