"""Figure 9: correlation between startup slowdown and reference slowdown.

For each traffic generator the paper fits a linear regression from the
Python startup's slowdown to the reference functions' slowdown, separately
for ``T_private``, ``T_shared`` and the total time, reporting R^2 between
0.84 and 0.99.  This module reports the calibration scatter points, the
fitted slopes/intercepts and the R^2 of every model.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.core.estimator import CongestionEstimator
from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult, calibration_for
from repro.workloads.runtimes import Language


def run(
    config: Optional[ExperimentConfig] = None, language: Language = Language.PYTHON
) -> FigureResult:
    """Regenerate Figure 9 (startup-vs-reference regressions)."""
    config = config or one_per_core()
    calibration = calibration_for(config)
    estimator = CongestionEstimator(calibration)

    rows: List[Mapping[str, object]] = []
    summary: dict[str, float] = {}
    for kind in calibration.generators:
        probe_entries = calibration.congestion_table.entries(
            generator=kind, language=language
        )
        for probe_obs in probe_entries:
            perf = calibration.performance_table.get(kind, probe_obs.stress_level)
            rows.append(
                {
                    "generator": kind.value,
                    "stress_level": probe_obs.stress_level,
                    "startup_private_slowdown": probe_obs.private_slowdown,
                    "startup_shared_slowdown": probe_obs.shared_slowdown,
                    "startup_total_slowdown": probe_obs.total_slowdown,
                    "reference_private_slowdown": perf.private_slowdown,
                    "reference_shared_slowdown": perf.shared_slowdown,
                    "reference_total_slowdown": perf.total_slowdown,
                }
            )
        models = estimator.models_for(language, kind)
        prefix = kind.value.replace("-", "_")
        summary[f"{prefix}_r2_private"] = models.private.r_squared
        summary[f"{prefix}_r2_shared"] = models.shared.r_squared
        summary[f"{prefix}_r2_total"] = models.total.r_squared
        summary[f"{prefix}_slope_total"] = models.total.slope
    return FigureResult(
        name="fig09",
        description="Figure 9: startup slowdown vs reference slowdown regressions",
        columns=(
            "generator",
            "stress_level",
            "startup_private_slowdown",
            "startup_shared_slowdown",
            "startup_total_slowdown",
            "reference_private_slowdown",
            "reference_shared_slowdown",
            "reference_total_slowdown",
        ),
        rows=tuple(rows),
        summary=summary,
    )
