"""Figure 7: Litmus tests observing congestion rise and fall over time.

The paper's cartoon shows four cores running functions back to back, with
the Litmus test at each function's startup reporting the congestion level of
the moment.  The reproduction runs a small four-core scenario with churn and
reports, for every completed startup window, the congestion (total slowdown)
the Litmus estimator infers from that probe.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.core.estimator import CongestionEstimator
from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import (
    FigureResult,
    calibration_for,
    registry_for,
)
from repro.hardware.cpu import CPU
from repro.platform.churn import ChurnManager
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.metering import measure_startup
from repro.platform.scheduler import DedicatedCoreScheduler
from repro.workloads.synthetic import WorkloadMixer

#: How long the four-core scenario runs (simulated seconds).
_SCENARIO_SECONDS = 1.0
_SCENARIO_CORES = 4


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 7 (probe-observed congestion timeline on 4 cores)."""
    config = config or one_per_core()
    calibration = calibration_for(config)
    estimator = CongestionEstimator(calibration)
    probe = calibration.probe()
    registry = registry_for(config)

    cpu = CPU(config.machine)
    engine = SimulationEngine(
        cpu,
        DedicatedCoreScheduler(allowed_threads=tuple(range(_SCENARIO_CORES))),
        config=EngineConfig(epoch_seconds=config.epoch_seconds),
    )
    mixer = WorkloadMixer(registry.all(), seed=config.seed + 7)
    churn = ChurnManager(mixer, _SCENARIO_CORES, thread_ids=list(range(_SCENARIO_CORES)))
    churn.attach(engine)
    engine.run_for(_SCENARIO_SECONDS)

    rows: List[Mapping[str, object]] = []
    estimates: List[float] = []
    for invocation in engine.completed_invocations():
        if not invocation.startup_recorded:
            continue
        observation = probe.observe_measurement(measure_startup(invocation))
        estimate = estimator.estimate(observation)
        estimates.append(estimate.total_slowdown)
        rows.append(
            {
                "time_s": invocation.startup_end_time,
                "thread": invocation.thread_id,
                "function": invocation.spec.abbreviation,
                "estimated_congestion_slowdown": estimate.total_slowdown,
                "mb_weight": estimate.mb_weight,
            }
        )
    rows.sort(key=lambda row: float(row["time_s"]))
    return FigureResult(
        name="fig07",
        description="Figure 7: congestion observed by successive Litmus tests on 4 cores",
        columns=(
            "time_s",
            "thread",
            "function",
            "estimated_congestion_slowdown",
            "mb_weight",
        ),
        rows=tuple(rows),
        summary={
            "probes": float(len(rows)),
            "min_estimated_slowdown": min(estimates) if estimates else 0.0,
            "max_estimated_slowdown": max(estimates) if estimates else 0.0,
        },
    )
