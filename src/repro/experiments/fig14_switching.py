"""Figure 14: temporal-sharing (context switching) overhead on T_private.

The overhead grows with the number of functions co-located on one core and
saturates — around +2.5 % at roughly 10-20 co-located functions — which is
what makes Method 1's single calibration factor workable.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.core.sharing import measure_switching_curve
from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult, registry_for
from repro.platform.engine import EngineConfig

DEFAULT_COUNTS: Sequence[int] = (1, 2, 4, 6, 8, 10, 15, 20, 25)


def run(
    config: Optional[ExperimentConfig] = None,
    counts: Sequence[int] = DEFAULT_COUNTS,
) -> FigureResult:
    """Regenerate Figure 14 (T_private inflation vs co-located functions)."""
    config = config or one_per_core()
    points = measure_switching_curve(
        config.machine,
        counts,
        registry=registry_for(config),
        engine_config=EngineConfig(epoch_seconds=config.epoch_seconds),
    )
    rows: List[Mapping[str, object]] = [
        {
            "functions_per_core": point.functions_per_thread,
            "normalized_t_private": point.t_private_inflation,
        }
        for point in points
    ]
    inflations = [point.t_private_inflation for point in points]
    saturation = inflations[-1]
    half_way = next(
        (
            point.functions_per_thread
            for point in points
            if point.t_private_inflation >= 1.0 + (saturation - 1.0) * 0.9
        ),
        points[-1].functions_per_thread,
    )
    return FigureResult(
        name="fig14",
        description="Figure 14: T_private inflation vs co-located function count",
        columns=("functions_per_core", "normalized_t_private"),
        rows=tuple(rows),
        summary={
            "max_inflation": max(inflations),
            "inflation_at_saturation": saturation,
            "count_at_90pct_saturation": float(half_way),
        },
    )
