"""Figure 10: estimating the discount by logarithmic L3-miss interpolation.

Given a startup slowdown, the two generators' models disagree about the
discount because they represent different kinds of congestion.  The machine
L3 miss count observed during the probe decides where between those two
extremes the system sits: close to CT-Gen's expected misses → small
discount, close to MB-Gen's → large discount, in between → logarithmic
interpolation.  This module sweeps hypothetical L3-miss observations across
that range and reports the blended discount at each point.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional

from repro.core.estimator import CongestionEstimator
from repro.core.litmus_test import LitmusObservation
from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult, calibration_for
from repro.workloads.runtimes import Language
from repro.workloads.traffic import GeneratorKind

#: Number of interpolation sample points between the two extremes.
_SAMPLES = 9


def run(
    config: Optional[ExperimentConfig] = None, language: Language = Language.PYTHON
) -> FigureResult:
    """Regenerate Figure 10 (discount vs observed L3 misses)."""
    config = config or one_per_core()
    calibration = calibration_for(config)
    estimator = CongestionEstimator(calibration)

    # Anchor the sweep at a mid-level probe reading: the average of the
    # congestion-table observations across the two generators.
    levels = calibration.congestion_table.stress_levels(GeneratorKind.CT)
    mid_level = levels[len(levels) // 2]
    ct_obs = calibration.congestion_table.get(GeneratorKind.CT, mid_level, language)
    mb_obs = calibration.congestion_table.get(GeneratorKind.MB, mid_level, language)
    private_slowdown = (ct_obs.private_slowdown + mb_obs.private_slowdown) / 2.0
    shared_slowdown = (ct_obs.shared_slowdown + mb_obs.shared_slowdown) / 2.0
    total_slowdown = (ct_obs.total_slowdown + mb_obs.total_slowdown) / 2.0

    base = LitmusObservation(
        function="interpolation-sweep",
        language=language,
        private_slowdown=private_slowdown,
        shared_slowdown=shared_slowdown,
        total_slowdown=total_slowdown,
        machine_l3_misses=1.0,
        startup_wall_seconds=0.0,
    )
    ct_expected = estimator.predict_for_generator(base, GeneratorKind.CT).expected_l3_misses
    mb_expected = estimator.predict_for_generator(base, GeneratorKind.MB).expected_l3_misses
    low, high = sorted((ct_expected, mb_expected))
    low = max(low / 2.0, 1.0)
    high = high * 2.0

    rows: List[Mapping[str, object]] = []
    discounts: List[float] = []
    for index in range(_SAMPLES):
        fraction = index / (_SAMPLES - 1)
        l3 = math.exp(math.log(low) + fraction * (math.log(high) - math.log(low)))
        observation = LitmusObservation(
            function="interpolation-sweep",
            language=language,
            private_slowdown=private_slowdown,
            shared_slowdown=shared_slowdown,
            total_slowdown=total_slowdown,
            machine_l3_misses=l3,
            startup_wall_seconds=0.0,
        )
        estimate = estimator.estimate(observation)
        discount = 1.0 - 1.0 / estimate.total_slowdown
        discounts.append(discount)
        rows.append(
            {
                "observed_l3_misses": l3,
                "mb_weight": estimate.mb_weight,
                "estimated_total_slowdown": estimate.total_slowdown,
                "discount": discount,
            }
        )
    return FigureResult(
        name="fig10",
        description="Figure 10: discount estimated by logarithmic interpolation on L3 misses",
        columns=("observed_l3_misses", "mb_weight", "estimated_total_slowdown", "discount"),
        rows=tuple(rows),
        summary={
            "ct_expected_l3_misses": ct_expected,
            "mb_expected_l3_misses": mb_expected,
            "min_discount": min(discounts),
            "max_discount": max(discounts),
        },
    )
