"""Shared experiment machinery.

Two kinds of runs cover almost every figure in the paper:

* a **characterization run** (Figures 2-4): all 27 benchmarks co-run and
  their slowdowns / time splits are measured against the solo oracle;
* a **price evaluation run** (Figures 11-13 and 15-21): the 14 test
  functions are priced with Litmus while co-runner churn keeps the target
  congestion level, and the Litmus price is compared against the ideal and
  commercial prices.

Both return plain-data results that the ``figXX_*`` modules and the
benchmarks render.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import diskcache
from repro.analysis.errors import PriceErrorBreakdown, price_error_breakdown
from repro.analysis.reporting import format_table
from repro.analysis.stats import geometric_mean
from repro.core.calibration import CalibrationResult, calibrate_cached
from repro.core.estimator import CongestionEstimator
from repro.core.pricing import IdealPricing, LitmusPricingEngine, PriceQuote
from repro.core.sharing import Method1Adjustment
from repro.experiments.config import ChurnPool, ExperimentConfig, PricingMethod
from repro.hardware.cpu import CPU
from repro.platform.churn import ChurnManager
from repro.platform.drivers import RepeatingSubmitter, SubmitterGroup
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.invoker import Invocation
from repro.platform.metering import measure_invocation
from repro.platform.oracle import SoloOracle, SoloProfile
from repro.platform.scheduler import LeastOccupancyScheduler
from repro.workloads.function import FunctionSpec
from repro.workloads.registry import FunctionRegistry, default_registry
from repro.workloads.synthetic import WorkloadMixer


# --------------------------------------------------------------------- #
# Result containers
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FigureResult:
    """A regenerated figure/table: rows of data plus a summary."""

    name: str
    description: str
    columns: Tuple[str, ...]
    rows: Tuple[Mapping[str, object], ...]
    summary: Mapping[str, float]

    def render(self) -> str:
        """Plain-text rendering (what the benchmark harness prints)."""
        table = format_table(list(self.rows), list(self.columns), title=self.description)
        summary_lines = [f"  {key} = {value:.4f}" for key, value in self.summary.items()]
        return "\n".join([table, "summary:"] + summary_lines)


@dataclass(frozen=True)
class FunctionCharacterization:
    """Per-function slowdowns of a characterization run."""

    function: str
    total_slowdown: float
    private_slowdown: float
    shared_slowdown: float
    solo_shared_fraction: float
    congested_shared_fraction: float


@dataclass(frozen=True)
class CharacterizationResult:
    """Figures 2-4: slowdowns and time splits of all benchmarks co-running."""

    config_name: str
    functions: Tuple[FunctionCharacterization, ...]

    @property
    def gmean_total_slowdown(self) -> float:
        return geometric_mean(f.total_slowdown for f in self.functions)

    @property
    def gmean_private_slowdown(self) -> float:
        return geometric_mean(f.private_slowdown for f in self.functions)

    @property
    def gmean_shared_slowdown(self) -> float:
        return geometric_mean(f.shared_slowdown for f in self.functions)

    @property
    def max_total_slowdown(self) -> float:
        return max(f.total_slowdown for f in self.functions)


@dataclass(frozen=True)
class PriceComparisonRow:
    """One test function's prices under the three schemes."""

    function: str
    litmus_normalized_price: float
    ideal_normalized_price: float
    estimated_private_slowdown: float
    estimated_shared_slowdown: float
    actual_private_slowdown: float
    actual_shared_slowdown: float
    errors: PriceErrorBreakdown

    @property
    def litmus_discount(self) -> float:
        return 1.0 - self.litmus_normalized_price

    @property
    def ideal_discount(self) -> float:
        return 1.0 - self.ideal_normalized_price


@dataclass(frozen=True)
class PriceEvaluationResult:
    """A full price-evaluation run (one of Figures 11, 15-21)."""

    config_name: str
    rows: Tuple[PriceComparisonRow, ...]

    @property
    def gmean_litmus_price(self) -> float:
        return geometric_mean(r.litmus_normalized_price for r in self.rows)

    @property
    def gmean_ideal_price(self) -> float:
        return geometric_mean(r.ideal_normalized_price for r in self.rows)

    @property
    def average_litmus_discount(self) -> float:
        return 1.0 - self.gmean_litmus_price

    @property
    def average_ideal_discount(self) -> float:
        return 1.0 - self.gmean_ideal_price

    @property
    def discount_gap(self) -> float:
        """Signed gap between the Litmus and ideal average discounts."""
        return self.average_litmus_discount - self.average_ideal_discount

    @property
    def abs_error_geomean(self) -> float:
        return geometric_mean(
            max(row.errors.absolute_total_error, 1e-6) for row in self.rows
        )

    @property
    def max_abs_error(self) -> float:
        return max(row.errors.absolute_total_error for row in self.rows)

    def row_for(self, function: str) -> PriceComparisonRow:
        for row in self.rows:
            if row.function == function:
                return row
        raise KeyError(f"no priced function named {function!r}")


# --------------------------------------------------------------------- #
# Shared environment plumbing
# --------------------------------------------------------------------- #
_ORACLE_CACHE: Dict[Tuple[str, float, Any], SoloOracle] = {}
_REGISTRY_CACHE: Dict[float, FunctionRegistry] = {}


def registry_for(config: ExperimentConfig) -> FunctionRegistry:
    """The (body-scaled) registry used by a configuration."""
    scale = config.registry_scale
    if scale not in _REGISTRY_CACHE:
        registry = default_registry()
        _REGISTRY_CACHE[scale] = registry if scale == 1.0 else registry.scaled(scale)
    return _REGISTRY_CACHE[scale]


def oracle_for(config: ExperimentConfig, *, contention_parameters=None) -> SoloOracle:
    """A solo oracle shared by every experiment on the same machine/scale.

    ``contention_parameters`` selects a recalibrated model fit; the
    default ``None`` keeps the as-shipped coefficients.  Oracles are
    cached per fit so figures mixing nominal and recalibrated tables
    never cross-contaminate solo baselines.
    """
    key = (config.machine.name, config.registry_scale, contention_parameters)
    if key not in _ORACLE_CACHE:
        _ORACLE_CACHE[key] = SoloOracle(
            config.machine,
            contention_parameters=contention_parameters,
            engine_config=EngineConfig(epoch_seconds=config.epoch_seconds),
        )
    return _ORACLE_CACHE[key]


def calibration_for(
    config: ExperimentConfig, *, contention_parameters=None
) -> CalibrationResult:
    """The calibration tables a configuration's pricing method relies on.

    Passing ``contention_parameters`` rebuilds the tables under a
    recalibrated model fit — the continuous-calibration service's
    published fits enter the figure pipeline here, via
    :func:`recalibrated_calibration_for`.
    """
    return calibrate_cached(
        config.machine,
        config.calibration_scenario,
        registry=registry_for(config),
        stress_levels=config.calibration_levels,
        engine_config=EngineConfig(epoch_seconds=config.epoch_seconds),
        oracle=oracle_for(config, contention_parameters=contention_parameters),
    )


def recalibrated_calibration_for(
    config: ExperimentConfig, nominal_profile, calibration_config
) -> CalibrationResult:
    """Calibration tables under the continuously-calibrated published fit.

    Loads the fit the calibrate service last republished for
    ``(nominal_profile, calibration_config)`` — falling back to the
    nominal coefficients when none is published or the entry fails its
    fingerprint guard — and builds the tables with those parameters.
    This is the figure-side opt-in: nothing changes for configs that
    never ask for it.
    """
    from repro.calibrate import fitted_profile

    fitted = fitted_profile(nominal_profile, calibration_config)
    return calibration_for(config, contention_parameters=fitted.contention)


#: Figure/table name -> factory for the default ExperimentConfig whose
#: calibration tables it needs.  Only calibration-dependent jobs appear;
#: jobs absent from this map simply aren't warmed.  Kept in sync with the
#: ``config or <factory>()`` defaults in the figure modules (a regression
#: test cross-checks the distinct-calibration count).
def _calibration_config_factories() -> Dict[str, Any]:
    from repro.experiments.config import (
        heavy_320,
        icelake_70,
        one_per_core,
        sharing_160,
        sharing_240_reused,
        smt_160,
        unfixed_frequency_160,
    )

    def sharing_method1() -> ExperimentConfig:
        return sharing_160(PricingMethod.METHOD1)

    def sharing_method2() -> ExperimentConfig:
        return sharing_160(PricingMethod.METHOD2)

    return {
        "fig05": one_per_core,
        "fig07": one_per_core,
        "fig08": one_per_core,
        "fig09": one_per_core,
        "fig10": one_per_core,
        "fig11": one_per_core,
        "fig12": one_per_core,
        "fig13": one_per_core,
        "fig15": sharing_method1,
        "fig16": sharing_method2,
        "fig17": heavy_320,
        "fig18": unfixed_frequency_160,
        "fig19": icelake_70,
        "fig20": sharing_240_reused,
        "fig21": smt_160,
        "ablation-rate-split": one_per_core,
        "ablation-interpolation": one_per_core,
        "ablation-reference-count": one_per_core,
    }


def calibration_identity(config: ExperimentConfig) -> Tuple[object, ...]:
    """What makes two configs share one calibration (mirrors the cache key)."""
    return (
        config.machine.name,
        config.calibration_scenario,
        tuple(sorted(set(config.calibration_levels))),
        config.epoch_seconds,
        config.registry_scale,
    )


def warm_shared_calibrations(names: Sequence[str]) -> int:
    """Calibrate every distinct configuration ``names`` will need, once.

    The parallel figure runner calls this in the parent process *before*
    fanning jobs out: workers start at the same moment, so on a cold cache
    each would otherwise redo the same expensive calibration sweeps
    concurrently (the ``jobs=2`` regression: 137.6s vs ~50s sequential).
    Warming in the parent persists each calibration to the disk cache
    exactly once; workers then start warm.  Returns the number of
    calibrations computed-or-loaded (the distinct-identity count).
    """
    factories = _calibration_config_factories()
    seen: Dict[Tuple[object, ...], ExperimentConfig] = {}
    for name in names:
        factory = factories.get(name)
        if factory is None:
            continue
        config = factory()
        seen.setdefault(calibration_identity(config), config)
    for config in seen.values():
        calibration_for(config)
    return len(seen)


def pricing_engine_for(
    config: ExperimentConfig, calibration: Optional[CalibrationResult] = None
) -> LitmusPricingEngine:
    """Build the Litmus pricing engine a configuration prescribes."""
    calibration = calibration or calibration_for(config)
    estimator = CongestionEstimator(calibration)
    method1 = None
    if config.method is PricingMethod.METHOD1:
        method1 = Method1Adjustment(functions_per_thread=config.functions_per_thread)
    return LitmusPricingEngine(estimator, method1=method1)


def _churn_pool(config: ExperimentConfig, registry: FunctionRegistry) -> List[FunctionSpec]:
    if config.churn_pool is ChurnPool.MEMORY_INTENSIVE:
        return registry.memory_intensive()
    return registry.all()


def build_environment(
    config: ExperimentConfig,
    test_specs: Sequence[FunctionSpec],
    backend: str = "scalar",
) -> Tuple["SimulationEngine | VectorEngine", SubmitterGroup]:  # noqa: F821
    """Create the evaluation engine with test submitters and churn attached.

    ``backend`` selects the simulation engine: ``"scalar"`` is the bit-exact
    reference (:class:`SimulationEngine`); ``"vector"`` runs the same
    environment on the NumPy fleet backend
    (:class:`repro.platform.batch.VectorEngine`) — the drivers and churn are
    reused unchanged, and results agree with the scalar engine to float
    rounding noise (the property tests assert rtol=1e-9).
    """
    registry = registry_for(config)
    if backend == "vector":
        if config.smt_enabled:
            raise ValueError(
                "the vector backend does not support SMT sharing domains; "
                "use backend='scalar'"
            )
        from repro.platform.batch import VectorEngine, VectorEngineConfig

        engine = VectorEngine(
            config.machine,
            machines=1,
            config=VectorEngineConfig(epoch_seconds=config.epoch_seconds),
            frequency_policy=config.frequency_policy,
        )
    elif backend == "scalar":
        cpu = CPU(
            config.machine,
            smt_enabled=config.smt_enabled,
            frequency_policy=config.frequency_policy,
        )
        engine = SimulationEngine(
            cpu,
            LeastOccupancyScheduler(
                allowed_threads=config.eval_thread_ids(),
                max_per_thread=config.functions_per_thread,
            ),
            config=EngineConfig(epoch_seconds=config.epoch_seconds),
        )
    else:
        raise ValueError(f"unknown backend {backend!r}; expected 'scalar' or 'vector'")

    thread_ids = list(config.eval_thread_ids())
    submitters: List[RepeatingSubmitter] = []
    for index, spec in enumerate(test_specs):
        thread_id = thread_ids[index % len(thread_ids)]
        submitters.append(
            RepeatingSubmitter(
                spec, repetitions=config.repetitions, thread_id=thread_id
            )
        )
    group = SubmitterGroup(submitters)
    group.attach(engine)

    churn_count = max(config.total_functions - len(test_specs), 0)
    if churn_count > 0:
        mixer = WorkloadMixer(_churn_pool(config, registry), seed=config.seed)
        churn = ChurnManager(mixer, churn_count, thread_ids=thread_ids)
        churn.attach(engine)
    return engine, group


# --------------------------------------------------------------------- #
# Characterization runs (Figures 2-4)
# --------------------------------------------------------------------- #
def run_characterization(
    config: ExperimentConfig, backend: str = "scalar"
) -> CharacterizationResult:
    """Co-run every benchmark and measure its slowdown and time split."""
    registry = registry_for(config)
    oracle = oracle_for(config)
    specs = registry.all()
    engine, group = build_environment(config, specs, backend=backend)
    finished = engine.run_until(lambda eng: group.done, max_seconds=config.max_seconds)
    if not finished:
        raise RuntimeError(
            f"characterization run {config.name!r} did not finish within "
            f"{config.max_seconds} simulated seconds"
        )

    functions: List[FunctionCharacterization] = []
    for spec in specs:
        invocations = group.completed_by_spec()[spec.abbreviation]
        measurements = [measure_invocation(inv) for inv in invocations]
        solo = oracle.profile(spec)
        total = geometric_mean(
            m.t_total_seconds / solo.t_total_seconds for m in measurements
        )
        private = geometric_mean(
            m.t_private_seconds / solo.t_private_seconds for m in measurements
        )
        shared = geometric_mean(
            m.t_shared_seconds / max(solo.t_shared_seconds, 1e-12)
            for m in measurements
        )
        congested_fraction = sum(m.shared_fraction for m in measurements) / len(
            measurements
        )
        functions.append(
            FunctionCharacterization(
                function=spec.abbreviation,
                total_slowdown=total,
                private_slowdown=private,
                shared_slowdown=shared,
                solo_shared_fraction=solo.execution.shared_fraction,
                congested_shared_fraction=congested_fraction,
            )
        )
    return CharacterizationResult(config_name=config.name, functions=tuple(functions))


# --------------------------------------------------------------------- #
# Price evaluation runs (Figures 11-13, 15-21)
# --------------------------------------------------------------------- #
def run_price_evaluation(
    config: ExperimentConfig, backend: str = "scalar"
) -> PriceEvaluationResult:
    """Price the 14 test functions under a configuration's environment."""
    registry = registry_for(config)
    oracle = oracle_for(config)
    calibration = calibration_for(config)
    pricer = pricing_engine_for(config, calibration)
    ideal = IdealPricing()

    test_specs = registry.test_functions()
    engine, group = build_environment(config, test_specs, backend=backend)
    finished = engine.run_until(lambda eng: group.done, max_seconds=config.max_seconds)
    if not finished:
        raise RuntimeError(
            f"price evaluation {config.name!r} did not finish within "
            f"{config.max_seconds} simulated seconds"
        )

    rows: List[PriceComparisonRow] = []
    for spec in test_specs:
        invocations = group.completed_by_spec()[spec.abbreviation]
        solo = oracle.profile(spec)
        rows.append(_compare_prices(spec, invocations, solo, pricer, ideal))
    return PriceEvaluationResult(config_name=config.name, rows=tuple(rows))


_PRICE_EVALUATION_CACHE: Dict[str, PriceEvaluationResult] = {}


def _price_evaluation_to_dict(result: PriceEvaluationResult) -> Dict[str, Any]:
    return {
        "config_name": result.config_name,
        "rows": [
            {
                "function": row.function,
                "litmus_normalized_price": row.litmus_normalized_price,
                "ideal_normalized_price": row.ideal_normalized_price,
                "estimated_private_slowdown": row.estimated_private_slowdown,
                "estimated_shared_slowdown": row.estimated_shared_slowdown,
                "actual_private_slowdown": row.actual_private_slowdown,
                "actual_shared_slowdown": row.actual_shared_slowdown,
                "errors": {
                    "function": row.errors.function,
                    "private_error": row.errors.private_error,
                    "shared_error": row.errors.shared_error,
                    "total_error": row.errors.total_error,
                },
            }
            for row in result.rows
        ],
    }


def _price_evaluation_from_dict(payload: Mapping[str, Any]) -> PriceEvaluationResult:
    rows = tuple(
        PriceComparisonRow(
            function=row["function"],
            litmus_normalized_price=row["litmus_normalized_price"],
            ideal_normalized_price=row["ideal_normalized_price"],
            estimated_private_slowdown=row["estimated_private_slowdown"],
            estimated_shared_slowdown=row["estimated_shared_slowdown"],
            actual_private_slowdown=row["actual_private_slowdown"],
            actual_shared_slowdown=row["actual_shared_slowdown"],
            errors=PriceErrorBreakdown(**row["errors"]),
        )
        for row in payload["rows"]
    )
    return PriceEvaluationResult(config_name=payload["config_name"], rows=rows)


def price_evaluation_cached(
    config: ExperimentConfig, backend: str = "scalar"
) -> PriceEvaluationResult:
    """Run (or reuse) the price evaluation for a configuration.

    Several figures present different views of the same run — e.g. Figures
    11, 12 and 13 all come from the one-function-per-core evaluation — so
    results are cached per configuration signature within the process, and
    persisted through the versioned on-disk cache so parallel figure
    workers and repeated sweeps do not re-simulate the same environment.
    The on-disk key fingerprints the complete configuration (machine
    topology included) plus the scaled registry contents; vector-backend
    results are keyed separately so they can never leak into the bit-exact
    scalar figures.
    """
    key = (
        f"{config.name}|{config.machine.name}|{config.registry_scale}"
        f"|{config.repetitions}|{config.total_functions}|{config.method.value}"
        f"|{backend}"
    )
    if key in _PRICE_EVALUATION_CACHE:
        return _PRICE_EVALUATION_CACHE[key]

    fingerprint_parts = [
        config,
        diskcache.registry_fingerprint(registry_for(config).all()),
    ]
    if backend != "scalar":
        fingerprint_parts.append(f"backend={backend}")
    disk_key = diskcache.fingerprint(*fingerprint_parts)
    payload = diskcache.load("price-eval", disk_key)
    if payload is not None:
        try:
            result = _price_evaluation_from_dict(payload)
        except (KeyError, TypeError, ValueError):
            result = None
        if result is not None:
            _PRICE_EVALUATION_CACHE[key] = result
            return result

    result = run_price_evaluation(config, backend=backend)
    _PRICE_EVALUATION_CACHE[key] = result
    diskcache.store("price-eval", disk_key, _price_evaluation_to_dict(result))
    return result


def clear_experiment_caches() -> None:
    """Drop cached oracles, registries and evaluation results (for tests)."""
    _ORACLE_CACHE.clear()
    _REGISTRY_CACHE.clear()
    _PRICE_EVALUATION_CACHE.clear()


def _compare_prices(
    spec: FunctionSpec,
    invocations: Sequence[Invocation],
    solo: SoloProfile,
    pricer: LitmusPricingEngine,
    ideal: IdealPricing,
) -> PriceComparisonRow:
    quotes: List[PriceQuote] = [pricer.quote(inv) for inv in invocations]
    ideal_price = ideal.price(spec.memory_gb, solo)

    litmus_normalized = geometric_mean(q.normalized_price for q in quotes)
    ideal_normalized = geometric_mean(
        ideal_price.total / q.commercial.total for q in quotes
    )
    estimated_private = geometric_mean(q.estimate.private_slowdown for q in quotes)
    estimated_shared = geometric_mean(q.estimate.shared_slowdown for q in quotes)
    actual_private = geometric_mean(
        q.components.t_private_seconds / solo.t_private_seconds for q in quotes
    )
    actual_shared = geometric_mean(
        q.components.t_shared_seconds / max(solo.t_shared_seconds, 1e-12)
        for q in quotes
    )

    mean_litmus_private = sum(q.litmus.private for q in quotes) / len(quotes)
    mean_litmus_shared = sum(q.litmus.shared for q in quotes) / len(quotes)
    errors = price_error_breakdown(
        function=spec.abbreviation,
        litmus_private=mean_litmus_private,
        litmus_shared=mean_litmus_shared,
        ideal_private=ideal_price.private,
        ideal_shared=ideal_price.shared,
    )
    return PriceComparisonRow(
        function=spec.abbreviation,
        litmus_normalized_price=litmus_normalized,
        ideal_normalized_price=ideal_normalized,
        estimated_private_slowdown=estimated_private,
        estimated_shared_slowdown=estimated_shared,
        actual_private_slowdown=actual_private,
        actual_shared_slowdown=actual_shared,
        errors=errors,
    )


def price_rows_for_figure(result: PriceEvaluationResult) -> List[Mapping[str, object]]:
    """Render a price-evaluation result as figure rows (one per function)."""
    rows: List[Mapping[str, object]] = []
    for row in result.rows:
        rows.append(
            {
                "function": row.function,
                "litmus_price": row.litmus_normalized_price,
                "ideal_price": row.ideal_normalized_price,
                "litmus_discount": row.litmus_discount,
                "ideal_discount": row.ideal_discount,
            }
        )
    rows.append(
        {
            "function": "gmean",
            "litmus_price": result.gmean_litmus_price,
            "ideal_price": result.gmean_ideal_price,
            "litmus_discount": result.average_litmus_discount,
            "ideal_discount": result.average_ideal_discount,
        }
    )
    return rows


def price_figure_result(
    name: str, description: str, result: PriceEvaluationResult
) -> FigureResult:
    """Package a price-evaluation result as a standard figure result."""
    return FigureResult(
        name=name,
        description=description,
        columns=("function", "litmus_price", "ideal_price", "litmus_discount", "ideal_discount"),
        rows=tuple(price_rows_for_figure(result)),
        summary={
            "average_litmus_discount": result.average_litmus_discount,
            "average_ideal_discount": result.average_ideal_discount,
            "discount_gap": result.discount_gap,
            "abs_error_geomean": result.abs_error_geomean,
            "max_abs_error": result.max_abs_error,
        },
    )
