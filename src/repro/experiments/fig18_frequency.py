"""Figure 18: unfixed CPU frequency (Turbo left enabled).

The main experiments pin the clock at the base frequency, as commercial FaaS
platforms do.  This sensitivity study re-runs the 160-function Method 2
evaluation with a Turbo-like governor; because nearly every core stays busy,
the clock rarely leaves the base bin and the discount gap barely moves
(paper: 16.8 % vs an ideal 17.3 %).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig, unfixed_frequency_160
from repro.experiments.harness import (
    FigureResult,
    price_evaluation_cached,
    price_figure_result,
)


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 18 (Method 2, 160 co-runners, Turbo enabled)."""
    config = config or unfixed_frequency_160()
    result = price_evaluation_cached(config)
    return price_figure_result(
        "fig18",
        "Figure 18: Litmus (Method 2) vs ideal prices with unfixed CPU frequency",
        result,
    )
