"""Figure 5: the congestion and performance tables.

The figure in the paper illustrates the two tables the provider builds
offline; this module regenerates their contents for the default calibration
(startup slowdowns + machine L3 misses per generator/level/language, and
reference-set slowdowns per generator/level).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult, calibration_for


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 5 (congestion + performance table contents)."""
    config = config or one_per_core()
    calibration = calibration_for(config)

    rows: list[Mapping[str, object]] = []
    for entry in calibration.congestion_table.rows():
        rows.append({"table": "congestion", **entry})
    for entry in calibration.performance_table.rows():
        rows.append({"table": "performance", **entry})

    performance_entries = calibration.performance_table.entries()
    congestion_entries = calibration.congestion_table.entries()
    return FigureResult(
        name="fig05",
        description="Figure 5: congestion and performance tables",
        columns=(
            "table",
            "generator",
            "stress_level",
            "language",
            "startup_private_slowdown",
            "startup_shared_slowdown",
            "machine_l3_misses",
            "reference_private_slowdown",
            "reference_shared_slowdown",
            "reference_total_slowdown",
        ),
        rows=tuple(rows),
        summary={
            "congestion_entries": float(len(congestion_entries)),
            "performance_entries": float(len(performance_entries)),
            "max_reference_total_slowdown": max(
                e.total_slowdown for e in performance_entries
            ),
            "max_startup_shared_slowdown": max(
                e.shared_slowdown for e in congestion_entries
            ),
        },
    )
