"""Figure 4: how execution time splits between private and shared resources.

Run alone, compute-heavy functions spend up to 99.96 % of their time on
private resources while memory-heavy ones spend a sizeable fraction stalled
on the shared L3 / memory system; that fraction determines how exposed each
function is to congestion.  The split is measured on solo runs through the
oracle.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult, oracle_for, registry_for


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 4 (T_private / T_shared share of solo execution)."""
    config = config or one_per_core()
    registry = registry_for(config)
    oracle = oracle_for(config)

    rows: list[Mapping[str, object]] = []
    shared_fractions = []
    for spec in registry.all():
        execution = oracle.profile(spec).execution
        shared_fraction = execution.shared_fraction
        shared_fractions.append(shared_fraction)
        rows.append(
            {
                "function": spec.abbreviation,
                "t_private_fraction": 1.0 - shared_fraction,
                "t_shared_fraction": shared_fraction,
            }
        )
    mean_shared = sum(shared_fractions) / len(shared_fractions)
    rows.append(
        {
            "function": "mean",
            "t_private_fraction": 1.0 - mean_shared,
            "t_shared_fraction": mean_shared,
        }
    )
    return FigureResult(
        name="fig04",
        description="Figure 4: solo execution-time split between private and shared resources",
        columns=("function", "t_private_fraction", "t_shared_fraction"),
        rows=tuple(rows),
        summary={
            "mean_shared_fraction": mean_shared,
            "max_private_fraction": max(1.0 - f for f in shared_fractions),
            "min_private_fraction": min(1.0 - f for f in shared_fractions),
        },
    )
