"""Figure 17: heavy congestion — 320 co-runners from a memory-intensive mix.

The co-runner churn draws only from the eight highest-L2-miss benchmarks, so
shared resources are deliberately overwhelmed.  The paper reports a 20.0 %
average Litmus discount against an ideal 21.5 % (a 1.5 % gap), showing that
the scheme keeps tracking the ideal price even under extreme congestion.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig, heavy_320
from repro.experiments.harness import (
    FigureResult,
    price_evaluation_cached,
    price_figure_result,
)


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 17 (Method 2, 320 memory-intensive co-runners)."""
    config = config or heavy_320()
    result = price_evaluation_cached(config)
    return price_figure_result(
        "fig17",
        "Figure 17: Litmus (Method 2) vs ideal prices with 320 co-runners",
        result,
    )
