"""Figure 6: IPC of serverless functions during their startup phase.

The paper shows that functions written in the same language trace nearly
identical IPC curves while their runtime starts up — the observation that
makes the startup usable as a probe.  This module replays each language's
startup alone on the machine, sampling IPC once per simulation epoch until
the startup completes.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.core.litmus_test import probe_spec
from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult
from repro.hardware.cpu import CPU
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.scheduler import DedicatedCoreScheduler
from repro.workloads.runtimes import Language

#: Hard bound on the number of epochs sampled per language.
_MAX_SAMPLES = 2000


def startup_ipc_trace(
    config: ExperimentConfig, language: Language
) -> List[Mapping[str, object]]:
    """Per-epoch IPC samples of one language runtime's startup (solo)."""
    cpu = CPU(config.machine)
    engine = SimulationEngine(
        cpu,
        DedicatedCoreScheduler(),
        config=EngineConfig(epoch_seconds=config.epoch_seconds, record_events=False),
    )
    invocation = engine.submit(probe_spec(language), tags={"role": "ipc-trace"})
    samples: List[Mapping[str, object]] = []
    previous = invocation.counters.snapshot()
    for _ in range(_MAX_SAMPLES):
        if invocation.cursor.startup_complete:
            break
        engine.run_epoch()
        current = invocation.counters.snapshot()
        delta = current.delta(previous)
        previous = current
        if delta.cycles <= 0:
            continue
        samples.append(
            {
                "language": language.value,
                "time_ms": engine.time_seconds * 1e3,
                "ipc": delta.ipc,
            }
        )
    return samples


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 6 (startup IPC traces per language)."""
    config = config or one_per_core()
    rows: List[Mapping[str, object]] = []
    durations: dict[str, float] = {}
    for language in Language:
        trace = startup_ipc_trace(config, language)
        rows.extend(trace)
        if trace:
            durations[language.value] = float(trace[-1]["time_ms"])

    summary = {
        f"{language}_startup_ms": duration for language, duration in durations.items()
    }
    ipc_values = [float(row["ipc"]) for row in rows]
    summary["min_ipc"] = min(ipc_values)
    summary["max_ipc"] = max(ipc_values)
    return FigureResult(
        name="fig06",
        description="Figure 6: IPC during the startup phase, per language runtime",
        columns=("language", "time_ms", "ipc"),
        rows=tuple(rows),
        summary=summary,
    )
