"""Ablations of Litmus design choices.

DESIGN.md calls out the design decisions worth isolating:

* **Split rates vs a single rate** — Equation 2 charges ``T_private`` and
  ``T_shared`` with separate discounted rates; the ablation re-prices every
  invocation with a single blended rate derived from the estimated *total*
  slowdown and compares the error against the ideal price.
* **Logarithmic vs linear interpolation** — the L3-miss blending between the
  CT-Gen and MB-Gen predictions is logarithmic in the paper; the ablation
  recomputes the blend with a linear weight.
* **Reference-set size** — how much accuracy the provider loses by
  profiling fewer reference functions when building the performance table.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import geometric_mean
from repro.core.calibration import Calibrator
from repro.core.estimator import CongestionEstimator
from repro.core.pricing import IdealPricing, LitmusPricingEngine
from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import (
    FigureResult,
    build_environment,
    calibration_for,
    oracle_for,
    registry_for,
)
from repro.platform.engine import EngineConfig
from repro.workloads.registry import FunctionRegistry
from repro.workloads.traffic import GeneratorKind


def _evaluation_quotes(config: ExperimentConfig, backend: str = "scalar"):
    """Run the evaluation environment once and return (spec, quotes, solo)."""
    registry = registry_for(config)
    oracle = oracle_for(config)
    calibration = calibration_for(config)
    pricer = LitmusPricingEngine(CongestionEstimator(calibration))
    ideal = IdealPricing()

    test_specs = registry.test_functions()
    engine, group = build_environment(config, test_specs, backend=backend)
    finished = engine.run_until(lambda eng: group.done, max_seconds=config.max_seconds)
    if not finished:
        raise RuntimeError(f"ablation run {config.name!r} did not finish in time")

    per_spec = []
    for spec in test_specs:
        invocations = group.completed_by_spec()[spec.abbreviation]
        quotes = [pricer.quote(inv) for inv in invocations]
        solo = oracle.profile(spec)
        ideal_price = ideal.price(spec.memory_gb, solo)
        per_spec.append((spec, quotes, ideal_price))
    return per_spec


def run_rate_split_ablation(
    config: Optional[ExperimentConfig] = None, backend: str = "scalar"
) -> FigureResult:
    """Split private/shared rates (Eq. 2) vs one blended rate on total time."""
    config = config or one_per_core()
    per_spec = _evaluation_quotes(config, backend=backend)

    rows: List[Mapping[str, object]] = []
    split_errors: List[float] = []
    single_errors: List[float] = []
    for spec, quotes, ideal_price in per_spec:
        split_prices = []
        single_prices = []
        for quote in quotes:
            split_prices.append(quote.litmus.total)
            single_rate = 1.0 / quote.estimate.total_slowdown
            single_prices.append(quote.commercial.total * single_rate)
        split_error = abs(
            sum(split_prices) / len(split_prices) - ideal_price.total
        ) / ideal_price.total
        single_error = abs(
            sum(single_prices) / len(single_prices) - ideal_price.total
        ) / ideal_price.total
        split_errors.append(max(split_error, 1e-6))
        single_errors.append(max(single_error, 1e-6))
        rows.append(
            {
                "function": spec.abbreviation,
                "split_rate_abs_error": split_error,
                "single_rate_abs_error": single_error,
            }
        )
    return FigureResult(
        name="ablation-rate-split",
        description="Ablation: split private/shared rates vs a single blended rate",
        columns=("function", "split_rate_abs_error", "single_rate_abs_error"),
        rows=tuple(rows),
        summary={
            "split_rate_abs_error_geomean": geometric_mean(split_errors),
            "single_rate_abs_error_geomean": geometric_mean(single_errors),
        },
    )


def run_interpolation_ablation(
    config: Optional[ExperimentConfig] = None, backend: str = "scalar"
) -> FigureResult:
    """Logarithmic vs linear blending of the CT-Gen / MB-Gen predictions."""
    config = config or one_per_core()
    per_spec = _evaluation_quotes(config, backend=backend)

    rows: List[Mapping[str, object]] = []
    log_errors: List[float] = []
    linear_errors: List[float] = []
    for spec, quotes, ideal_price in per_spec:
        log_prices = []
        linear_prices = []
        for quote in quotes:
            log_prices.append(quote.litmus.total)
            predictions = quote.estimate.predictions
            ct = predictions[GeneratorKind.CT]
            mb = predictions[GeneratorKind.MB]
            low, high = sorted((ct.expected_l3_misses, mb.expected_l3_misses))
            observed = quote.observation.machine_l3_misses
            if high - low < 1e-9:
                weight = 0.5
            else:
                weight = min(max((observed - low) / (high - low), 0.0), 1.0)
            if mb.expected_l3_misses < ct.expected_l3_misses:
                weight = 1.0 - weight
            private = (1 - weight) * ct.private_slowdown + weight * mb.private_slowdown
            shared = (1 - weight) * ct.shared_slowdown + weight * mb.shared_slowdown
            components = quote.components
            price = components.memory_gb * (
                components.t_private_seconds / max(private, 1.0)
                + components.t_shared_seconds / max(shared, 1.0)
            )
            linear_prices.append(price)
        log_error = abs(sum(log_prices) / len(log_prices) - ideal_price.total) / ideal_price.total
        linear_error = abs(
            sum(linear_prices) / len(linear_prices) - ideal_price.total
        ) / ideal_price.total
        log_errors.append(max(log_error, 1e-6))
        linear_errors.append(max(linear_error, 1e-6))
        rows.append(
            {
                "function": spec.abbreviation,
                "log_interp_abs_error": log_error,
                "linear_interp_abs_error": linear_error,
            }
        )
    return FigureResult(
        name="ablation-interpolation",
        description="Ablation: logarithmic vs linear interpolation on L3 misses",
        columns=("function", "log_interp_abs_error", "linear_interp_abs_error"),
        rows=tuple(rows),
        summary={
            "log_interp_abs_error_geomean": geometric_mean(log_errors),
            "linear_interp_abs_error_geomean": geometric_mean(linear_errors),
        },
    )


def _registry_with_reference_subset(
    registry: FunctionRegistry, reference_count: int
) -> FunctionRegistry:
    """Keep only the first ``reference_count`` reference functions starred."""
    references = [spec.abbreviation for spec in registry.reference_functions()]
    keep = set(references[:reference_count])
    specs = []
    for spec in registry.all():
        if spec.is_reference and spec.abbreviation not in keep:
            specs.append(replace(spec, is_reference=False))
        else:
            specs.append(spec)
    return FunctionRegistry(specs)


def run_reference_count_ablation(
    config: Optional[ExperimentConfig] = None,
    reference_counts: Sequence[int] = (3, 7, 13),
    stress_levels: Sequence[int] = (6, 14),
    backend: str = "scalar",
) -> FigureResult:
    """Accuracy of the average discount vs the number of reference functions."""
    config = config or one_per_core()
    registry = registry_for(config)
    oracle = oracle_for(config)
    ideal = IdealPricing()

    # One shared evaluation environment: the reference count only changes the
    # provider-side tables, not the tenant workloads.
    test_specs = registry.test_functions()
    engine, group = build_environment(config, test_specs, backend=backend)
    finished = engine.run_until(lambda eng: group.done, max_seconds=config.max_seconds)
    if not finished:
        raise RuntimeError("reference-count ablation run did not finish in time")
    invocations_by_spec = group.completed_by_spec()

    rows: List[Mapping[str, object]] = []
    summary: Dict[str, float] = {}
    for count in reference_counts:
        subset_registry = _registry_with_reference_subset(registry, count)
        calibration = Calibrator(
            config.machine,
            subset_registry,
            config.calibration_scenario,
            stress_levels=stress_levels,
            engine_config=EngineConfig(epoch_seconds=config.epoch_seconds),
            oracle=oracle,
        ).calibrate()
        pricer = LitmusPricingEngine(CongestionEstimator(calibration))
        litmus_norm = []
        ideal_norm = []
        for spec in test_specs:
            quotes = [pricer.quote(inv) for inv in invocations_by_spec[spec.abbreviation]]
            ideal_price = ideal.price(spec.memory_gb, oracle.profile(spec))
            litmus_norm.append(geometric_mean(q.normalized_price for q in quotes))
            ideal_norm.append(
                geometric_mean(ideal_price.total / q.commercial.total for q in quotes)
            )
        litmus_discount = 1.0 - geometric_mean(litmus_norm)
        ideal_discount = 1.0 - geometric_mean(ideal_norm)
        rows.append(
            {
                "reference_functions": count,
                "litmus_discount": litmus_discount,
                "ideal_discount": ideal_discount,
                "discount_gap": litmus_discount - ideal_discount,
            }
        )
        summary[f"gap_with_{count}_references"] = litmus_discount - ideal_discount
    return FigureResult(
        name="ablation-reference-count",
        description="Ablation: discount accuracy vs number of reference functions",
        columns=("reference_functions", "litmus_discount", "ideal_discount", "discount_gap"),
        rows=tuple(rows),
        summary=summary,
    )
