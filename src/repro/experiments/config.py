"""Named experiment configurations matching the paper's evaluation setups.

Every configuration bundles the evaluation environment (machine, how many
functions co-run, how many hardware threads they share, SMT, frequency
policy), which pricing method is used (plain Litmus, Method 1 or Method 2 of
Section 7.2) and which calibration scenario/levels feed the tables.

The ``registry_scale`` knob shortens every function's *body* (never the
startup probe window) so the whole study runs in seconds on a laptop;
slowdowns and prices are ratios of rates, so scaling lengths leaves the
results essentially unchanged.  Presets default to the quick scale; pass
``registry_scale=1.0`` for full-length runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.core.calibration import CalibrationScenario
from repro.hardware.frequency import FrequencyPolicy
from repro.hardware.topology import CASCADE_LAKE_5218, ICE_LAKE_4314, MachineSpec


class PricingMethod(enum.Enum):
    """Which Litmus variant prices the invocations."""

    #: Dedicated-core tables used directly (Section 7.1).
    PLAIN = "plain"
    #: Dedicated-core tables plus the switching-overhead calibration of
    #: Section 7.2, Method 1.
    METHOD1 = "method1"
    #: Tables rebuilt in the shared environment (Section 7.2, Method 2).
    METHOD2 = "method2"


class ChurnPool(enum.Enum):
    """Which functions the co-runner churn draws from."""

    ALL = "all"
    MEMORY_INTENSIVE = "memory-intensive"


@dataclass(frozen=True)
class ExperimentConfig:
    """One evaluation environment plus its pricing configuration."""

    name: str
    machine: MachineSpec = CASCADE_LAKE_5218
    #: Total number of co-running functions kept alive (tests + churn).
    total_functions: int = 27
    #: Physical cores hosting functions during the evaluation.
    eval_physical_cores: int = 27
    #: Functions per hardware thread (1 = dedicated, 10 = Section 7.2).
    functions_per_thread: int = 1
    smt_enabled: bool = False
    frequency_policy: FrequencyPolicy = FrequencyPolicy.FIXED
    churn_pool: ChurnPool = ChurnPool.ALL
    method: PricingMethod = PricingMethod.PLAIN
    calibration_scenario: CalibrationScenario = field(
        default_factory=CalibrationScenario.dedicated
    )
    calibration_levels: Tuple[int, ...] = (4, 10, 14, 18)
    repetitions: int = 2
    registry_scale: float = 0.4
    epoch_seconds: float = 1e-3
    seed: int = 2024
    max_seconds: float = 600.0

    def __post_init__(self) -> None:
        if self.total_functions < 1:
            raise ValueError("total_functions must be >= 1")
        if self.eval_physical_cores < 1:
            raise ValueError("eval_physical_cores must be >= 1")
        if self.eval_physical_cores > self.machine.cores:
            raise ValueError(
                f"config {self.name!r} asks for {self.eval_physical_cores} cores "
                f"but {self.machine.name} has only {self.machine.cores}"
            )
        if self.functions_per_thread < 1:
            raise ValueError("functions_per_thread must be >= 1")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.registry_scale <= 0:
            raise ValueError("registry_scale must be positive")

    # ------------------------------------------------------------------ #
    # Derived values
    # ------------------------------------------------------------------ #
    @property
    def eval_thread_count(self) -> int:
        """Hardware threads hosting functions during the evaluation."""
        ways = 2 if self.smt_enabled else 1
        return self.eval_physical_cores * ways

    def eval_thread_ids(self) -> Tuple[int, ...]:
        """The hardware-thread ids functions run on during the evaluation.

        Thread ids follow the Linux-style numbering used by the CPU model:
        the SMT-sibling of core ``c`` is ``machine.cores + c``.
        """
        cores = range(self.eval_physical_cores)
        if not self.smt_enabled:
            return tuple(cores)
        return tuple(cores) + tuple(self.machine.cores + c for c in cores)

    @property
    def co_runners(self) -> int:
        """Co-running functions seen by each test invocation."""
        return self.total_functions - 1

    def quick(self, repetitions: int = 1, registry_scale: float = 0.25) -> "ExperimentConfig":
        """A cheaper copy of this config for smoke tests."""
        return replace(
            self, repetitions=repetitions, registry_scale=registry_scale
        )

    def full(self) -> "ExperimentConfig":
        """A full-length copy (paper-scale bodies, more repetitions)."""
        return replace(self, registry_scale=1.0, repetitions=5)


# --------------------------------------------------------------------- #
# Presets: one per evaluation setup in the paper
# --------------------------------------------------------------------- #
def one_per_core(**overrides) -> ExperimentConfig:
    """Section 7.1 / Figures 11-13: 27 functions, one per core."""
    return replace(
        ExperimentConfig(
            name="one-per-core-27",
            total_functions=27,
            eval_physical_cores=27,
            functions_per_thread=1,
            method=PricingMethod.PLAIN,
            calibration_scenario=CalibrationScenario.dedicated(),
        ),
        **overrides,
    )


def sharing_160(method: PricingMethod = PricingMethod.METHOD2, **overrides) -> ExperimentConfig:
    """Section 7.2 / Figures 15-16: 160 functions over 16 cores."""
    scenario = (
        CalibrationScenario.dedicated()
        if method is not PricingMethod.METHOD2
        else CalibrationScenario.shared()
    )
    return replace(
        ExperimentConfig(
            name=f"sharing-160-{method.value}",
            total_functions=160,
            eval_physical_cores=16,
            functions_per_thread=10,
            method=method,
            calibration_scenario=scenario,
        ),
        **overrides,
    )


def heavy_320(**overrides) -> ExperimentConfig:
    """Figure 17: 320 co-running functions, memory-intensive churn mix."""
    return replace(
        ExperimentConfig(
            name="heavy-320",
            total_functions=320,
            eval_physical_cores=16,
            functions_per_thread=20,
            churn_pool=ChurnPool.MEMORY_INTENSIVE,
            method=PricingMethod.METHOD2,
            calibration_scenario=CalibrationScenario.shared(),
        ),
        **overrides,
    )


def unfixed_frequency_160(**overrides) -> ExperimentConfig:
    """Figure 18: the 160-function setup with Turbo left enabled."""
    return replace(
        sharing_160(PricingMethod.METHOD2),
        name="sharing-160-turbo",
        frequency_policy=FrequencyPolicy.TURBO,
        **overrides,
    )


def icelake_70(**overrides) -> ExperimentConfig:
    """Figure 19: Xeon Silver 4314 (Ice Lake), 70 functions over 7 cores."""
    return replace(
        ExperimentConfig(
            name="icelake-70",
            machine=ICE_LAKE_4314,
            total_functions=70,
            eval_physical_cores=7,
            functions_per_thread=10,
            method=PricingMethod.METHOD2,
            calibration_scenario=CalibrationScenario.shared(),
            calibration_levels=(3, 6, 9, 11),
        ),
        **overrides,
    )


def sharing_240_reused(**overrides) -> ExperimentConfig:
    """Figure 20: 240 functions (15 per core) reusing the 10-per-core tables."""
    return replace(
        ExperimentConfig(
            name="sharing-240-reused-tables",
            total_functions=240,
            eval_physical_cores=16,
            functions_per_thread=15,
            method=PricingMethod.METHOD2,
            calibration_scenario=CalibrationScenario.shared(),
        ),
        **overrides,
    )


def smt_160(**overrides) -> ExperimentConfig:
    """Figure 21: SMT enabled, 160 functions over 8 physical cores."""
    return replace(
        ExperimentConfig(
            name="smt-160",
            total_functions=160,
            eval_physical_cores=8,
            functions_per_thread=10,
            smt_enabled=True,
            method=PricingMethod.METHOD2,
            calibration_scenario=CalibrationScenario.smt(),
        ),
        **overrides,
    )
