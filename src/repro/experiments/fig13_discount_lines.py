"""Figure 13: per-function time splits against the Litmus discount lines.

The figure plots each test function's ``T_private`` and ``T_shared`` when
co-running (normalized to solo — bars below 1, the gap to 1 being the ideal
discount) together with the system-wide discount rates Litmus derived from
its probes (the two horizontal lines).  Functions whose bars sit above the
line are under-compensated, those below are over-compensated.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.analysis.stats import geometric_mean
from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult, price_evaluation_cached


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Figure 13 (normalized time components vs discount rates)."""
    config = config or one_per_core()
    result = price_evaluation_cached(config)

    rows: List[Mapping[str, object]] = []
    for row in result.rows:
        rows.append(
            {
                "function": row.function,
                # The figure's bars: solo time relative to congested time.
                "normalized_t_private": 1.0 / row.actual_private_slowdown,
                "normalized_t_shared": 1.0 / row.actual_shared_slowdown,
                # The figure's dotted lines: the rate Litmus charges.
                "litmus_private_rate": 1.0 / row.estimated_private_slowdown,
                "litmus_shared_rate": 1.0 / row.estimated_shared_slowdown,
            }
        )
    gmean_private_rate = geometric_mean(
        1.0 / row.estimated_private_slowdown for row in result.rows
    )
    gmean_shared_rate = geometric_mean(
        1.0 / row.estimated_shared_slowdown for row in result.rows
    )
    return FigureResult(
        name="fig13",
        description="Figure 13: normalized T_private/T_shared vs Litmus discount rates",
        columns=(
            "function",
            "normalized_t_private",
            "normalized_t_shared",
            "litmus_private_rate",
            "litmus_shared_rate",
        ),
        rows=tuple(rows),
        summary={
            "gmean_private_rate": gmean_private_rate,
            "gmean_shared_rate": gmean_shared_rate,
            "gmean_actual_private_slowdown": geometric_mean(
                row.actual_private_slowdown for row in result.rows
            ),
            "gmean_actual_shared_slowdown": geometric_mean(
                row.actual_shared_slowdown for row in result.rows
            ),
        },
    )
