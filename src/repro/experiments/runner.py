"""Parallel figure/table runner.

Fans the paper's figure jobs out over a process pool, writes their rendered
rows to ``results/``, records per-figure wall-clock into the
``BENCH_engine.json`` trajectory, and (in check mode) verifies that the
regenerated text matches the committed results byte for byte.

Workers share work through the versioned on-disk cache
(:mod:`repro.diskcache`): the first worker to *finish* a calibration, a
solo profile or a price evaluation persists it; workers that start later
load it.  There is deliberately no cross-process locking, so workers that
need the same artefact at the same moment each compute it (atomic
replace-on-store keeps that safe, just redundant) — on a cold cache this
costs some duplicate work, bounded by the most-expensive-first dispatch
order putting the distinct-configuration heavyweights into the first wave.

This is what ``python -m repro run --figures all --jobs N`` invokes, and
what the CI ``figures`` tier runs on every pull request.
"""

from __future__ import annotations

import difflib
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro import benchlog, diskcache

#: Figure/table name -> experiments module implementing ``run()`` (an
#: optional ``:attribute`` suffix selects a different entry point).
FIGURE_MODULES: Dict[str, str] = {
    "table1": "repro.experiments.table1",
    "fig01": "repro.experiments.fig01_traffic",
    "fig02": "repro.experiments.fig02_corun_slowdown",
    "fig03": "repro.experiments.fig03_time_split",
    "fig04": "repro.experiments.fig04_distribution",
    "fig05": "repro.experiments.fig05_tables",
    "fig06": "repro.experiments.fig06_startup_ipc",
    "fig07": "repro.experiments.fig07_probe_timeline",
    "fig08": "repro.experiments.fig08_reference_mbgen",
    "fig09": "repro.experiments.fig09_regression",
    "fig10": "repro.experiments.fig10_interpolation",
    "fig11": "repro.experiments.fig11_price_26",
    "fig12": "repro.experiments.fig12_price_errors",
    "fig13": "repro.experiments.fig13_discount_lines",
    "fig14": "repro.experiments.fig14_switching",
    "fig15": "repro.experiments.fig15_method1",
    "fig16": "repro.experiments.fig16_method2",
    "fig17": "repro.experiments.fig17_heavy",
    "fig18": "repro.experiments.fig18_frequency",
    "fig19": "repro.experiments.fig19_icelake",
    "fig20": "repro.experiments.fig20_reused_tables",
    "fig21": "repro.experiments.fig21_smt",
    "ablation-rate-split": "repro.experiments.ablation:run_rate_split_ablation",
    "ablation-interpolation": "repro.experiments.ablation:run_interpolation_ablation",
    "ablation-reference-count": "repro.experiments.ablation:run_reference_count_ablation",
}

#: Rough relative cost of each job (measured cold, arbitrary units).  Used
#: only for most-expensive-first dispatch; does not need to be current.
_EXPECTED_COST: Dict[str, float] = {
    "fig16": 100.0,
    "fig17": 90.0,
    "fig19": 88.0,
    "fig21": 75.0,
    "fig20": 50.0,
    "fig15": 22.0,
    "fig18": 21.0,
    "ablation-reference-count": 5.0,
    "fig05": 5.0,
    "fig14": 3.0,
}


def resolve_runner(name: str) -> Callable[[], object]:
    """Import the ``run`` callable behind a figure name."""
    from importlib import import_module

    target = FIGURE_MODULES[name]
    if ":" in target:
        module_name, attribute = target.split(":", 1)
    else:
        module_name, attribute = target, "run"
    return getattr(import_module(module_name), attribute)


def resolve_figure_names(selection: Optional[str]) -> List[str]:
    """Expand a ``--figures`` value (``all`` or a comma list) to job names."""
    if selection is None or selection.strip().lower() == "all":
        return list(FIGURE_MODULES)
    names = [part.strip() for part in selection.split(",") if part.strip()]
    unknown = [name for name in names if name not in FIGURE_MODULES]
    if unknown:
        known = ", ".join(sorted(FIGURE_MODULES))
        raise KeyError(f"unknown figure(s) {', '.join(unknown)}; known: {known}")
    return names


@dataclass(frozen=True)
class FigureRun:
    """Outcome of regenerating one figure."""

    name: str
    rendered: str
    seconds: float
    matched: Optional[bool] = None  # check mode only
    diff: Optional[str] = None
    profile_text: Optional[str] = None  # --profile only
    #: Wall-clock (time.time()) when the job started; lets the parent
    #: file a post-hoc trace span without pickling tracers into workers.
    started_unix: float = 0.0


@dataclass(frozen=True)
class SweepReport:
    """Outcome of a full sweep."""

    runs: List[FigureRun]
    jobs: int
    wall_seconds: float
    bench_path: Optional[Path]

    @property
    def mismatches(self) -> List[FigureRun]:
        return [run for run in self.runs if run.matched is False]

    @property
    def figure_seconds(self) -> Dict[str, float]:
        return {run.name: run.seconds for run in self.runs}


def _execute_job(name: str, profile: bool = False) -> FigureRun:
    """Worker entry point: regenerate one figure and render it."""
    started_unix = time.time()
    start = time.perf_counter()
    profile_text: Optional[str] = None
    if profile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = resolve_runner(name)()
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(20)
        profile_text = stream.getvalue()
    else:
        result = resolve_runner(name)()
    rendered = result.render() + "\n"
    return FigureRun(
        name=name,
        rendered=rendered,
        seconds=time.perf_counter() - start,
        profile_text=profile_text,
        started_unix=started_unix,
    )


def _dispatch_order(names: Sequence[str]) -> List[str]:
    return sorted(names, key=lambda name: -_EXPECTED_COST.get(name, 1.0))


def run_figures(
    names: Sequence[str],
    *,
    jobs: int = 1,
    results_dir: Path = Path("results"),
    check: bool = False,
    bench_path: Optional[Path] = None,
    record_bench: bool = True,
    progress: Optional[Callable[[FigureRun], None]] = None,
    profile: bool = False,
    metrics_path: Optional[Path] = None,
) -> SweepReport:
    """Regenerate ``names`` with ``jobs`` workers.

    Writes each figure to ``results_dir/<name>.txt`` — unless ``check`` is
    set, in which case the rendered text is compared against the committed
    file instead and mismatches carry a unified diff.  Per-figure timing is
    appended to the ``BENCH_engine.json`` trajectory.  With ``profile``
    each figure runs under :mod:`cProfile` and its top-20
    cumulative-time entries ride along on the returned runs.
    ``metrics_path`` appends one enveloped trace span per completed
    figure under a ``run-figures`` root span — the ``run`` counterpart of
    ``sweep --metrics-out``, consumable by ``python -m repro obs``
    (see docs/observability.md).  The root span self-accounts tracing
    overhead; its ``obs_overhead_fraction`` lands in the
    ``BENCH_engine.json`` run extras.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    ordered = _dispatch_order(names)
    metrics_writer = None
    tracer = None
    root_span = None
    if metrics_path is not None:
        from repro.obs import JsonlWriter, Tracer, wrap

        metrics_writer = JsonlWriter(metrics_path)
        writer = metrics_writer
        tracer = Tracer(
            sink=lambda span: writer.write(wrap("span", span.to_dict()))
        )
        root_span = tracer.start(
            "run-figures",
            tags={"phase": "run", "figures": len(ordered), "jobs": jobs},
        )

    def record_figure(run: FigureRun, completed: int) -> None:
        # Figure spans are synthesized post-hoc in the parent from the
        # worker-reported wall start + duration, so workers stay free of
        # tracer state (and picklable).
        if tracer is not None:
            tracer.record(
                run.name,
                start_unix_seconds=run.started_unix,
                duration_seconds=run.seconds,
                parent=root_span,
                tags={
                    "phase": "figure",
                    "completed": completed,
                    "total": len(ordered),
                },
            )
    # Recorded so trajectory readers can tell a cold sweep from a warm one:
    # per-figure seconds mostly reflect which job paid for a shared cached
    # artefact first, so only same-temperature records compare meaningfully.
    cache_entries_start = 0
    if diskcache.cache_enabled():
        try:
            cache_entries_start = sum(1 for _ in diskcache.cache_dir().glob("*.json"))
        except OSError:
            cache_entries_start = 0
    sweep_start = time.perf_counter()

    runs: List[FigureRun] = []
    calibrations_warmed = 0
    if jobs == 1 or len(ordered) <= 1:
        for name in ordered:
            run = _execute_job(name, profile)
            runs.append(run)
            record_figure(run, len(runs))
            if progress is not None:
                progress(run)
    else:
        # Warm every distinct calibration in the parent before fanning out:
        # parallel workers all start cold at the same instant, so without
        # this each would redo the same expensive calibration sweeps (the
        # jobs=2 regression — see warm_shared_calibrations).
        from repro.experiments.harness import warm_shared_calibrations

        calibrations_warmed = warm_shared_calibrations(ordered)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            pending = {pool.submit(_execute_job, name, profile) for name in ordered}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    run = future.result()
                    runs.append(run)
                    record_figure(run, len(runs))
                    if progress is not None:
                        progress(run)
    runs.sort(key=lambda run: ordered.index(run.name))

    checked: List[FigureRun] = []
    for run in runs:
        output_path = results_dir / f"{run.name}.txt"
        if check:
            committed = (
                output_path.read_text(encoding="utf-8")
                if output_path.exists()
                else None
            )
            matched = committed == run.rendered
            diff = None
            if not matched:
                diff = "".join(
                    difflib.unified_diff(
                        (committed or "").splitlines(keepends=True),
                        run.rendered.splitlines(keepends=True),
                        fromfile=f"committed/{output_path.name}",
                        tofile=f"regenerated/{output_path.name}",
                    )
                )
            checked.append(
                FigureRun(
                    run.name, run.rendered, run.seconds, matched, diff, run.profile_text
                )
            )
        else:
            results_dir.mkdir(parents=True, exist_ok=True)
            output_path.write_text(run.rendered, encoding="utf-8")
            checked.append(run)

    wall = time.perf_counter() - sweep_start
    obs_extra: Dict[str, float] = {}
    if tracer is not None and root_span is not None:
        root_span.tags["figures"] = len(runs)
        tracer.finish(root_span, root=True)
        obs_extra["obs_overhead_fraction"] = float(
            root_span.tags.get("obs_overhead_fraction", 0.0)
        )
        metrics_writer.close()
    written_bench: Optional[Path] = None
    if record_bench:
        written_bench = benchlog.append_run(
            {run.name: run.seconds for run in checked},
            source="runner-check" if check else "runner",
            path=bench_path or benchlog.default_path(results_dir),
            jobs=jobs,
            extra={
                "wall_seconds": round(wall, 4),
                "disk_cache_enabled": diskcache.cache_enabled(),
                "disk_cache_entries_at_start": cache_entries_start,
                # Distinct calibrations pre-computed in the parent before
                # the parallel fan-out (0 for sequential runs).
                **(
                    {"calibrations_warmed": calibrations_warmed}
                    if calibrations_warmed
                    else {}
                ),
                # cProfile inflates per-figure seconds severalfold; the
                # marker keeps profiled entries from reading as regressions.
                **({"profiled": True} if profile else {}),
                **obs_extra,
            },
        )
    return SweepReport(runs=checked, jobs=jobs, wall_seconds=wall, bench_path=written_bench)
