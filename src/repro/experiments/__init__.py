"""Experiment harnesses: one module per table/figure of the paper.

``config`` defines the named environment presets (co-runner counts, sharing
degree, machine, pricing method) matching the paper's evaluation sections;
``harness`` provides the shared machinery (characterization runs, price
evaluation runs, figure-result containers); the ``figXX_*`` modules
regenerate the corresponding figure's rows or series.  Every module exposes a
``run(config=None)`` function returning a :class:`repro.experiments.harness.FigureResult`.
"""

from repro.experiments.config import (
    ExperimentConfig,
    PricingMethod,
    one_per_core,
    sharing_160,
    heavy_320,
    unfixed_frequency_160,
    icelake_70,
    sharing_240_reused,
    smt_160,
)
from repro.experiments.harness import (
    CharacterizationResult,
    FigureResult,
    PriceEvaluationResult,
    run_characterization,
    run_price_evaluation,
)

__all__ = [
    "ExperimentConfig",
    "PricingMethod",
    "one_per_core",
    "sharing_160",
    "heavy_320",
    "unfixed_frequency_160",
    "icelake_70",
    "sharing_240_reused",
    "smt_160",
    "CharacterizationResult",
    "FigureResult",
    "PriceEvaluationResult",
    "run_characterization",
    "run_price_evaluation",
]
