"""Figure 8: reference-function slowdowns under MB-Gen stress.

The paper shows the per-reference private/shared/total slowdowns while
MB-Gen runs at stress level 14, plus their geometric mean — the values that
populate one row of the performance table.  This module reads the same
numbers from the calibration sweep (which includes level 14 by default).
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.analysis.stats import geometric_mean
from repro.experiments.config import ExperimentConfig, one_per_core
from repro.experiments.harness import FigureResult, calibration_for
from repro.workloads.traffic import GeneratorKind


def run(
    config: Optional[ExperimentConfig] = None, stress_level: Optional[int] = None
) -> FigureResult:
    """Regenerate Figure 8 (reference slowdowns under MB-Gen)."""
    config = config or one_per_core()
    calibration = calibration_for(config)
    available = calibration.performance_table.stress_levels(GeneratorKind.MB)
    if stress_level is None:
        # Use the calibrated level closest to the paper's level 14.
        stress_level = min(available, key=lambda level: abs(level - 14))
    per_reference = calibration.reference_slowdowns[(GeneratorKind.MB, stress_level)]

    rows: List[Mapping[str, object]] = []
    for abbreviation, (private, shared, total) in sorted(per_reference.items()):
        rows.append(
            {
                "function": abbreviation,
                "normalized_t_private": private,
                "normalized_t_shared": shared,
                "normalized_t_total": total,
            }
        )
    rows.append(
        {
            "function": "gmean",
            "normalized_t_private": geometric_mean(v[0] for v in per_reference.values()),
            "normalized_t_shared": geometric_mean(v[1] for v in per_reference.values()),
            "normalized_t_total": geometric_mean(v[2] for v in per_reference.values()),
        }
    )
    startup = calibration.congestion_table.entries(generator=GeneratorKind.MB)
    startup_at_level = [e for e in startup if e.stress_level == stress_level]
    rows.append(
        {
            "function": "start-py",
            "normalized_t_private": startup_at_level[0].private_slowdown,
            "normalized_t_shared": startup_at_level[0].shared_slowdown,
            "normalized_t_total": startup_at_level[0].total_slowdown,
        }
    )
    performance = calibration.performance_table.get(GeneratorKind.MB, stress_level)
    return FigureResult(
        name="fig08",
        description=f"Figure 8: reference slowdowns under MB-Gen at level {stress_level}",
        columns=(
            "function",
            "normalized_t_private",
            "normalized_t_shared",
            "normalized_t_total",
        ),
        rows=tuple(rows),
        summary={
            "stress_level": float(stress_level),
            "gmean_total_slowdown": performance.total_slowdown,
            "gmean_shared_slowdown": performance.shared_slowdown,
            "gmean_private_slowdown": performance.private_slowdown,
        },
    )
