"""The ``[[faults]]`` axis of scenario specs, and degradation reporting.

Parsing follows the same contract as the rest of :mod:`repro.scenarios`:
every problem raises :class:`~repro.scenarios.schema.SpecError` naming the
path-qualified offending token (``spec.toml.faults[1].type``) and listing
the valid choices, so a typo in a chaos spec reads like a CLI usage error
rather than a traceback.  See ``docs/chaos.md`` for the cookbook.

:class:`DegradationReport` is the other half of the fault axis: given a
faulted sweep and its faults-stripped baseline it tabulates, per scenario,
how much throughput and pricing accuracy the declared faults cost.  The
report is a pure function of the two results (no wall-clock anywhere), so
two runs of the same seeded spec render identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.platform.batch.sweep import FleetSweepResult
from repro.platform.faults import FAULT_TYPES, FaultSpec
from repro.scenarios import schema

#: Keys every fault table accepts.
_FAULT_COMMON_KEYS = ("type", "scenario")

#: Additional keys per fault type (checked exactly: anything else errors).
_FAULT_KEYS: Dict[str, Tuple[str, ...]] = {
    "churn-spike": _FAULT_COMMON_KEYS
    + ("start_seconds", "duration_seconds", "count", "seed"),
    "noisy-neighbor": _FAULT_COMMON_KEYS
    + ("start_seconds", "duration_seconds", "count", "functions", "seed"),
    "freq-throttle": _FAULT_COMMON_KEYS
    + ("start_seconds", "duration_seconds", "factor"),
    "meter-drop": _FAULT_COMMON_KEYS + ("probability", "seed"),
    "meter-dup": _FAULT_COMMON_KEYS + ("probability", "seed"),
}


def parse_faults(value: Any, path: str) -> Tuple[FaultSpec, ...]:
    """Validate a decoded ``[[faults]]`` array into typed fault specs.

    ``path`` prefixes every error (``<origin>.faults``).  Each entry must
    name a known ``type``; the keys it may set depend on that type, and
    numeric ranges are enforced here so :class:`FaultSpec` construction
    cannot fail later with a non-path-qualified message.
    """
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes, Mapping)):
        schema.fail(path, f"expected an array of fault tables, got {value!r}")
    faults: List[FaultSpec] = []
    for position, entry in enumerate(value):
        entry_path = f"{path}[{position}]"
        table = schema.as_table(entry, entry_path)
        fault_type = schema.get_str(table, "type", entry_path, choices=FAULT_TYPES)
        schema.check_unknown_keys(table, _FAULT_KEYS[fault_type], entry_path)
        scenario = schema.get_str(table, "scenario", entry_path, default="*")
        # Distinct default seeds per entry keep two faults of the same type
        # statistically independent without the spec author doing anything.
        seed = schema.get_int(table, "seed", entry_path, default=2024 + position)
        start = 0.0
        duration: Optional[float] = None
        count = 0
        factor = 1.0
        probability = 0.0
        functions: Sequence[str] = ()
        if fault_type in ("churn-spike", "noisy-neighbor", "freq-throttle"):
            start = schema.get_number(table, "start_seconds", entry_path, default=0.0)
            if start < 0:
                schema.fail(
                    f"{entry_path}.start_seconds",
                    f"expected a number >= 0, got {start!r}",
                )
            duration = schema.get_number(
                table, "duration_seconds", entry_path, default=None, positive=True
            )
        if fault_type in ("churn-spike", "noisy-neighbor"):
            count = schema.get_int(table, "count", entry_path, minimum=1)
        if fault_type == "noisy-neighbor":
            functions = schema.get_str_list(
                table, "functions", entry_path, default=[]
            )
        if fault_type == "freq-throttle":
            factor = schema.get_number(table, "factor", entry_path, positive=True)
            if factor > 1.0:
                schema.fail(
                    f"{entry_path}.factor",
                    f"expected a throttle factor in (0, 1], got {factor!r}",
                )
        if fault_type in ("meter-drop", "meter-dup"):
            probability = schema.get_number(table, "probability", entry_path)
            if not 0.0 <= probability <= 1.0:
                schema.fail(
                    f"{entry_path}.probability",
                    f"expected a probability in [0, 1], got {probability!r}",
                )
        faults.append(
            FaultSpec(
                type=fault_type,
                scenario=scenario,
                start_seconds=start,
                duration_seconds=duration,
                count=count,
                factor=factor,
                probability=probability,
                functions=schema.freeze_str(functions),
                seed=seed,
            )
        )
    return tuple(faults)


@dataclass(frozen=True)
class ScenarioDegradation:
    """One scenario's faulted outcome against its fault-free baseline."""

    scenario: str
    fault_types: Tuple[str, ...]
    baseline_completed: int
    faulted_completed: int
    baseline_ipc: float
    faulted_ipc: float
    injections: int
    throttled_machine_epochs: int
    meter_events: int
    meter_dropped: int
    meter_duplicated: int
    true_gb_seconds: float
    billed_gb_seconds: float

    @property
    def completed_delta_fraction(self) -> float:
        """Signed throughput change: ``(faulted - baseline) / baseline``."""
        if self.baseline_completed <= 0:
            return 0.0
        return (
            self.faulted_completed - self.baseline_completed
        ) / self.baseline_completed

    @property
    def ipc_delta_fraction(self) -> float:
        if self.baseline_ipc <= 0:
            return 0.0
        return (self.faulted_ipc - self.baseline_ipc) / self.baseline_ipc

    @property
    def billing_error_fraction(self) -> float:
        """Signed pricing-accuracy error: ``(billed - true) / true``."""
        if self.true_gb_seconds <= 0:
            return 0.0
        return (self.billed_gb_seconds - self.true_gb_seconds) / self.true_gb_seconds


@dataclass(frozen=True)
class DegradationReport:
    """Per-scenario degradation of a faulted sweep vs its clean baseline.

    Build with :meth:`build` from two :class:`FleetSweepResult` objects
    covering the *same grid* — the baseline being the identical scenarios
    with their faults stripped (what ``python -m repro sweep`` runs
    automatically for fault-carrying specs).  Only scenarios that declared
    faults appear as rows.
    """

    backend: str
    horizon_seconds: float
    rows: Tuple[ScenarioDegradation, ...]

    @classmethod
    def build(
        cls, baseline: FleetSweepResult, faulted: FleetSweepResult
    ) -> "DegradationReport":
        if len(baseline.scenarios) != len(faulted.scenarios):
            raise ValueError(
                f"baseline has {len(baseline.scenarios)} scenario(s), "
                f"faulted has {len(faulted.scenarios)}; the grids must match"
            )
        rows: List[ScenarioDegradation] = []
        for base, fault in zip(baseline.scenarios, faulted.scenarios):
            if base.name != fault.name:
                raise ValueError(
                    f"scenario order mismatch: {base.name!r} vs {fault.name!r}"
                )
            stats = fault.fault_stats
            if stats is None:
                continue
            types: List[str] = []
            if stats.spike_submissions:
                types.append("churn-spike")
            if stats.neighbor_submissions:
                types.append("noisy-neighbor")
            if stats.throttled_machine_epochs:
                types.append("freq-throttle")
            if stats.meter_dropped:
                types.append("meter-drop")
            if stats.meter_duplicated:
                types.append("meter-dup")
            fault_types: Tuple[str, ...] = tuple(types)
            billing = fault.billing
            rows.append(
                ScenarioDegradation(
                    scenario=fault.name,
                    fault_types=fault_types,
                    baseline_completed=base.completed,
                    faulted_completed=fault.completed,
                    baseline_ipc=base.ipc,
                    faulted_ipc=fault.ipc,
                    injections=stats.injections,
                    throttled_machine_epochs=stats.throttled_machine_epochs,
                    meter_events=stats.meter_events,
                    meter_dropped=stats.meter_dropped,
                    meter_duplicated=stats.meter_duplicated,
                    true_gb_seconds=0.0 if billing is None else billing.true_total,
                    billed_gb_seconds=0.0 if billing is None else billing.billed_total,
                )
            )
        return cls(
            backend=faulted.backend,
            horizon_seconds=faulted.horizon_seconds,
            rows=tuple(rows),
        )

    def render(self) -> str:
        """An aligned text table (see docs/chaos.md for how to read it)."""
        if not self.rows:
            return "Degradation report: no faulted scenarios"
        table_rows = [
            {
                "scenario": row.scenario,
                "faults": ",".join(row.fault_types) or "-",
                "completed": f"{row.baseline_completed}->{row.faulted_completed}",
                "d_completed%": 100.0 * row.completed_delta_fraction,
                "d_ipc%": 100.0 * row.ipc_delta_fraction,
                "injected": row.injections,
                "throttled": row.throttled_machine_epochs,
                "dropped": row.meter_dropped,
                "duped": row.meter_duplicated,
                "bill_err%": 100.0 * row.billing_error_fraction,
            }
            for row in self.rows
        ]
        return format_table(
            table_rows,
            columns=(
                "scenario",
                "faults",
                "completed",
                "d_completed%",
                "d_ipc%",
                "injected",
                "throttled",
                "dropped",
                "duped",
                "bill_err%",
            ),
            title=(
                f"Degradation report [{self.backend}] vs fault-free baseline, "
                f"{self.horizon_seconds:g}s horizon"
            ),
            float_format="{:+.2f}",
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (recorded into BENCH_engine.json run extras)."""
        return {
            "backend": self.backend,
            "horizon_seconds": self.horizon_seconds,
            "scenarios": [
                {
                    "scenario": row.scenario,
                    "faults": list(row.fault_types),
                    "baseline_completed": row.baseline_completed,
                    "faulted_completed": row.faulted_completed,
                    "completed_delta_fraction": row.completed_delta_fraction,
                    "ipc_delta_fraction": row.ipc_delta_fraction,
                    "injections": row.injections,
                    "throttled_machine_epochs": row.throttled_machine_epochs,
                    "meter_events": row.meter_events,
                    "meter_dropped": row.meter_dropped,
                    "meter_duplicated": row.meter_duplicated,
                    "true_gb_seconds": row.true_gb_seconds,
                    "billed_gb_seconds": row.billed_gb_seconds,
                    "billing_error_fraction": row.billing_error_fraction,
                }
                for row in self.rows
            ],
        }
