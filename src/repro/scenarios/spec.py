"""Declarative scenario specs: parse, validate, expand, compile.

A *scenario spec* is a small TOML (or JSON) document that describes a fleet
study — the sweep grid, the churn-traffic policy, and the engine settings —
as data instead of CLI flags.  The full format is documented with worked
examples in ``docs/scenarios.md``; the shape is::

    name = "colocation-ladder"
    description = "How throughput degrades as co-location deepens."

    [sweep]
    horizon_seconds = 0.5
    registry_scale = 0.05

    [grid]
    mixes = ["all", "hot-graph"]
    machines = [1, 2]
    colocations = [1, 5, 10]
    cores_per_machine = 8

    [traffic]
    policy = "round-robin"

    [mixes.hot-graph]
    functions = ["bfs-py", "pager-py", "mst-py"]
    weights = [3.0, 1.0, 1.0]

The lifecycle is ``load → parse/validate → expand → compile → run``:

* :func:`load_spec` / :func:`parse_spec_text` / :func:`parse_spec` read a
  document and validate it against the schema, raising
  :class:`~repro.scenarios.schema.SpecError` with the path of the offending
  field on any problem;
* :func:`expand_grid` turns the validated spec into the full cross product
  of :class:`~repro.platform.batch.FleetScenario` cells (mixes × machine
  counts × co-location levels), attaching the spec's
  :class:`~repro.workloads.synthetic.TrafficModel` to every cell;
* :func:`compile_spec` resolves everything that needs the hardware and
  workload registries (machine name, function abbreviations) and returns a
  :class:`CompiledSweep`, whose :meth:`CompiledSweep.run` executes the grid
  in-process or sharded across workers
  (:func:`repro.platform.batch.run_sharded`).

Named presets ship inside the package (``repro/scenarios/presets/*.toml``);
:func:`list_presets` enumerates them and :func:`load_preset` parses one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

try:  # Python 3.11+; JSON specs keep working on older interpreters.
    import tomllib
except ImportError:  # pragma: no cover - py<3.11
    tomllib = None

from repro.hardware.topology import CASCADE_LAKE_5218, MachineSpec, machine_by_name
from repro.platform.batch.shard import ShardedSweepResult, run_sharded
from repro.platform.batch.sweep import (
    NAMED_MIXES,
    FleetScenario,
    FleetSweep,
    resolve_mix,
)
from repro.platform.faults import FaultSpec, faults_for_scenario
from repro.scenarios import schema
from repro.scenarios.faults import parse_faults
from repro.scenarios.schema import SpecError
from repro.workloads.registry import FunctionRegistry, default_registry
from repro.workloads.synthetic import TrafficModel

#: Traffic policies a spec's ``[traffic]`` table may name.  ``weighted`` is
#: not listed: weights are attached to individual ``[mixes.*]`` definitions,
#: which implies the weighted policy for scenarios using that mix.
SPEC_TRAFFIC_POLICIES = ("uniform", "round-robin", "trace")

_TOP_LEVEL_KEYS = ("name", "description", "sweep", "grid", "traffic", "mixes", "faults")
_SWEEP_KEYS = (
    "horizon_seconds",
    "epoch_seconds",
    "registry_scale",
    "machine",
    "backend",
    "shards",
)
_GRID_KEYS = ("mixes", "machines", "colocations", "cores_per_machine", "seed")
_TRAFFIC_KEYS = ("policy", "trace")
_MIX_KEYS = ("functions", "weights")


@dataclass(frozen=True)
class MixDef:
    """A custom named mix: an explicit function pool, optionally weighted."""

    name: str
    functions: Tuple[str, ...]
    weights: Tuple[float, ...] = ()


@dataclass(frozen=True)
class ScenarioSpec:
    """A parsed, schema-valid scenario spec (registry not yet consulted).

    Field defaults match the ``python -m repro sweep`` flag defaults, so a
    spec only has to say what deviates.  Function abbreviations and the
    machine name are resolved later by :func:`compile_spec`.
    """

    name: str
    description: str = ""
    #: Grid axes: mix names (built-in, custom, or ``+``-joined functions).
    mixes: Tuple[str, ...] = ("all",)
    machines: Tuple[int, ...] = (1,)
    colocations: Tuple[int, ...] = (1,)
    cores_per_machine: Optional[int] = None
    seed: int = 2024
    #: Engine settings.
    horizon_seconds: float = 2.0
    epoch_seconds: float = 1e-3
    registry_scale: float = 0.1
    machine: str = CASCADE_LAKE_5218.name
    backend: str = "vector"
    #: Default shard count for :meth:`CompiledSweep.run` (CLI ``--shards``
    #: overrides).
    shards: int = 1
    #: Churn-traffic policy applied to every scenario.
    traffic_policy: str = "uniform"
    trace: Tuple[str, ...] = ()
    #: Custom ``[mixes.*]`` definitions, usable from :attr:`mixes`.
    mix_definitions: Tuple[MixDef, ...] = ()
    #: Declared ``[[faults]]``, applied to matching scenarios at expansion
    #: (see docs/chaos.md).  Empty = healthy fleet.
    faults: Tuple[FaultSpec, ...] = ()

    @property
    def grid_size(self) -> int:
        """Number of scenarios the spec expands to."""
        return len(self.mixes) * len(self.machines) * len(self.colocations)


def parse_spec(document: Mapping[str, Any], *, origin: str = "<spec>") -> ScenarioSpec:
    """Validate a decoded spec document and return the typed spec.

    ``origin`` (the file path, or ``<spec>`` for in-memory documents)
    prefixes every :class:`SpecError` message.
    """
    top = schema.as_table(document, origin)
    schema.check_unknown_keys(top, _TOP_LEVEL_KEYS, origin)
    name = schema.get_str(top, "name", origin)
    description = schema.get_str(top, "description", origin, default="")

    sweep = schema.as_table(top.get("sweep", {}), f"{origin}.sweep")
    schema.check_unknown_keys(sweep, _SWEEP_KEYS, f"{origin}.sweep")
    horizon = schema.get_number(
        sweep, "horizon_seconds", f"{origin}.sweep", default=2.0, positive=True
    )
    epoch = schema.get_number(
        sweep, "epoch_seconds", f"{origin}.sweep", default=1e-3, positive=True
    )
    scale = schema.get_number(
        sweep, "registry_scale", f"{origin}.sweep", default=0.1, positive=True
    )
    machine = schema.get_str(
        sweep, "machine", f"{origin}.sweep", default=CASCADE_LAKE_5218.name
    )
    backend = schema.get_str(
        sweep, "backend", f"{origin}.sweep", default="vector",
        choices=("vector", "scalar"),
    )
    shards = schema.get_int(sweep, "shards", f"{origin}.sweep", default=1, minimum=1)

    grid = schema.as_table(top.get("grid", {}), f"{origin}.grid")
    schema.check_unknown_keys(grid, _GRID_KEYS, f"{origin}.grid")
    mixes = schema.get_str_list(grid, "mixes", f"{origin}.grid", default=["all"])
    machines = schema.get_int_list(grid, "machines", f"{origin}.grid", default=[1])
    colocations = schema.get_int_list(
        grid, "colocations", f"{origin}.grid", default=[1]
    )
    cores = schema.get_int(
        grid, "cores_per_machine", f"{origin}.grid", default=None, minimum=1
    )
    seed = schema.get_int(grid, "seed", f"{origin}.grid", default=2024)

    traffic = schema.as_table(top.get("traffic", {}), f"{origin}.traffic")
    schema.check_unknown_keys(traffic, _TRAFFIC_KEYS, f"{origin}.traffic")
    policy = schema.get_str(
        traffic, "policy", f"{origin}.traffic", default="uniform",
        choices=SPEC_TRAFFIC_POLICIES,
    )
    trace = schema.get_str_list(traffic, "trace", f"{origin}.traffic", default=[])
    if policy == "trace" and not trace:
        schema.fail(f"{origin}.traffic", "'trace' policy requires a trace list")
    if policy != "trace" and trace:
        schema.fail(
            f"{origin}.traffic", f"a trace is only valid with policy = 'trace', not {policy!r}"
        )

    mix_definitions: List[MixDef] = []
    mixes_table = schema.as_table(top.get("mixes", {}), f"{origin}.mixes")
    for mix_name in mixes_table:
        path = f"{origin}.mixes.{mix_name}"
        if mix_name in NAMED_MIXES:
            schema.fail(path, f"cannot redefine the built-in mix {mix_name!r}")
        entry = schema.as_table(mixes_table[mix_name], path)
        schema.check_unknown_keys(entry, _MIX_KEYS, path)
        functions = schema.get_str_list(entry, "functions", path)
        weights = schema.get_number_list(entry, "weights", path, default=[])
        if weights:
            if len(weights) != len(functions):
                schema.fail(
                    path,
                    f"got {len(weights)} weights for {len(functions)} functions",
                )
            if not any(w > 0 for w in weights):
                schema.fail(path, "at least one weight must be positive")
            if policy != "uniform":
                schema.fail(
                    path,
                    f"weighted mixes require traffic.policy = 'uniform' "
                    f"(weights imply the draw policy), got {policy!r}",
                )
        mix_definitions.append(
            MixDef(
                name=mix_name,
                functions=schema.freeze_str(functions),
                weights=tuple(weights),
            )
        )
    defined = {d.name for d in mix_definitions}
    unused = sorted(defined - set(mixes))
    if unused:
        schema.fail(
            f"{origin}.mixes",
            f"defined but never used in grid.mixes: {', '.join(unused)}",
        )

    faults = parse_faults(top.get("faults", []), f"{origin}.faults")
    for position, fault in enumerate(faults):
        if fault.start_seconds >= horizon:
            schema.fail(
                f"{origin}.faults[{position}].start_seconds",
                f"fault starts at {fault.start_seconds:g}s but the sweep "
                f"horizon is {horizon:g}s",
            )

    return ScenarioSpec(
        name=name,
        description=description,
        mixes=schema.freeze_str(mixes),
        machines=tuple(machines),
        colocations=tuple(colocations),
        cores_per_machine=cores,
        seed=seed,
        horizon_seconds=horizon,
        epoch_seconds=epoch,
        registry_scale=scale,
        machine=machine,
        backend=backend,
        shards=shards,
        traffic_policy=policy,
        trace=schema.freeze_str(trace),
        mix_definitions=tuple(mix_definitions),
        faults=faults,
    )


def parse_spec_text(
    text: str, *, format: str = "toml", origin: str = "<spec>"
) -> ScenarioSpec:
    """Parse a spec from TOML or JSON source text."""
    if format == "toml":
        if tomllib is None:  # pragma: no cover - py<3.11
            raise SpecError(
                f"{origin}: TOML specs need Python 3.11+ (tomllib); "
                f"use a JSON spec instead"
            )
        try:
            document = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise SpecError(f"{origin}: invalid TOML: {error}") from None
    elif format == "json":
        try:
            document = json.loads(text)
        except ValueError as error:
            raise SpecError(f"{origin}: invalid JSON: {error}") from None
    else:
        raise SpecError(f"{origin}: unknown spec format {format!r} (toml or json)")
    return parse_spec(document, origin=origin)


def load_spec(path: "Path | str") -> ScenarioSpec:
    """Load a spec file; the format follows the suffix (.toml or .json)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in (".toml", ".json"):
        raise SpecError(
            f"{path}: unsupported spec suffix {suffix!r} (expected .toml or .json)"
        )
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise SpecError(f"{path}: cannot read spec: {error}") from None
    return parse_spec_text(text, format=suffix[1:], origin=str(path))


def _traffic_for(spec: ScenarioSpec, mix: str, defs: Mapping[str, MixDef]):
    """The TrafficModel one grid mix implies (None = default uniform)."""
    definition = defs.get(mix)
    try:
        if definition is not None:
            if definition.weights:
                return TrafficModel(
                    policy="weighted",
                    functions=definition.functions,
                    weights=definition.weights,
                )
            return TrafficModel(
                policy=spec.traffic_policy,
                functions=definition.functions,
                trace=spec.trace,
            )
        if spec.traffic_policy == "uniform":
            return None
        return TrafficModel(policy=spec.traffic_policy, trace=spec.trace)
    except ValueError as error:
        raise SpecError(f"{spec.name}: mix {mix!r}: {error}") from None


def expand_grid(spec: ScenarioSpec) -> List[FleetScenario]:
    """Expand the spec into its full scenario cross product.

    Returns ``spec.grid_size`` scenarios named ``{mix}-m{machines}-c{colo}``
    in deterministic (mix-major) order, every one carrying the spec's seed
    and traffic model.  Function names are *not* resolved here — that needs
    the registry and happens in :func:`compile_spec`.
    """
    defs = {d.name: d for d in spec.mix_definitions}
    scenarios: List[FleetScenario] = []
    for mix in spec.mixes:
        traffic = _traffic_for(spec, mix, defs)
        for machines in spec.machines:
            for colocation in spec.colocations:
                name = f"{mix}-m{machines}-c{colocation}"
                scenarios.append(
                    FleetScenario(
                        name=name,
                        mix=mix,
                        machines=machines,
                        colocation=colocation,
                        cores_per_machine=spec.cores_per_machine,
                        seed=spec.seed,
                        traffic=traffic,
                        faults=faults_for_scenario(spec.faults, name),
                    )
                )
    return scenarios


@dataclass(frozen=True)
class CompiledSweep:
    """A spec compiled against the hardware and workload registries.

    Holds the expanded scenario list, the resolved
    :class:`~repro.hardware.topology.MachineSpec`, and the registry the
    spec was validated against (``None`` = the default Table-1 registry);
    :meth:`sweep` builds the single-process
    :class:`~repro.platform.batch.FleetSweep` and :meth:`run` executes the
    grid, sharded when asked — both against that same registry.
    """

    spec: ScenarioSpec
    scenarios: Tuple[FleetScenario, ...]
    machine: MachineSpec
    registry: Optional[FunctionRegistry] = None

    @property
    def fleet_size(self) -> int:
        """Concurrent invocations across the whole grid."""
        return sum(s.fleet_size(self.machine) for s in self.scenarios)

    @property
    def has_faults(self) -> bool:
        """Whether any expanded scenario carries a declared fault."""
        return any(s.faults for s in self.scenarios)

    def without_faults(self) -> "CompiledSweep":
        """The same compiled grid with every fault stripped.

        This is the *baseline* the degradation report compares against:
        identical scenarios, seeds and traffic, healthy fleet.
        """
        stripped = tuple(replace(s, faults=()) for s in self.scenarios)
        return replace(self, scenarios=stripped)

    def sweep(self, *, meter: bool = False) -> FleetSweep:
        """The equivalent single-process :class:`FleetSweep`."""
        return FleetSweep(
            self.scenarios,
            machine=self.machine,
            horizon_seconds=self.spec.horizon_seconds,
            epoch_seconds=self.spec.epoch_seconds,
            registry=self.registry,
            registry_scale=self.spec.registry_scale,
            meter=meter,
        )

    def run(
        self,
        backend: Optional[str] = None,
        *,
        shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        meter: bool = False,
        metrics_queue: Optional[object] = None,
        metrics_interval: float = 0.5,
        metrics_label: str = "",
    ) -> ShardedSweepResult:
        """Execute the compiled grid, partitioned over ``shards`` workers.

        ``backend``/``shards`` default to the spec's ``[sweep]`` values.
        Results are independent of the shard count (see
        :func:`repro.platform.batch.run_sharded`).  ``metrics_queue`` (a
        multiprocessing queue) turns on live progress snapshots — see
        :mod:`repro.obs` and docs/observability.md.
        """
        return run_sharded(
            self.scenarios,
            shards=self.spec.shards if shards is None else shards,
            backend=backend or self.spec.backend,
            machine=self.machine,
            horizon_seconds=self.spec.horizon_seconds,
            epoch_seconds=self.spec.epoch_seconds,
            registry_scale=self.spec.registry_scale,
            registry=self.registry,
            max_workers=max_workers,
            meter=meter,
            metrics_queue=metrics_queue,
            metrics_interval=metrics_interval,
            metrics_label=metrics_label,
        )


def compile_spec(
    spec: ScenarioSpec, registry: Optional[FunctionRegistry] = None
) -> CompiledSweep:
    """Resolve the spec against the registries into a runnable grid.

    Everything the schema cannot check alone is checked here: the machine
    name, every function abbreviation in mixes and traces, and core counts
    against the machine's topology.  Raises :class:`SpecError` naming the
    spec and offending value on any failure.
    """
    try:
        machine = machine_by_name(spec.machine)
    except KeyError as error:
        raise SpecError(f"{spec.name}: sweep.machine: {error.args[0]}") from None
    scenarios = expand_grid(spec)
    validator = FleetSweep(
        scenarios,
        machine=machine,
        horizon_seconds=spec.horizon_seconds,
        epoch_seconds=spec.epoch_seconds,
        registry=registry or default_registry(),
        registry_scale=1.0,
    )
    try:
        validator.validate()
    except (ValueError, KeyError) as error:
        message = error.args[0] if error.args else error
        raise SpecError(f"{spec.name}: {message}") from None
    names = [s.name for s in scenarios]
    for position, fault in enumerate(spec.faults):
        if not any(fault.matches(name) for name in names):
            known = ", ".join(names)
            raise SpecError(
                f"{spec.name}: faults[{position}].scenario: pattern "
                f"{fault.scenario!r} matches no scenario; scenarios: {known}"
            )
        if fault.type == "noisy-neighbor" and fault.functions:
            try:
                resolve_mix("+".join(fault.functions), registry or default_registry())
            except ValueError as error:
                raise SpecError(
                    f"{spec.name}: faults[{position}].functions: {error}"
                ) from None
    return CompiledSweep(
        spec=spec, scenarios=tuple(scenarios), machine=machine, registry=registry
    )


# --------------------------------------------------------------------- #
# Named presets shipped with the package
# --------------------------------------------------------------------- #
def _presets_dir() -> Path:
    return Path(__file__).resolve().parent / "presets"


def list_presets() -> List[str]:
    """Names of the presets shipped under ``repro/scenarios/presets/``."""
    return sorted(path.stem for path in _presets_dir().glob("*.toml"))


def preset_path(name: str) -> Path:
    """Filesystem path of a named preset spec."""
    path = _presets_dir() / f"{name}.toml"
    if not path.is_file():
        known = ", ".join(list_presets()) or "<none>"
        raise SpecError(f"unknown preset {name!r}; available presets: {known}")
    return path


def load_preset(name: str) -> ScenarioSpec:
    """Parse a named preset into a :class:`ScenarioSpec`."""
    return load_spec(preset_path(name))


def load_spec_or_preset(target: "Path | str") -> ScenarioSpec:
    """Resolve ``target`` as a spec file path first, then as a preset name.

    This is what the CLI's ``--spec`` accepts: ``--spec studies/big.toml``
    or simply ``--spec smoke``.  Anything with a suffix, or naming an
    existing *file*, is treated as a path; a stray directory that happens
    to share a preset's name cannot shadow the preset.
    """
    path = Path(target)
    if path.suffix or path.is_file():
        return load_spec(path)
    return load_preset(str(target))


_SPEC_SCHEMA_DOC: Dict[str, Tuple[str, ...]] = {
    "top-level": _TOP_LEVEL_KEYS,
    "sweep": _SWEEP_KEYS,
    "grid": _GRID_KEYS,
    "traffic": _TRAFFIC_KEYS,
    "mixes.<name>": _MIX_KEYS,
    "faults[]": (
        "type (churn-spike|noisy-neighbor|freq-throttle|meter-drop|meter-dup)",
        "scenario",
        "start_seconds",
        "duration_seconds",
        "count",
        "factor",
        "probability",
        "functions",
        "seed",
    ),
}


def schema_summary() -> str:
    """One-line-per-table summary of the accepted spec keys (for --help)."""
    return "; ".join(
        f"[{table}] {', '.join(keys)}" for table, keys in _SPEC_SCHEMA_DOC.items()
    )
