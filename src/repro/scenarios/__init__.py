"""Declarative scenario specs for fleet-scale sweeps.

This package makes simulation scenarios first-class *data*: a TOML or JSON
spec file describes a whole study — grid axes (traffic mixes × machine
counts × co-location levels), seeded churn-traffic generators, and engine
settings — and compiles into the :class:`repro.platform.batch.FleetSweep`
jobs the batched backend executes, optionally sharded across worker
processes (``python -m repro sweep --spec my-study.toml --shards 4``).

Entry points, in lifecycle order:

* :func:`load_spec` / :func:`load_spec_or_preset` / :func:`parse_spec_text`
  — read and schema-validate a spec (:class:`SpecError` on any problem,
  with the path of the offending field);
* :func:`expand_grid` — the spec's full scenario cross product;
* :func:`compile_spec` — resolve machine and function names into a
  runnable :class:`CompiledSweep`;
* :func:`list_presets` / :func:`load_preset` — the named example specs
  shipped under ``repro/scenarios/presets/``.

The spec format is documented with worked examples in
``docs/scenarios.md``; the architecture of the execution path it feeds is
in ``docs/backends.md``.
"""

from repro.scenarios.faults import (
    DegradationReport,
    ScenarioDegradation,
    parse_faults,
)
from repro.scenarios.schema import SpecError
from repro.scenarios.spec import (
    SPEC_TRAFFIC_POLICIES,
    CompiledSweep,
    MixDef,
    ScenarioSpec,
    compile_spec,
    expand_grid,
    list_presets,
    load_preset,
    load_spec,
    load_spec_or_preset,
    parse_spec,
    parse_spec_text,
    preset_path,
    schema_summary,
)
from repro.scenarios.trace import TraceChunk, chunk_plan, partition_plan

__all__ = [
    "DegradationReport",
    "ScenarioDegradation",
    "parse_faults",
    "SpecError",
    "SPEC_TRAFFIC_POLICIES",
    "CompiledSweep",
    "MixDef",
    "ScenarioSpec",
    "compile_spec",
    "expand_grid",
    "list_presets",
    "load_preset",
    "load_spec",
    "load_spec_or_preset",
    "parse_spec",
    "parse_spec_text",
    "preset_path",
    "schema_summary",
    "TraceChunk",
    "chunk_plan",
    "partition_plan",
]
