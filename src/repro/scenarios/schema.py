"""Schema validation helpers for declarative scenario specs.

A deliberately small, dependency-free validation toolkit: every helper
extracts one typed field from a mapping and raises :class:`SpecError` with
the *path-qualified* field name (``grid.machines[1]: expected a positive
integer, got 0``) on any mismatch, so spec authors see exactly which line
of their TOML/JSON file to fix.  :mod:`repro.scenarios.spec` composes these
into the full scenario-spec schema.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence, Tuple


class SpecError(ValueError):
    """A scenario spec failed validation.

    The message always starts with the spec origin (file path or
    ``<spec>``) and the dotted path of the offending field.
    """


_REQUIRED = object()


def fail(path: str, message: str) -> None:
    raise SpecError(f"{path}: {message}")


def as_table(value: Any, path: str) -> Mapping[str, Any]:
    """The value must be a mapping (a TOML table / JSON object)."""
    if not isinstance(value, Mapping):
        fail(path, f"expected a table, got {type(value).__name__}")
    return value


def check_unknown_keys(
    table: Mapping[str, Any], known: Sequence[str], path: str
) -> None:
    """Reject misspelled keys instead of silently ignoring them."""
    unknown = sorted(set(table) - set(known))
    if unknown:
        fail(
            path,
            f"unknown key(s) {', '.join(repr(k) for k in unknown)}; "
            f"valid keys: {', '.join(known)}",
        )


def get_str(
    table: Mapping[str, Any],
    key: str,
    path: str,
    default: Any = _REQUIRED,
    choices: Optional[Sequence[str]] = None,
) -> Any:
    if key not in table:
        if default is _REQUIRED:
            fail(path, f"missing required key {key!r}")
        return default
    value = table[key]
    field = f"{path}.{key}"
    if not isinstance(value, str) or not value.strip():
        fail(field, f"expected a non-empty string, got {value!r}")
    if choices is not None and value not in choices:
        fail(field, f"got {value!r}; valid choices: {', '.join(choices)}")
    return value


def get_number(
    table: Mapping[str, Any],
    key: str,
    path: str,
    default: Any = _REQUIRED,
    *,
    positive: bool = False,
) -> Any:
    if key not in table:
        if default is _REQUIRED:
            fail(path, f"missing required key {key!r}")
        return default
    value = table[key]
    field = f"{path}.{key}"
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        fail(field, f"expected a number, got {value!r}")
    if positive and value <= 0:
        fail(field, f"expected a positive number, got {value!r}")
    return float(value)


def get_int(
    table: Mapping[str, Any],
    key: str,
    path: str,
    default: Any = _REQUIRED,
    *,
    minimum: Optional[int] = None,
) -> Any:
    if key not in table:
        if default is _REQUIRED:
            fail(path, f"missing required key {key!r}")
        return default
    value = table[key]
    field = f"{path}.{key}"
    if isinstance(value, bool) or not isinstance(value, int):
        fail(field, f"expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        fail(field, f"expected an integer >= {minimum}, got {value!r}")
    return value


def _get_list(table: Mapping[str, Any], key: str, path: str) -> List[Any]:
    value = table[key]
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        fail(f"{path}.{key}", f"expected a list, got {value!r}")
    if not value:
        fail(f"{path}.{key}", "expected a non-empty list")
    return list(value)


def get_str_list(
    table: Mapping[str, Any], key: str, path: str, default: Any = _REQUIRED
) -> Any:
    if key not in table:
        if default is _REQUIRED:
            fail(path, f"missing required key {key!r}")
        return default
    result: List[str] = []
    for position, item in enumerate(_get_list(table, key, path)):
        if not isinstance(item, str) or not item.strip():
            fail(f"{path}.{key}[{position}]", f"expected a non-empty string, got {item!r}")
        result.append(item)
    return result


def get_int_list(
    table: Mapping[str, Any],
    key: str,
    path: str,
    default: Any = _REQUIRED,
    *,
    minimum: int = 1,
) -> Any:
    if key not in table:
        if default is _REQUIRED:
            fail(path, f"missing required key {key!r}")
        return default
    result: List[int] = []
    for position, item in enumerate(_get_list(table, key, path)):
        if isinstance(item, bool) or not isinstance(item, int) or item < minimum:
            fail(
                f"{path}.{key}[{position}]",
                f"expected an integer >= {minimum}, got {item!r}",
            )
        result.append(item)
    return result


def get_number_list(
    table: Mapping[str, Any],
    key: str,
    path: str,
    default: Any = _REQUIRED,
    *,
    minimum: float = 0.0,
) -> Any:
    if key not in table:
        if default is _REQUIRED:
            fail(path, f"missing required key {key!r}")
        return default
    result: List[float] = []
    for position, item in enumerate(_get_list(table, key, path)):
        if isinstance(item, bool) or not isinstance(item, (int, float)) or item < minimum:
            fail(
                f"{path}.{key}[{position}]",
                f"expected a number >= {minimum:g}, got {item!r}",
            )
        result.append(float(item))
    return result


def freeze_str(values: Sequence[str]) -> Tuple[str, ...]:
    return tuple(str(v) for v in values)
