"""Chunking a compiled sweep's epoch trace for incremental replay.

The streaming service (:mod:`repro.serve`) ingests a sweep's invocation
trace chunk-by-chunk instead of running the whole horizon in one call.  A
chunk is purely a *pacing* unit: it names a contiguous run of epochs, and
the replay advances the engine exactly that many epochs before yielding
billing records and (optionally) a checkpoint.  Because the underlying
epoch sequence is identical for every partition, chunking never changes
results — the differential tests assert bit-exactness for arbitrary
partitions (see ``tests/test_props_stream.py``).

:func:`chunk_plan` builds the uniform partition the CLI uses;
:func:`partition_plan` builds an explicit (possibly ragged) partition from
chunk sizes, which is what the property tests drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class TraceChunk:
    """One contiguous run of epochs ``[start_epoch, end_epoch)``."""

    index: int
    start_epoch: int
    end_epoch: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("index must be >= 0")
        if self.start_epoch < 0:
            raise ValueError("start_epoch must be >= 0")
        if self.end_epoch <= self.start_epoch:
            raise ValueError("end_epoch must be > start_epoch")

    @property
    def epochs(self) -> int:
        """Number of epochs this chunk covers."""
        return self.end_epoch - self.start_epoch


def chunk_plan(total_epochs: int, chunk_epochs: int) -> List[TraceChunk]:
    """Partition ``total_epochs`` into uniform chunks of ``chunk_epochs``.

    The last chunk is shorter when the division is not exact.  Example::

        >>> from repro.scenarios.trace import chunk_plan
        >>> [c.epochs for c in chunk_plan(10, 4)]
        [4, 4, 2]
    """
    if total_epochs < 1:
        raise ValueError("total_epochs must be >= 1")
    if chunk_epochs < 1:
        raise ValueError("chunk_epochs must be >= 1")
    chunks: List[TraceChunk] = []
    start = 0
    while start < total_epochs:
        end = min(start + chunk_epochs, total_epochs)
        chunks.append(TraceChunk(index=len(chunks), start_epoch=start, end_epoch=end))
        start = end
    return chunks


def partition_plan(total_epochs: int, sizes: Sequence[int]) -> List[TraceChunk]:
    """Partition ``total_epochs`` into explicit chunk ``sizes``.

    The sizes must be positive and sum exactly to ``total_epochs`` — this
    is the shape the property tests generate to prove partition invariance.
    """
    if total_epochs < 1:
        raise ValueError("total_epochs must be >= 1")
    if not sizes:
        raise ValueError("at least one chunk size is required")
    chunks: List[TraceChunk] = []
    start = 0
    for size in sizes:
        if size < 1:
            raise ValueError(f"chunk sizes must be >= 1, got {size}")
        chunks.append(
            TraceChunk(index=len(chunks), start_epoch=start, end_epoch=start + size)
        )
        start += size
    if start != total_epochs:
        raise ValueError(
            f"chunk sizes sum to {start}, expected exactly {total_epochs}"
        )
    return chunks
