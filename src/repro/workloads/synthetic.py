"""Workload mixing helpers.

The paper's evaluation keeps a fixed number of co-running functions alive by
launching a randomly selected benchmark whenever one finishes.  The
:class:`WorkloadMixer` provides that random selection (deterministically,
from a seed) plus helpers for building the skewed mixes used by individual
experiments, such as the memory-intensive mix of the heavy-congestion study.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.workloads.function import FunctionSpec
from repro.workloads.registry import FunctionRegistry, default_registry


class WorkloadMixer:
    """Deterministic random selection of co-runner functions."""

    def __init__(
        self,
        pool: Sequence[FunctionSpec],
        seed: int = 2024,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not pool:
            raise ValueError("the workload pool must not be empty")
        if weights is not None and len(weights) != len(pool):
            raise ValueError("weights must match the pool length")
        if weights is not None and any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        self._pool = list(pool)
        self._weights = list(weights) if weights is not None else None
        self._rng = random.Random(seed)

    @property
    def pool(self) -> List[FunctionSpec]:
        return list(self._pool)

    def next(self) -> FunctionSpec:
        """Draw the next co-runner."""
        if self._weights is None:
            return self._rng.choice(self._pool)
        return self._rng.choices(self._pool, weights=self._weights, k=1)[0]

    def draw(self, count: int) -> List[FunctionSpec]:
        """Draw ``count`` co-runners with replacement."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.next() for _ in range(count)]


def memory_intensive_subset(
    registry: Optional[FunctionRegistry] = None,
) -> List[FunctionSpec]:
    """The eight functions with the highest L2 miss pressure (Figure 17 mix)."""
    registry = registry or default_registry()
    return registry.memory_intensive()


def round_robin_fill(
    pool: Sequence[FunctionSpec], count: int, seed: int = 2024
) -> List[FunctionSpec]:
    """Return ``count`` specs cycling through a shuffled copy of ``pool``.

    Used when an experiment wants every benchmark represented roughly
    equally among the co-runners rather than an independent random draw.
    """
    if not pool:
        raise ValueError("pool must not be empty")
    if count < 0:
        raise ValueError("count must be >= 0")
    rng = random.Random(seed)
    shuffled = list(pool)
    rng.shuffle(shuffled)
    result: List[FunctionSpec] = []
    index = 0
    while len(result) < count:
        result.append(shuffled[index % len(shuffled)])
        index += 1
    return result
