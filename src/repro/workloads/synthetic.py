"""Workload mixing helpers.

The paper's evaluation keeps a fixed number of co-running functions alive by
launching a randomly selected benchmark whenever one finishes.  The
:class:`WorkloadMixer` provides that random selection (deterministically,
from a seed) plus helpers for building the skewed mixes used by individual
experiments, such as the memory-intensive mix of the heavy-congestion study.

Scenario specs (:mod:`repro.scenarios`) describe churn traffic declaratively
with a :class:`TrafficModel` — a frozen, picklable value object naming a
draw *policy* (uniform, weighted, round-robin, or an explicit replayed
trace) that :meth:`TrafficModel.build_mixer` turns into a concrete mixer.
Every mixer draws deterministically from its seed, so two mixers built from
the same model and seed produce the same sequence — the property the
sharded sweep executor relies on for shard-count-independent results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.workloads.function import FunctionSpec
from repro.workloads.registry import FunctionRegistry, default_registry

#: Draw policies a :class:`TrafficModel` understands.
TRAFFIC_POLICIES = ("uniform", "weighted", "round-robin", "trace")


class WorkloadMixer:
    """Deterministic random selection of co-runner functions."""

    def __init__(
        self,
        pool: Sequence[FunctionSpec],
        seed: int = 2024,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not pool:
            raise ValueError("the workload pool must not be empty")
        if weights is not None and len(weights) != len(pool):
            raise ValueError("weights must match the pool length")
        if weights is not None and any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        self._pool = list(pool)
        self._weights = list(weights) if weights is not None else None
        self._rng = random.Random(seed)

    @property
    def pool(self) -> List[FunctionSpec]:
        return list(self._pool)

    def next(self) -> FunctionSpec:
        """Draw the next co-runner."""
        if self._weights is None:
            return self._rng.choice(self._pool)
        return self._rng.choices(self._pool, weights=self._weights, k=1)[0]

    def draw(self, count: int) -> List[FunctionSpec]:
        """Draw ``count`` co-runners with replacement."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.next() for _ in range(count)]


class SequenceMixer:
    """Cycles deterministically through a fixed sequence of function specs.

    The churn-driver counterpart of :class:`WorkloadMixer` for non-random
    policies: round-robin traffic shuffles the pool once (seeded) and then
    replays it forever; trace traffic replays an explicit, user-provided
    sequence.  ``next()`` is the only interface the sweep backends need.
    """

    def __init__(self, sequence: Sequence[FunctionSpec]) -> None:
        if not sequence:
            raise ValueError("the mixer sequence must not be empty")
        self._sequence = list(sequence)
        self._cursor = 0

    @property
    def sequence(self) -> List[FunctionSpec]:
        return list(self._sequence)

    def next(self) -> FunctionSpec:
        """Return the next spec in the cycle."""
        spec = self._sequence[self._cursor % len(self._sequence)]
        self._cursor += 1
        return spec

    def draw(self, count: int) -> List[FunctionSpec]:
        """Draw ``count`` specs, advancing the cycle."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.next() for _ in range(count)]


#: Anything :meth:`TrafficModel.build_mixer` can return: draws one
#: :class:`FunctionSpec` per ``next()`` call.
Mixer = Union[WorkloadMixer, SequenceMixer]


@dataclass(frozen=True)
class TrafficModel:
    """Declarative description of the churn traffic on one scenario.

    A frozen value object (hashable, picklable — it crosses process
    boundaries in sharded sweeps) that scenario specs attach to a
    :class:`repro.platform.batch.FleetScenario`.  Fields:

    ``policy``
        One of :data:`TRAFFIC_POLICIES`.  ``uniform`` draws independently
        and uniformly from the pool; ``weighted`` draws with the given
        per-function weights; ``round-robin`` cycles through a seeded
        shuffle of the pool; ``trace`` replays an explicit sequence of
        function abbreviations cyclically.
    ``functions``
        Optional explicit pool (function abbreviations).  When empty the
        scenario's ``mix`` string decides the pool.
    ``weights``
        Per-function draw weights, parallel to the resolved pool
        (``weighted`` policy only).
    ``trace``
        The abbreviation sequence to replay (``trace`` policy only); every
        entry must name a function in the pool.
    """

    policy: str = "uniform"
    functions: Tuple[str, ...] = ()
    weights: Tuple[float, ...] = ()
    trace: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.policy not in TRAFFIC_POLICIES:
            known = ", ".join(TRAFFIC_POLICIES)
            raise ValueError(
                f"unknown traffic policy {self.policy!r}; valid policies: {known}"
            )
        if self.policy == "weighted":
            if not self.weights:
                raise ValueError("'weighted' traffic requires weights")
            if any(w < 0 for w in self.weights):
                raise ValueError("traffic weights must be non-negative")
            if not any(w > 0 for w in self.weights):
                raise ValueError("at least one traffic weight must be positive")
        elif self.weights:
            raise ValueError(f"weights are only valid with the 'weighted' policy, not {self.policy!r}")
        if self.policy == "trace":
            if not self.trace:
                raise ValueError("'trace' traffic requires a non-empty trace")
        elif self.trace:
            raise ValueError(f"a trace is only valid with the 'trace' policy, not {self.policy!r}")
        if self.weights and self.functions and len(self.weights) != len(self.functions):
            raise ValueError(
                f"got {len(self.weights)} weights for {len(self.functions)} functions"
            )

    def build_mixer(self, pool: Sequence[FunctionSpec], seed: int) -> Mixer:
        """Instantiate the concrete mixer for one machine's churn stream.

        ``pool`` is the scenario's resolved function pool (already ordered);
        ``seed`` is the per-machine seed, so every machine of a scenario
        draws an independent but reproducible stream.
        """
        if not pool:
            raise ValueError("the traffic pool must not be empty")
        if self.policy == "uniform":
            return WorkloadMixer(pool, seed=seed)
        if self.policy == "weighted":
            if len(self.weights) != len(pool):
                raise ValueError(
                    f"got {len(self.weights)} weights for a pool of {len(pool)}"
                )
            return WorkloadMixer(pool, seed=seed, weights=self.weights)
        if self.policy == "round-robin":
            shuffled = list(pool)
            random.Random(seed).shuffle(shuffled)
            return SequenceMixer(shuffled)
        # trace: replay the abbreviation sequence against the pool.
        by_abbreviation = {spec.abbreviation: spec for spec in pool}
        resolved: List[FunctionSpec] = []
        for token in self.trace:
            if token not in by_abbreviation:
                known = ", ".join(sorted(by_abbreviation))
                raise ValueError(
                    f"trace entry {token!r} is not in the scenario pool; "
                    f"pool functions: {known}"
                )
            resolved.append(by_abbreviation[token])
        return SequenceMixer(resolved)


def memory_intensive_subset(
    registry: Optional[FunctionRegistry] = None,
) -> List[FunctionSpec]:
    """The eight functions with the highest L2 miss pressure (Figure 17 mix)."""
    registry = registry or default_registry()
    return registry.memory_intensive()


def round_robin_fill(
    pool: Sequence[FunctionSpec], count: int, seed: int = 2024
) -> List[FunctionSpec]:
    """Return ``count`` specs cycling through a shuffled copy of ``pool``.

    Used when an experiment wants every benchmark represented roughly
    equally among the co-runners rather than an independent random draw.
    """
    if not pool:
        raise ValueError("pool must not be empty")
    if count < 0:
        raise ValueError("count must be >= 0")
    rng = random.Random(seed)
    shuffled = list(pool)
    rng.shuffle(shuffled)
    result: List[FunctionSpec] = []
    index = 0
    while len(result) < count:
        result.append(shuffled[index % len(shuffled)])
        index += 1
    return result
