"""CT-Gen and MB-Gen: the congestion-calibration traffic generators.

The paper defines congestion levels with two multi-threaded generators
(Section 3, Figure 1):

``CT-Gen``
    Each thread streams through a buffer sized to miss the L2 but fit in the
    L3, so the generated traffic hammers the core-to-L3 path without
    consuming DRAM bandwidth.  Congestion created this way is "on-chip".

``MB-Gen``
    Each thread streams through a buffer far larger than the L3, so nearly
    every access misses the L3, evicting resident blocks and saturating
    memory bandwidth.  Its own L2 miss *rate* is lower than CT-Gen's because
    the threads stall on their own DRAM accesses — the self-imposed
    bottleneck the paper points out.

The stress level is simply the number of threads (1–31 on the 32-core
socket), each pinned to its own core.  In this reproduction every generator
thread is a :class:`FunctionSpec` flagged ``is_traffic_generator`` with an
effectively infinite body, so the platform engine schedules it like any
other workload but never bills or finishes it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.workloads.function import FunctionSpec
from repro.workloads.phases import ExecutionPhase, PhaseKind, ResourceProfile
from repro.workloads.runtimes import Language

#: Instruction budget for a generator thread.  Large enough that a generator
#: never completes within any experiment we run.
_GENERATOR_INSTRUCTIONS = 1e15


class GeneratorKind(enum.Enum):
    """Which shared-resource region the generator stresses."""

    CT = "ct-gen"
    MB = "mb-gen"


#: Per-thread resource profile of each generator.
_GENERATOR_PROFILES = {
    GeneratorKind.CT: ResourceProfile(
        cpi_base=0.30,
        l2_mpki=80.0,
        working_set_mb=0.6,
        solo_l3_hit_fraction=0.985,
        mlp=8.0,
    ),
    GeneratorKind.MB: ResourceProfile(
        cpi_base=0.30,
        l2_mpki=45.0,
        working_set_mb=26.0,
        solo_l3_hit_fraction=0.12,
        mlp=6.0,
    ),
}


@dataclass(frozen=True)
class TrafficGenerator:
    """A generator configuration: kind plus stress level (thread count)."""

    kind: GeneratorKind
    threads: int

    def __post_init__(self) -> None:
        if self.threads < 0:
            raise ValueError("threads must be >= 0")

    @property
    def stress_level(self) -> int:
        return self.threads

    @property
    def profile(self) -> ResourceProfile:
        return _GENERATOR_PROFILES[self.kind]

    def thread_specs(self) -> List[FunctionSpec]:
        """One continuous workload spec per generator thread."""
        specs: List[FunctionSpec] = []
        for index in range(self.threads):
            body = ExecutionPhase(
                name=f"{self.kind.value}-thread-{index}",
                kind=PhaseKind.BODY,
                instructions=_GENERATOR_INSTRUCTIONS,
                profile=self.profile,
            )
            specs.append(
                FunctionSpec(
                    name=f"{self.kind.value} thread {index}",
                    abbreviation=f"{self.kind.value}-{index}",
                    language=Language.GO,
                    suite="traffic-generator",
                    memory_mb=max(self.profile.working_set_mb, 1.0),
                    body_phases=(body,),
                    is_reference=False,
                    is_traffic_generator=True,
                )
            )
        return specs


def ct_gen(threads: int) -> TrafficGenerator:
    """CT-Gen at the given stress level (L2-miss / L3-hit traffic)."""
    return TrafficGenerator(kind=GeneratorKind.CT, threads=threads)


def mb_gen(threads: int) -> TrafficGenerator:
    """MB-Gen at the given stress level (L3-miss / DRAM-bandwidth traffic)."""
    return TrafficGenerator(kind=GeneratorKind.MB, threads=threads)


def generator(kind: GeneratorKind, threads: int) -> TrafficGenerator:
    """Construct a generator of either kind at a stress level."""
    return TrafficGenerator(kind=kind, threads=threads)


def stress_levels(maximum: int = 31, step: int = 1) -> Tuple[int, ...]:
    """The ladder of stress levels 1..maximum used to build the tables."""
    if maximum < 1:
        raise ValueError("maximum must be >= 1")
    if step < 1:
        raise ValueError("step must be >= 1")
    return tuple(range(1, maximum + 1, step))
