"""Execution phases and resource profiles.

A phase is the unit of workload description: a number of instructions
executed with a fixed resource profile.  The profile carries exactly the
quantities the hardware substrate consumes:

``cpi_base``
    Cycles per instruction retired when no off-core stall occurs — the
    "private" execution speed determined by the core pipeline and the L1/L2.
``l2_mpki``
    L2 misses per kilo-instruction, i.e. how often the phase leaves the
    private domain and touches the shared L3 / memory system.
``working_set_mb``
    The footprint competing for shared L3 capacity while the phase runs.
``solo_l3_hit_fraction``
    The fraction of those L2 misses that hit in the L3 when the function has
    the machine to itself.
``mlp``
    Average memory-level parallelism; the core-visible stall per miss is the
    miss latency divided by this factor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PhaseKind(enum.Enum):
    """Role of a phase within a function's execution."""

    STARTUP = "startup"
    BODY = "body"
    TEARDOWN = "teardown"


@dataclass(frozen=True)
class ResourceProfile:
    """Per-phase resource characteristics consumed by the contention model."""

    cpi_base: float
    l2_mpki: float
    working_set_mb: float
    solo_l3_hit_fraction: float
    mlp: float = 4.0

    def __post_init__(self) -> None:
        if self.cpi_base <= 0:
            raise ValueError("cpi_base must be positive")
        if self.l2_mpki < 0:
            raise ValueError("l2_mpki must be >= 0")
        if self.working_set_mb < 0:
            raise ValueError("working_set_mb must be >= 0")
        if not 0.0 <= self.solo_l3_hit_fraction <= 1.0:
            raise ValueError("solo_l3_hit_fraction must be in [0, 1]")
        if self.mlp <= 0:
            raise ValueError("mlp must be positive")

    def scaled(
        self,
        *,
        cpi_base: float | None = None,
        l2_mpki: float | None = None,
        working_set_mb: float | None = None,
        solo_l3_hit_fraction: float | None = None,
        mlp: float | None = None,
    ) -> "ResourceProfile":
        """Return a copy with selected fields replaced."""
        return ResourceProfile(
            cpi_base=self.cpi_base if cpi_base is None else cpi_base,
            l2_mpki=self.l2_mpki if l2_mpki is None else l2_mpki,
            working_set_mb=(
                self.working_set_mb if working_set_mb is None else working_set_mb
            ),
            solo_l3_hit_fraction=(
                self.solo_l3_hit_fraction
                if solo_l3_hit_fraction is None
                else solo_l3_hit_fraction
            ),
            mlp=self.mlp if mlp is None else mlp,
        )

    def solo_stall_cycles_per_instruction(
        self, l3_hit_latency_cycles: float, memory_latency_cycles: float
    ) -> float:
        """Shared-resource stall per instruction with unloaded latencies.

        Useful for quick analytic estimates and for tests that check the
        simulator against closed-form expectations.
        """
        per_miss = (
            self.solo_l3_hit_fraction * l3_hit_latency_cycles
            + (1.0 - self.solo_l3_hit_fraction) * memory_latency_cycles
        ) / self.mlp
        return (self.l2_mpki / 1000.0) * per_miss


@dataclass(frozen=True)
class ExecutionPhase:
    """A contiguous stretch of a function's execution with one profile."""

    name: str
    kind: PhaseKind
    instructions: float
    profile: ResourceProfile

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError("a phase must execute at least one instruction")

    def scaled(self, factor: float) -> "ExecutionPhase":
        """Return a copy whose instruction count is multiplied by ``factor``.

        Used to shrink workloads for quick test configurations without
        changing their resource characteristics.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return ExecutionPhase(
            name=self.name,
            kind=self.kind,
            instructions=self.instructions * factor,
            profile=self.profile,
        )
