"""The paper's Table 1: 27 serverless benchmarks across three runtimes.

Every entry models one benchmark as a single-profile body (plus the shared
language-runtime startup).  The profiles were chosen to reproduce the
paper's characterization:

* compute-bound functions (``float-py``, ``fib-py``) spend essentially all
  of their time on private resources (Figure 4: up to 99.96 % ``T_private``)
  and barely slow down under congestion;
* graph / disk / compression workloads (``pager-py``, ``mst-py``,
  ``bfs-py``, ``randDisk-py``, ``compre-py``) have large working sets and
  high L2 MPKI, so their ``T_shared`` inflates by multiples under pressure
  (Figure 3) and they see the largest end-to-end slowdowns (Figure 2);
* Node.js functions carry the heavier V8 startup and a garbage-collected
  heap, giving them a visibly larger shared-resource component than their
  Go counterparts (the paper singles out ``fib-nj`` as memory-intensive).

The 13 functions starred in Table 1 are marked ``is_reference=True``; the
remaining 14 are the test set priced in the evaluation figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.workloads.function import FunctionSpec
from repro.workloads.phases import ExecutionPhase, PhaseKind, ResourceProfile
from repro.workloads.runtimes import Language


@dataclass(frozen=True)
class _BenchmarkRow:
    """One row of the construction table below."""

    abbreviation: str
    name: str
    suite: str
    language: Language
    is_reference: bool
    memory_mb: float
    body_minstructions: float
    cpi_base: float
    l2_mpki: float
    working_set_mb: float
    solo_l3_hit_fraction: float
    mlp: float


# Columns: abbr, full name, suite, language, reference?, memory MB,
#          body Minstr, CPI, L2 MPKI, WS MB, solo L3 hit fraction, MLP.
_TABLE1: Tuple[_BenchmarkRow, ...] = (
    # --- SeBS (Python) -------------------------------------------------- #
    _BenchmarkRow("dyn-py", "Dynamic HTML", "sebs", Language.PYTHON, False, 256, 240, 0.55, 1.4, 12.0, 0.80, 4.0),
    _BenchmarkRow("thum-py", "Thumbnail", "sebs", Language.PYTHON, True, 512, 360, 0.60, 1.87, 22.0, 0.72, 5.0),
    _BenchmarkRow("compre-py", "Compression", "sebs", Language.PYTHON, False, 512, 520, 0.65, 2.18, 30.0, 0.70, 5.0),
    _BenchmarkRow("recogn-py", "Image Recognition", "sebs", Language.PYTHON, False, 1024, 900, 0.70, 1.25, 40.0, 0.75, 6.0),
    _BenchmarkRow("pager-py", "Graph Pagerank", "sebs", Language.PYTHON, False, 512, 600, 0.75, 5.2, 48.0, 0.62, 4.0),
    _BenchmarkRow("mst-py", "Graph MST", "sebs", Language.PYTHON, False, 384, 480, 0.70, 4.16, 36.0, 0.68, 4.0),
    _BenchmarkRow("bfs-py", "Graph BFS", "sebs", Language.PYTHON, True, 384, 440, 0.72, 4.68, 42.0, 0.65, 4.0),
    _BenchmarkRow("visual-py", "DNA Visualization", "sebs", Language.PYTHON, True, 512, 400, 0.60, 1.09, 16.0, 0.80, 4.0),
    # --- FunctionBench (Python) ----------------------------------------- #
    _BenchmarkRow("chame-py", "Chameleon", "functionbench", Language.PYTHON, False, 256, 320, 0.55, 0.94, 10.0, 0.84, 4.0),
    _BenchmarkRow("float-py", "Float Operations", "functionbench", Language.PYTHON, False, 128, 900, 0.45, 0.02, 0.5, 0.95, 2.0),
    _BenchmarkRow("gzip-py", "Gzip Compression", "functionbench", Language.PYTHON, True, 256, 440, 0.60, 1.56, 18.0, 0.78, 5.0),
    _BenchmarkRow("randDisk-py", "Random Disk IO", "functionbench", Language.PYTHON, True, 256, 300, 0.80, 5.72, 52.0, 0.55, 3.0),
    _BenchmarkRow("seqDisk-py", "Sequential Disk IO", "functionbench", Language.PYTHON, False, 256, 340, 0.65, 2.03, 26.0, 0.80, 7.0),
    # --- Other / AWS authorizer (Python) -------------------------------- #
    _BenchmarkRow("aes-py", "AES Encryption", "other", Language.PYTHON, False, 128, 280, 0.50, 1.72, 14.0, 0.76, 4.0),
    _BenchmarkRow("auth-py", "Authentication", "other", Language.PYTHON, True, 128, 160, 0.58, 1.87, 16.0, 0.74, 4.0),
    _BenchmarkRow("fib-py", "Fibonacci", "other", Language.PYTHON, True, 128, 400, 0.42, 0.12, 1.0, 0.90, 2.0),
    # --- Online Boutique / Other (Node.js) ------------------------------ #
    _BenchmarkRow("aes-nj", "AES Encryption", "other", Language.NODEJS, True, 256, 400, 0.50, 1.09, 12.0, 0.80, 4.0),
    _BenchmarkRow("auth-nj", "Authentication", "other", Language.NODEJS, False, 256, 225, 0.55, 1.25, 14.0, 0.78, 4.0),
    _BenchmarkRow("fib-nj", "Fibonacci", "other", Language.NODEJS, True, 256, 600, 0.50, 3.9, 34.0, 0.66, 4.0),
    _BenchmarkRow("cur-nj", "Currency Conversion", "online-boutique", Language.NODEJS, True, 256, 275, 0.55, 1.4, 16.0, 0.77, 4.0),
    _BenchmarkRow("pay-nj", "Payment", "online-boutique", Language.NODEJS, False, 256, 325, 0.58, 1.56, 18.0, 0.75, 4.0),
    # --- Hotel Reservation / Other (Go) ---------------------------------- #
    _BenchmarkRow("aes-go", "AES Encryption", "other", Language.GO, True, 128, 325, 0.42, 0.78, 8.0, 0.84, 5.0),
    _BenchmarkRow("auth-go", "Authentication", "other", Language.GO, False, 128, 175, 0.45, 1.09, 10.0, 0.80, 5.0),
    _BenchmarkRow("fib-go", "Fibonacci", "other", Language.GO, True, 128, 450, 0.38, 1.87, 24.0, 0.70, 5.0),
    _BenchmarkRow("geo-go", "Hotel Geo", "hotel-reservation", Language.GO, False, 256, 250, 0.50, 2.03, 22.0, 0.72, 5.0),
    _BenchmarkRow("profile-go", "Hotel Profile", "hotel-reservation", Language.GO, True, 256, 300, 0.52, 2.18, 26.0, 0.70, 5.0),
    _BenchmarkRow("rate-go", "Hotel Rate", "hotel-reservation", Language.GO, False, 256, 225, 0.48, 1.25, 12.0, 0.80, 5.0),
)

#: The eight functions the paper picks for the heavy-congestion experiment
#: (Figure 17) because they produce the most L2 misses among the benchmarks.
MEMORY_INTENSIVE_ABBREVIATIONS: Tuple[str, ...] = (
    "aes-py",
    "compre-py",
    "thum-py",
    "bfs-py",
    "auth-py",
    "fib-go",
    "geo-go",
    "profile-go",
)


def _spec_from_row(row: _BenchmarkRow) -> FunctionSpec:
    body = ExecutionPhase(
        name=f"{row.abbreviation}-body",
        kind=PhaseKind.BODY,
        instructions=row.body_minstructions * 1e6,
        profile=ResourceProfile(
            cpi_base=row.cpi_base,
            l2_mpki=row.l2_mpki,
            working_set_mb=row.working_set_mb,
            solo_l3_hit_fraction=row.solo_l3_hit_fraction,
            mlp=row.mlp,
        ),
    )
    return FunctionSpec(
        name=row.name,
        abbreviation=row.abbreviation,
        language=row.language,
        suite=row.suite,
        memory_mb=row.memory_mb,
        body_phases=(body,),
        is_reference=row.is_reference,
    )


class FunctionRegistry:
    """A collection of function specs keyed by abbreviation."""

    def __init__(self, specs: Iterable[FunctionSpec]) -> None:
        self._specs: Dict[str, FunctionSpec] = {}
        for spec in specs:
            if spec.abbreviation in self._specs:
                raise ValueError(f"duplicate function {spec.abbreviation!r}")
            self._specs[spec.abbreviation] = spec

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, abbreviation: str) -> bool:
        return abbreviation in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def get(self, abbreviation: str) -> FunctionSpec:
        try:
            return self._specs[abbreviation]
        except KeyError:
            known = ", ".join(sorted(self._specs))
            raise KeyError(
                f"unknown function {abbreviation!r}; known functions: {known}"
            ) from None

    def all(self) -> List[FunctionSpec]:
        return list(self._specs.values())

    def abbreviations(self) -> List[str]:
        return list(self._specs.keys())

    def reference_functions(self) -> List[FunctionSpec]:
        """The starred functions providers profile offline (13 in Table 1)."""
        return [spec for spec in self._specs.values() if spec.is_reference]

    def test_functions(self) -> List[FunctionSpec]:
        """The functions priced in the evaluation (the non-starred 14)."""
        return [spec for spec in self._specs.values() if not spec.is_reference]

    def by_language(self, language: Language) -> List[FunctionSpec]:
        return [spec for spec in self._specs.values() if spec.language == language]

    def by_suite(self, suite: str) -> List[FunctionSpec]:
        return [spec for spec in self._specs.values() if spec.suite == suite]

    def memory_intensive(self) -> List[FunctionSpec]:
        """The eight high-L2-miss functions used for heavy congestion."""
        return [self.get(abbr) for abbr in MEMORY_INTENSIVE_ABBREVIATIONS]

    def subset(self, abbreviations: Sequence[str]) -> "FunctionRegistry":
        return FunctionRegistry(self.get(abbr) for abbr in abbreviations)

    def scaled(self, factor: float) -> "FunctionRegistry":
        """Return a registry whose function bodies are scaled by ``factor``.

        Quick test configurations use this to shrink simulation time without
        changing any resource characteristic.
        """
        return FunctionRegistry(spec.scaled(factor) for spec in self._specs.values())


_DEFAULT_REGISTRY: Optional[FunctionRegistry] = None


def default_registry() -> FunctionRegistry:
    """The full Table-1 registry (built once per process)."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = FunctionRegistry(_spec_from_row(row) for row in _TABLE1)
    return _DEFAULT_REGISTRY


def reference_functions() -> List[FunctionSpec]:
    """Convenience accessor for the reference set of the default registry."""
    return default_registry().reference_functions()


def test_functions() -> List[FunctionSpec]:
    """Convenience accessor for the test set of the default registry."""
    return default_registry().test_functions()


def table1_rows() -> List[Mapping[str, object]]:
    """Render Table 1 as dictionaries (used by the Table-1 benchmark)."""
    rows: List[Mapping[str, object]] = []
    for spec in default_registry():
        rows.append(
            {
                "abbreviation": spec.abbreviation,
                "name": spec.name,
                "suite": spec.suite,
                "language": spec.language.value,
                "reference": spec.is_reference,
                "memory_mb": spec.memory_mb,
                "body_instructions": spec.body_instructions,
            }
        )
    return rows
