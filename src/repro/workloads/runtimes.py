"""Language runtime startup models.

The Litmus test hinges on one empirical observation (paper Figure 6): the
startup of a language runtime is a fixed routine — prepare the interpreter /
VM, load images and libraries, import modules, warm the JIT — so every
function written in the same language shows a nearly identical counter
signature during startup.  Because that routine contains bursts of memory
reads, its measured slowdown and the machine's L3 miss count during it act
as a probe of shared-resource congestion.

Each :class:`LanguageRuntime` models that routine as a small sequence of
startup phases whose profiles differ enough to produce the IPC fluctuation
visible in Figure 6.  The phase structure (relative lengths, miss rates) is
shared by all functions of that language; individual functions only add a
tiny amount of per-function import work, which is deliberately kept small so
startups remain comparable across functions of the same language.

Instruction budgets follow the paper: Python startups are measured over
their first ~45 million instructions (~19 ms at 2.8 GHz), Node.js startups
are several times longer (~97 ms timeline in Figure 6) and Go startups are
very short (~6 ms).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

from repro.workloads.phases import ExecutionPhase, PhaseKind, ResourceProfile


class Language(enum.Enum):
    """The three language runtimes used by the paper's benchmarks."""

    PYTHON = "python"
    NODEJS = "nodejs"
    GO = "go"

    @property
    def short(self) -> str:
        return {"python": "py", "nodejs": "nj", "go": "go"}[self.value]


@dataclass(frozen=True)
class LanguageRuntime:
    """Startup model and bookkeeping for one language runtime."""

    language: Language
    version: str
    startup_phases: tuple[ExecutionPhase, ...]
    #: Baseline sandbox memory attributed to the runtime itself, in MB.
    runtime_memory_mb: float

    def __post_init__(self) -> None:
        if not self.startup_phases:
            raise ValueError("a runtime needs at least one startup phase")
        for phase in self.startup_phases:
            if phase.kind is not PhaseKind.STARTUP:
                raise ValueError(
                    f"runtime startup phase {phase.name!r} must have kind STARTUP"
                )

    @property
    def startup_instructions(self) -> float:
        """Total instructions executed by the startup routine."""
        return sum(phase.instructions for phase in self.startup_phases)

    def startup_for(self, scale: float = 1.0) -> List[ExecutionPhase]:
        """Return a copy of the startup phases, optionally scaled in length."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        if scale == 1.0:
            return list(self.startup_phases)
        return [phase.scaled(scale) for phase in self.startup_phases]


def _python_runtime() -> LanguageRuntime:
    phases = (
        ExecutionPhase(
            name="py-interpreter-init",
            kind=PhaseKind.STARTUP,
            instructions=9e6,
            profile=ResourceProfile(
                cpi_base=0.55,
                l2_mpki=2.5,
                working_set_mb=6.0,
                solo_l3_hit_fraction=0.88,
                mlp=4.0,
            ),
        ),
        ExecutionPhase(
            name="py-module-import",
            kind=PhaseKind.STARTUP,
            instructions=22e6,
            profile=ResourceProfile(
                cpi_base=0.62,
                l2_mpki=6.0,
                working_set_mb=18.0,
                solo_l3_hit_fraction=0.72,
                mlp=4.5,
            ),
        ),
        ExecutionPhase(
            name="py-bytecode-compile",
            kind=PhaseKind.STARTUP,
            instructions=14e6,
            profile=ResourceProfile(
                cpi_base=0.50,
                l2_mpki=3.0,
                working_set_mb=10.0,
                solo_l3_hit_fraction=0.85,
                mlp=4.0,
            ),
        ),
    )
    return LanguageRuntime(
        language=Language.PYTHON,
        version="3.10.6",
        startup_phases=phases,
        runtime_memory_mb=48.0,
    )


def _nodejs_runtime() -> LanguageRuntime:
    phases = (
        ExecutionPhase(
            name="nj-v8-init",
            kind=PhaseKind.STARTUP,
            instructions=45e6,
            profile=ResourceProfile(
                cpi_base=0.48,
                l2_mpki=2.0,
                working_set_mb=8.0,
                solo_l3_hit_fraction=0.9,
                mlp=4.0,
            ),
        ),
        ExecutionPhase(
            name="nj-snapshot-load",
            kind=PhaseKind.STARTUP,
            instructions=70e6,
            profile=ResourceProfile(
                cpi_base=0.6,
                l2_mpki=7.0,
                working_set_mb=30.0,
                solo_l3_hit_fraction=0.68,
                mlp=5.0,
            ),
        ),
        ExecutionPhase(
            name="nj-module-resolution",
            kind=PhaseKind.STARTUP,
            instructions=60e6,
            profile=ResourceProfile(
                cpi_base=0.55,
                l2_mpki=4.5,
                working_set_mb=22.0,
                solo_l3_hit_fraction=0.78,
                mlp=4.5,
            ),
        ),
        ExecutionPhase(
            name="nj-jit-warmup",
            kind=PhaseKind.STARTUP,
            instructions=40e6,
            profile=ResourceProfile(
                cpi_base=0.45,
                l2_mpki=2.5,
                working_set_mb=14.0,
                solo_l3_hit_fraction=0.86,
                mlp=4.0,
            ),
        ),
    )
    return LanguageRuntime(
        language=Language.NODEJS,
        version="12.22.9",
        startup_phases=phases,
        runtime_memory_mb=96.0,
    )


def _go_runtime() -> LanguageRuntime:
    phases = (
        ExecutionPhase(
            name="go-runtime-init",
            kind=PhaseKind.STARTUP,
            instructions=7e6,
            profile=ResourceProfile(
                cpi_base=0.42,
                l2_mpki=3.0,
                working_set_mb=5.0,
                solo_l3_hit_fraction=0.85,
                mlp=4.5,
            ),
        ),
        ExecutionPhase(
            name="go-binary-load",
            kind=PhaseKind.STARTUP,
            instructions=9e6,
            profile=ResourceProfile(
                cpi_base=0.5,
                l2_mpki=5.0,
                working_set_mb=9.0,
                solo_l3_hit_fraction=0.76,
                mlp=5.0,
            ),
        ),
    )
    return LanguageRuntime(
        language=Language.GO,
        version="1.19.2",
        startup_phases=phases,
        runtime_memory_mb=24.0,
    )


_RUNTIMES = {
    Language.PYTHON: _python_runtime(),
    Language.NODEJS: _nodejs_runtime(),
    Language.GO: _go_runtime(),
}


def runtime_for(language: Language) -> LanguageRuntime:
    """Return the runtime model for ``language``."""
    return _RUNTIMES[language]


def all_runtimes() -> Sequence[LanguageRuntime]:
    """All three runtime models, in a stable order."""
    return tuple(_RUNTIMES[lang] for lang in Language)
