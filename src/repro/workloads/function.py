"""Serverless function specifications and execution progress tracking.

A :class:`FunctionSpec` is a static description of a serverless function:
its identity (name, suite, language), its sandbox memory size, and its
execution phases.  The phases are the language runtime's startup phases
followed by the function's body phases, so the first part of every
invocation is the Litmus-probe window.

A :class:`PhaseCursor` tracks an in-flight invocation's progress through the
phase list; the platform engine advances it by instruction counts and asks
it for the current resource profile each epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence, Tuple

from repro.workloads.phases import ExecutionPhase, PhaseKind, ResourceProfile
from repro.workloads.runtimes import Language, LanguageRuntime, runtime_for


@dataclass(frozen=True)
class FunctionSpec:
    """Static description of one serverless function."""

    name: str
    abbreviation: str
    language: Language
    suite: str
    memory_mb: float
    body_phases: Tuple[ExecutionPhase, ...]
    is_reference: bool = False
    is_traffic_generator: bool = False
    startup_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if not self.body_phases and not self.is_traffic_generator:
            raise ValueError(f"function {self.name!r} needs at least one body phase")
        for phase in self.body_phases:
            if phase.kind is PhaseKind.STARTUP:
                raise ValueError(
                    f"body phase {phase.name!r} of {self.name!r} must not be a "
                    "STARTUP phase; startup phases come from the language runtime"
                )
        if self.startup_scale <= 0:
            raise ValueError("startup_scale must be positive")

    @property
    def runtime(self) -> LanguageRuntime:
        return runtime_for(self.language)

    # The phase list and its instruction totals are immutable once the spec
    # is built but sit on the engine's per-epoch hot path, so they are
    # computed once per instance (``cached_property`` stores into the
    # instance ``__dict__``, which works on frozen dataclasses and does not
    # participate in equality or hashing).
    @cached_property
    def phases(self) -> Tuple[ExecutionPhase, ...]:
        """Startup phases followed by body phases."""
        if self.is_traffic_generator:
            return self.body_phases
        startup = tuple(self.runtime.startup_for(self.startup_scale))
        return startup + self.body_phases

    @cached_property
    def startup_instructions(self) -> float:
        """Instructions executed before the function body begins."""
        if self.is_traffic_generator:
            return 0.0
        return sum(
            phase.instructions
            for phase in self.phases
            if phase.kind is PhaseKind.STARTUP
        )

    @cached_property
    def body_instructions(self) -> float:
        return sum(phase.instructions for phase in self.body_phases)

    @cached_property
    def total_instructions(self) -> float:
        return sum(phase.instructions for phase in self.phases)

    @property
    def memory_gb(self) -> float:
        return self.memory_mb / 1024.0

    def scaled(self, factor: float) -> "FunctionSpec":
        """Return a copy with body phases scaled in length by ``factor``.

        Startup phases are never scaled — they are the probe window and the
        experiments rely on their instruction budget being fixed per
        language.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return FunctionSpec(
            name=self.name,
            abbreviation=self.abbreviation,
            language=self.language,
            suite=self.suite,
            memory_mb=self.memory_mb,
            body_phases=tuple(phase.scaled(factor) for phase in self.body_phases),
            is_reference=self.is_reference,
            is_traffic_generator=self.is_traffic_generator,
            startup_scale=self.startup_scale,
        )


class PhaseCursor:
    """Tracks an invocation's progress through its function's phases."""

    def __init__(self, spec: FunctionSpec) -> None:
        self._spec = spec
        self._phases: Sequence[ExecutionPhase] = spec.phases
        self._phase_count = len(self._phases)
        self._total_instructions = spec.total_instructions
        self._startup_instructions = spec.startup_instructions
        self._phase_index = 0
        self._instructions_into_phase = 0.0
        self._instructions_retired = 0.0

    @property
    def spec(self) -> FunctionSpec:
        return self._spec

    @property
    def finished(self) -> bool:
        return self._phase_index >= self._phase_count

    @property
    def phase_index(self) -> int:
        """Index of the current phase (== phase count once finished)."""
        return self._phase_index

    @property
    def instructions_retired(self) -> float:
        return self._instructions_retired

    @property
    def instructions_remaining(self) -> float:
        return max(self._total_instructions - self._instructions_retired, 0.0)

    @property
    def current_phase(self) -> Optional[ExecutionPhase]:
        if self.finished:
            return None
        return self._phases[self._phase_index]

    @property
    def current_profile(self) -> Optional[ResourceProfile]:
        phase = self.current_phase
        return None if phase is None else phase.profile

    @property
    def in_startup(self) -> bool:
        """True while the invocation is still inside the probe window."""
        phase = self.current_phase
        return phase is not None and phase.kind is PhaseKind.STARTUP

    @property
    def startup_complete(self) -> bool:
        """True once every STARTUP phase has fully retired."""
        if self._spec.is_traffic_generator:
            return True
        return self._instructions_retired >= self._startup_instructions

    def phase_instructions_remaining(self) -> float:
        """Instructions left in the current phase (0 when finished)."""
        phase = self.current_phase
        if phase is None:
            return 0.0
        return phase.instructions - self._instructions_into_phase

    def span_snapshot(self) -> Tuple[float, float]:
        """The two progress accumulators, for the engine's skip-ahead path.

        Returns ``(instructions_into_phase, instructions_retired)``.  The
        fast-path engine advances these as local floats (replicating the
        exact sequence of additions :meth:`advance` would have performed)
        and writes them back with :meth:`span_restore`.
        """
        return self._instructions_into_phase, self._instructions_retired

    def span_restore(self, instructions_into_phase: float, instructions_retired: float) -> None:
        """Write back accumulators advanced externally by the skip-ahead path.

        The caller must guarantee the restored position is still strictly
        inside the current phase — skip-ahead spans never cross phase
        boundaries, so no boundary bookkeeping happens here.
        """
        self._instructions_into_phase = instructions_into_phase
        self._instructions_retired = instructions_retired

    def advance(self, instructions: float) -> float:
        """Retire up to ``instructions`` within the *current* phase.

        Returns the number of instructions actually retired (bounded by the
        end of the current phase); the caller loops if it wants to spend a
        larger budget across phase boundaries.
        """
        if instructions < 0:
            raise ValueError("instructions must be >= 0")
        if self.finished:
            return 0.0
        phase = self._phases[self._phase_index]
        available = phase.instructions - self._instructions_into_phase
        retired = min(instructions, available)
        self._instructions_into_phase += retired
        self._instructions_retired += retired
        if self._instructions_into_phase >= phase.instructions - 1e-9:
            self._phase_index += 1
            self._instructions_into_phase = 0.0
        return retired
