"""Workload models: serverless functions, language runtimes, traffic generators.

Serverless functions are modeled as sequences of execution phases.  Every
function of a given language starts with that language runtime's *startup
phases* (interpreter/VM bring-up, module import, JIT warm-up) followed by
function-specific *body phases*.  Each phase carries a resource profile —
base CPI, L2 misses per kilo-instruction, cache footprint, L3 hit fraction
when running alone, and memory-level parallelism — which is everything the
hardware contention model needs to advance the function under congestion.

The registry reconstructs the paper's Table 1: 27 functions drawn from SeBS,
FunctionBench, DeathStarBench Hotel Reservation, Online Boutique and the AWS
authorizer samples, written in Python, Node.js and Go, with the 13 starred
functions marked as the provider's reference set.

CT-Gen and MB-Gen, the multi-threaded traffic generators used to define
congestion levels, are modeled as continuous workloads whose threads either
miss L2 but hit L3 (CT-Gen) or miss L3 and burn memory bandwidth (MB-Gen).
"""

from repro.workloads.phases import ExecutionPhase, PhaseKind, ResourceProfile
from repro.workloads.runtimes import Language, LanguageRuntime, runtime_for
from repro.workloads.function import FunctionSpec, PhaseCursor
from repro.workloads.registry import (
    FunctionRegistry,
    default_registry,
    reference_functions,
    test_functions,
)
from repro.workloads.traffic import (
    GeneratorKind,
    TrafficGenerator,
    ct_gen,
    mb_gen,
    generator,
)
from repro.workloads.synthetic import WorkloadMixer, memory_intensive_subset

__all__ = [
    "ExecutionPhase",
    "PhaseKind",
    "ResourceProfile",
    "Language",
    "LanguageRuntime",
    "runtime_for",
    "FunctionSpec",
    "PhaseCursor",
    "FunctionRegistry",
    "default_registry",
    "reference_functions",
    "test_functions",
    "GeneratorKind",
    "TrafficGenerator",
    "ct_gen",
    "mb_gen",
    "generator",
    "WorkloadMixer",
    "memory_intensive_subset",
]
