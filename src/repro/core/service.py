"""A provider-facing facade: deploy Litmus pricing on a platform.

The lower-level modules expose every moving part (calibrator, estimator,
pricing engine, oracle).  :class:`LitmusBillingService` bundles them into the
object a platform operator would actually integrate:

* construct it from a calibration result (fresh or loaded from disk),
* feed it completed invocations as they finish,
* read back per-invocation billing records and per-tenant/per-function
  summaries comparing the Litmus charge against the commercial charge.

The service never needs the tenant functions' solo profiles — that is the
whole point of Litmus — but it can optionally be handed a
:class:`repro.platform.oracle.SoloOracle` so reports also show the ideal
price for evaluation purposes (as the paper's figures do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.stats import geometric_mean
from repro.core.calibration import CalibrationResult
from repro.core.estimator import CongestionEstimator
from repro.core.pricing import IdealPricing, LitmusPricingEngine, PriceQuote
from repro.core.sharing import Method1Adjustment
from repro.platform.invoker import Invocation
from repro.platform.oracle import SoloOracle


@dataclass(frozen=True)
class BillingRecord:
    """One invocation's bill."""

    invocation_id: int
    function: str
    tenant: str
    memory_gb: float
    occupied_seconds: float
    commercial_price: float
    litmus_price: float
    ideal_price: Optional[float]
    estimated_private_slowdown: float
    estimated_shared_slowdown: float

    @property
    def discount(self) -> float:
        if self.commercial_price <= 0:
            return 0.0
        return 1.0 - self.litmus_price / self.commercial_price

    @property
    def refund(self) -> float:
        """Absolute amount returned to the tenant versus commercial pricing."""
        return self.commercial_price - self.litmus_price


@dataclass(frozen=True)
class BillingSummary:
    """Aggregate view over a set of billing records."""

    records: int
    commercial_total: float
    litmus_total: float
    ideal_total: Optional[float]

    @property
    def average_discount(self) -> float:
        if self.commercial_total <= 0:
            return 0.0
        return 1.0 - self.litmus_total / self.commercial_total

    @property
    def average_ideal_discount(self) -> Optional[float]:
        if self.ideal_total is None or self.commercial_total <= 0:
            return None
        return 1.0 - self.ideal_total / self.commercial_total


class LitmusBillingService:
    """Prices completed invocations and keeps the billing ledger."""

    def __init__(
        self,
        calibration: CalibrationResult,
        *,
        base_rate_per_gb_second: float = 1.0,
        method1: Optional[Method1Adjustment] = None,
        oracle: Optional[SoloOracle] = None,
    ) -> None:
        self._calibration = calibration
        self._pricer = LitmusPricingEngine(
            CongestionEstimator(calibration),
            base_rate_per_gb_second=base_rate_per_gb_second,
            method1=method1,
        )
        self._ideal = IdealPricing(base_rate_per_gb_second)
        self._oracle = oracle
        self._records: List[BillingRecord] = []

    # ------------------------------------------------------------------ #
    # Billing
    # ------------------------------------------------------------------ #
    @property
    def calibration(self) -> CalibrationResult:
        return self._calibration

    @property
    def records(self) -> List[BillingRecord]:
        return list(self._records)

    def bill(self, invocation: Invocation, tenant: str = "default") -> BillingRecord:
        """Price one completed invocation and append it to the ledger."""
        quote: PriceQuote = self._pricer.quote(invocation)
        ideal_price: Optional[float] = None
        if self._oracle is not None:
            solo = self._oracle.profile(invocation.spec)
            ideal_price = self._ideal.price(invocation.spec.memory_gb, solo).total
        record = BillingRecord(
            invocation_id=invocation.invocation_id,
            function=invocation.spec.abbreviation,
            tenant=tenant,
            memory_gb=invocation.spec.memory_gb,
            occupied_seconds=quote.components.t_total_seconds,
            commercial_price=quote.commercial.total,
            litmus_price=quote.litmus.total,
            ideal_price=ideal_price,
            estimated_private_slowdown=quote.estimate.private_slowdown,
            estimated_shared_slowdown=quote.estimate.shared_slowdown,
        )
        self._records.append(record)
        return record

    def bill_completed(
        self, invocations: List[Invocation], tenant: str = "default"
    ) -> List[BillingRecord]:
        """Bill every completed invocation in a batch."""
        return [self.bill(invocation, tenant=tenant) for invocation in invocations]

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self, tenant: Optional[str] = None) -> BillingSummary:
        """Aggregate the ledger, optionally restricted to one tenant."""
        records = [r for r in self._records if tenant is None or r.tenant == tenant]
        ideal_values = [r.ideal_price for r in records if r.ideal_price is not None]
        ideal_total = sum(ideal_values) if len(ideal_values) == len(records) and records else None
        return BillingSummary(
            records=len(records),
            commercial_total=sum(r.commercial_price for r in records),
            litmus_total=sum(r.litmus_price for r in records),
            ideal_total=ideal_total,
        )

    def summary_by_function(self) -> Dict[str, BillingSummary]:
        """Per-function aggregates over the whole ledger."""
        grouped: Dict[str, List[BillingRecord]] = {}
        for record in self._records:
            grouped.setdefault(record.function, []).append(record)
        result: Dict[str, BillingSummary] = {}
        for function, records in grouped.items():
            ideal_values = [r.ideal_price for r in records if r.ideal_price is not None]
            ideal_total = (
                sum(ideal_values) if len(ideal_values) == len(records) else None
            )
            result[function] = BillingSummary(
                records=len(records),
                commercial_total=sum(r.commercial_price for r in records),
                litmus_total=sum(r.litmus_price for r in records),
                ideal_total=ideal_total,
            )
        return result

    def average_normalized_price(self) -> float:
        """Geometric mean of litmus/commercial across the ledger (<= 1)."""
        if not self._records:
            raise ValueError("no invocations have been billed yet")
        return geometric_mean(
            record.litmus_price / record.commercial_price
            for record in self._records
            if record.commercial_price > 0
        )
