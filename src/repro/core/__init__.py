"""Litmus pricing — the paper's contribution.

The flow mirrors Sections 5 and 6 of the paper:

1. **Calibrate** (provider, offline): run Litmus-probe startups and the
   reference functions against CT-Gen and MB-Gen at increasing stress
   levels, recording startup slowdowns and L3-miss counts in the
   *congestion table* and reference-function slowdowns in the *performance
   table* (:mod:`repro.core.calibration`, :mod:`repro.core.tables`).
2. **Model**: fit per-language, per-generator regression models from probe
   slowdowns to reference slowdowns, and exponential models from probe
   slowdowns to machine L3 misses (:mod:`repro.core.regression`,
   :mod:`repro.core.estimator`).
3. **Probe** (per invocation, online): measure the startup window of each
   function — its private/shared slowdown against the solo startup baseline
   and the machine-wide L3 misses — at zero extra cost
   (:mod:`repro.core.litmus_test`).
4. **Price**: blend the two generators' predictions by the L3-miss position
   (logarithmic interpolation), derive per-component charging rates
   ``R = R_base * T_solo / T_congestion`` and charge
   ``P = R_private * T_private + R_shared * T_shared``
   (:mod:`repro.core.pricing`).  Commercial (no discount), ideal
   (oracle slowdown) and POPPA (shutter sampling) pricing are provided as
   baselines, and :mod:`repro.core.sharing` adds the Method 1 / Method 2
   adaptations for temporally shared CPUs.
"""

from repro.core.regression import LinearRegressionModel, ExponentialRegressionModel
from repro.core.litmus_test import LitmusObservation, LitmusProbe, probe_spec
from repro.core.tables import (
    CongestionObservation,
    CongestionTable,
    PerformanceObservation,
    PerformanceTable,
)
from repro.core.calibration import (
    CalibrationResult,
    CalibrationScenario,
    Calibrator,
    calibrate_cached,
)
from repro.core.estimator import CongestionEstimate, CongestionEstimator
from repro.core.pricing import (
    CommercialPricing,
    IdealPricing,
    LitmusPricingEngine,
    PriceQuote,
    PricingComponents,
    charging_rate,
)
from repro.core.sharing import Method1Adjustment, measure_switching_curve
from repro.core.poppa import PoppaPricing, PoppaQuote
from repro.core.persistence import (
    calibration_from_dict,
    calibration_to_dict,
    load_calibration,
    save_calibration,
)
from repro.core.service import BillingRecord, BillingSummary, LitmusBillingService

__all__ = [
    "LinearRegressionModel",
    "ExponentialRegressionModel",
    "LitmusObservation",
    "LitmusProbe",
    "probe_spec",
    "CongestionObservation",
    "CongestionTable",
    "PerformanceObservation",
    "PerformanceTable",
    "CalibrationResult",
    "CalibrationScenario",
    "Calibrator",
    "calibrate_cached",
    "CongestionEstimate",
    "CongestionEstimator",
    "CommercialPricing",
    "IdealPricing",
    "LitmusPricingEngine",
    "PriceQuote",
    "PricingComponents",
    "charging_rate",
    "Method1Adjustment",
    "measure_switching_curve",
    "PoppaPricing",
    "PoppaQuote",
    "calibration_from_dict",
    "calibration_to_dict",
    "load_calibration",
    "save_calibration",
    "BillingRecord",
    "BillingSummary",
    "LitmusBillingService",
]
