"""Pricing engines: Litmus, commercial (no discount) and ideal (oracle).

The paper's pricing equations (Section 5.2):

    P = P_private + P_shared                                  (Eq. 1)
    P = R_private * T_private + R_shared * T_shared           (Eq. 2)
    R = R_base * T_solo / T_congestion                        (Eq. 3)

``T_private`` / ``T_shared`` are the measured occupancy split of the tenant's
invocation.  The charging rates are discounted by the *estimated* slowdown of
each component at the current congestion level (from the Litmus test +
tables), not by the tenant's own slowdown — that is the whole point: no
per-function profiling is needed.

Prices are expressed in abstract "rate units x GB x seconds"; all evaluation
figures normalize against the commercial price, so the absolute unit cancels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.estimator import CongestionEstimate, CongestionEstimator
from repro.core.litmus_test import LitmusObservation, LitmusProbe
from repro.core.sharing import Method1Adjustment
from repro.platform.invoker import Invocation
from repro.platform.metering import (
    InvocationMeasurement,
    StartupMeasurement,
    measure_invocation,
    measure_startup,
)
from repro.platform.oracle import SoloProfile


def charging_rate(base_rate: float, estimated_slowdown: float) -> float:
    """Equation 3: the discounted charging rate for one component.

    ``T_solo / T_congestion`` equals ``1 / slowdown``, so the rate is the
    base rate divided by the estimated slowdown (never raised above the base
    rate: congestion can only discount, not surcharge).
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if estimated_slowdown <= 0:
        raise ValueError("estimated_slowdown must be positive")
    return base_rate / max(estimated_slowdown, 1.0)


@dataclass(frozen=True)
class PricingComponents:
    """The measured billing inputs of one invocation."""

    t_private_seconds: float
    t_shared_seconds: float
    memory_gb: float

    def __post_init__(self) -> None:
        if self.t_private_seconds < 0 or self.t_shared_seconds < 0:
            raise ValueError("time components must be >= 0")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")

    @property
    def t_total_seconds(self) -> float:
        return self.t_private_seconds + self.t_shared_seconds

    @classmethod
    def from_measurement(cls, measurement: InvocationMeasurement) -> "PricingComponents":
        return cls(
            t_private_seconds=measurement.t_private_seconds,
            t_shared_seconds=measurement.t_shared_seconds,
            memory_gb=measurement.memory_gb,
        )


@dataclass(frozen=True)
class Price:
    """A price split into its private and shared components."""

    private: float
    shared: float

    @property
    def total(self) -> float:
        return self.private + self.shared


class CommercialPricing:
    """Today's pay-as-you-go pricing: execution time x memory, no discount."""

    def __init__(self, rate_per_gb_second: float = 1.0) -> None:
        if rate_per_gb_second <= 0:
            raise ValueError("rate_per_gb_second must be positive")
        self._rate = rate_per_gb_second

    @property
    def rate_per_gb_second(self) -> float:
        return self._rate

    def price(self, components: PricingComponents) -> Price:
        return Price(
            private=self._rate * components.memory_gb * components.t_private_seconds,
            shared=self._rate * components.memory_gb * components.t_shared_seconds,
        )


class IdealPricing:
    """The oracle price: discount exactly proportional to the slowdown.

    Charging the solo execution time is equivalent to discounting the
    commercial price by the function's actual slowdown, which is what the
    paper's "ideal price" does.  It requires knowing the function's
    interference-free times, which is exactly the information a real
    platform does not have — hence Litmus.
    """

    def __init__(self, rate_per_gb_second: float = 1.0) -> None:
        if rate_per_gb_second <= 0:
            raise ValueError("rate_per_gb_second must be positive")
        self._rate = rate_per_gb_second

    def price(self, memory_gb: float, solo: SoloProfile) -> Price:
        if memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        return Price(
            private=self._rate * memory_gb * solo.t_private_seconds,
            shared=self._rate * memory_gb * solo.t_shared_seconds,
        )


@dataclass(frozen=True)
class PriceQuote:
    """One invocation priced by Litmus alongside the commercial price."""

    function: str
    components: PricingComponents
    observation: LitmusObservation
    estimate: CongestionEstimate
    litmus: Price
    commercial: Price

    @property
    def normalized_price(self) -> float:
        """Litmus price relative to the commercial price (<= 1)."""
        if self.commercial.total <= 0:
            return 1.0
        return self.litmus.total / self.commercial.total

    @property
    def discount(self) -> float:
        """Fraction of the commercial price returned to the tenant."""
        return 1.0 - self.normalized_price


class LitmusPricingEngine:
    """Prices invocations with Litmus tests and calibrated tables."""

    def __init__(
        self,
        estimator: CongestionEstimator,
        probe: Optional[LitmusProbe] = None,
        *,
        base_rate_per_gb_second: float = 1.0,
        method1: Optional[Method1Adjustment] = None,
    ) -> None:
        self._estimator = estimator
        self._probe = probe or estimator.calibration.probe()
        self._commercial = CommercialPricing(base_rate_per_gb_second)
        self._base_rate = base_rate_per_gb_second
        self._method1 = method1

    @property
    def estimator(self) -> CongestionEstimator:
        return self._estimator

    @property
    def probe(self) -> LitmusProbe:
        return self._probe

    @property
    def method1(self) -> Optional[Method1Adjustment]:
        return self._method1

    # ------------------------------------------------------------------ #
    # Quoting
    # ------------------------------------------------------------------ #
    def quote_measurements(
        self,
        measurement: InvocationMeasurement,
        startup: StartupMeasurement,
    ) -> PriceQuote:
        """Price one invocation from its measurement pair."""
        observation = self._probe.observe_measurement(startup)
        if self._method1 is not None:
            observation = self._method1.adjust_observation(observation)
        estimate = self._estimator.estimate(observation)
        components = PricingComponents.from_measurement(measurement)

        private_slowdown = estimate.private_slowdown
        shared_slowdown = estimate.shared_slowdown
        if self._method1 is not None:
            # Method 1 additionally compensates the temporal-sharing overhead
            # that the dedicated-core tables cannot see (Section 7.2).
            private_slowdown *= self._method1.switching_factor

        rate_private = charging_rate(self._base_rate, private_slowdown)
        rate_shared = charging_rate(self._base_rate, shared_slowdown)
        litmus = Price(
            private=rate_private * components.memory_gb * components.t_private_seconds,
            shared=rate_shared * components.memory_gb * components.t_shared_seconds,
        )
        commercial = self._commercial.price(components)
        return PriceQuote(
            function=measurement.function,
            components=components,
            observation=observation,
            estimate=estimate,
            litmus=litmus,
            commercial=commercial,
        )

    def quote(self, invocation: Invocation) -> PriceQuote:
        """Price a completed invocation."""
        return self.quote_measurements(
            measure_invocation(invocation), measure_startup(invocation)
        )
