"""Congestion estimation: from a Litmus observation to expected slowdowns.

The estimator is built from a :class:`repro.core.calibration.CalibrationResult`
and implements Section 6, step 3:

* for each (language, generator) pair it fits linear models mapping the
  startup probe's private/shared slowdown to the reference functions'
  private/shared slowdown at the same stress level (Figure 9), and an
  exponential model mapping the probe's slowdown to the machine L3 miss
  count at that level (Figure 10a);
* at run time, an observation is evaluated under both generators' models,
  producing two candidate slowdowns; the machine's observed L3 miss count is
  placed between the two generators' expected L3 miss counts on a log scale,
  and that weight blends the two candidates (Figure 10b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.core.calibration import CalibrationResult
from repro.core.litmus_test import LitmusObservation
from repro.core.regression import (
    ExponentialRegressionModel,
    LinearRegressionModel,
    log_interpolation_weight,
)
from repro.workloads.runtimes import Language
from repro.workloads.traffic import GeneratorKind


@dataclass(frozen=True)
class GeneratorPrediction:
    """Slowdowns predicted by one traffic generator's regression models."""

    generator: GeneratorKind
    private_slowdown: float
    shared_slowdown: float
    total_slowdown: float
    expected_l3_misses: float


@dataclass(frozen=True)
class CongestionEstimate:
    """The blended slowdown estimate used to set charging rates."""

    observation: LitmusObservation
    private_slowdown: float
    shared_slowdown: float
    total_slowdown: float
    mb_weight: float
    predictions: Mapping[GeneratorKind, GeneratorPrediction]

    @property
    def private_discount(self) -> float:
        """Discount fraction applied to the private component."""
        return 1.0 - 1.0 / self.private_slowdown

    @property
    def shared_discount(self) -> float:
        """Discount fraction applied to the shared component."""
        return 1.0 - 1.0 / self.shared_slowdown


@dataclass(frozen=True)
class _ComponentModels:
    private: LinearRegressionModel
    shared: LinearRegressionModel
    total: LinearRegressionModel
    l3: ExponentialRegressionModel
    #: Calibrated range of the total-slowdown axis.  The exponential L3-miss
    #: model is only trusted inside this range: extrapolating an on-chip
    #: (CT-Gen) model far beyond its calibration can otherwise predict more
    #: misses than the bandwidth-bound extreme, which would corrupt the
    #: interpolation weight.
    total_slowdown_range: Tuple[float, float]


class CongestionEstimator:
    """Maps Litmus observations to expected reference-function slowdowns."""

    def __init__(self, calibration: CalibrationResult) -> None:
        self._calibration = calibration
        self._models: Dict[Tuple[Language, GeneratorKind], _ComponentModels] = {}
        self._fit_models()

    @property
    def calibration(self) -> CalibrationResult:
        return self._calibration

    @property
    def generators(self) -> Tuple[GeneratorKind, ...]:
        return self._calibration.generators

    def models_for(
        self, language: Language, generator: GeneratorKind
    ) -> _ComponentModels:
        try:
            return self._models[(language, generator)]
        except KeyError:
            generator_name = getattr(generator, "value", generator)
            raise KeyError(
                f"no calibrated models for language={language.value}, "
                f"generator={generator_name}"
            ) from None

    def regression_quality(self) -> Dict[str, float]:
        """R^2 of every fitted model, keyed by "<language>/<generator>/<component>"."""
        quality: Dict[str, float] = {}
        for (language, kind), models in self._models.items():
            prefix = f"{language.value}/{kind.value}"
            quality[f"{prefix}/private"] = models.private.r_squared
            quality[f"{prefix}/shared"] = models.shared.r_squared
            quality[f"{prefix}/total"] = models.total.r_squared
            quality[f"{prefix}/l3"] = models.l3.r_squared
        return quality

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def predict_for_generator(
        self, observation: LitmusObservation, generator: GeneratorKind
    ) -> GeneratorPrediction:
        """Slowdowns the observation implies if congestion matched ``generator``."""
        models = self.models_for(observation.language, generator)
        low, high = models.total_slowdown_range
        clamped_total = min(max(observation.total_slowdown, low), high)
        return GeneratorPrediction(
            generator=generator,
            private_slowdown=max(models.private.predict(observation.private_slowdown), 1.0),
            shared_slowdown=max(models.shared.predict(observation.shared_slowdown), 1.0),
            total_slowdown=max(models.total.predict(observation.total_slowdown), 1.0),
            expected_l3_misses=max(models.l3.predict(clamped_total), 1e-6),
        )

    def estimate(self, observation: LitmusObservation) -> CongestionEstimate:
        """Blend the per-generator predictions by the observed L3 miss count."""
        predictions = {
            kind: self.predict_for_generator(observation, kind)
            for kind in self.generators
        }
        if GeneratorKind.CT in predictions and GeneratorKind.MB in predictions:
            ct = predictions[GeneratorKind.CT]
            mb = predictions[GeneratorKind.MB]
            weight = log_interpolation_weight(
                max(observation.machine_l3_misses, 1e-6),
                ct.expected_l3_misses,
                mb.expected_l3_misses,
            )
            # When MB-Gen's expected misses are (unusually) below CT-Gen's,
            # the log weight is computed over the swapped interval; re-anchor
            # it so weight=1 always means "MB-like".
            if mb.expected_l3_misses < ct.expected_l3_misses:
                weight = 1.0 - weight
            private = (1.0 - weight) * ct.private_slowdown + weight * mb.private_slowdown
            shared = (1.0 - weight) * ct.shared_slowdown + weight * mb.shared_slowdown
            total = (1.0 - weight) * ct.total_slowdown + weight * mb.total_slowdown
        else:
            # Single-generator calibration: use it directly.
            only = next(iter(predictions.values()))
            weight = 1.0 if only.generator is GeneratorKind.MB else 0.0
            private, shared, total = (
                only.private_slowdown,
                only.shared_slowdown,
                only.total_slowdown,
            )
        return CongestionEstimate(
            observation=observation,
            private_slowdown=max(private, 1.0),
            shared_slowdown=max(shared, 1.0),
            total_slowdown=max(total, 1.0),
            mb_weight=weight,
            predictions=predictions,
        )

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _fit_models(self) -> None:
        congestion = self._calibration.congestion_table
        performance = self._calibration.performance_table
        for language in self._calibration.languages():
            for kind in self._calibration.generators:
                probe_entries = congestion.entries(generator=kind, language=language)
                if len(probe_entries) < 2:
                    raise ValueError(
                        "calibration must include at least two stress levels per "
                        f"generator; got {len(probe_entries)} for {kind.value}"
                    )
                x_private, x_shared, x_total, l3 = [], [], [], []
                y_private, y_shared, y_total = [], [], []
                for probe_obs in probe_entries:
                    perf_obs = performance.get(kind, probe_obs.stress_level)
                    x_private.append(probe_obs.private_slowdown)
                    x_shared.append(probe_obs.shared_slowdown)
                    x_total.append(probe_obs.total_slowdown)
                    l3.append(max(probe_obs.machine_l3_misses, 1e-6))
                    y_private.append(perf_obs.private_slowdown)
                    y_shared.append(perf_obs.shared_slowdown)
                    y_total.append(perf_obs.total_slowdown)
                self._models[(language, kind)] = _ComponentModels(
                    private=LinearRegressionModel.fit(x_private, y_private),
                    shared=LinearRegressionModel.fit(x_shared, y_shared),
                    total=LinearRegressionModel.fit(x_total, y_total),
                    l3=ExponentialRegressionModel.fit(x_total, l3),
                    total_slowdown_range=(min(x_total), max(x_total)),
                )
