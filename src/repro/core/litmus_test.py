"""The Litmus test: probing congestion through runtime startups.

A Litmus test measures the system's congestion state during the startup of a
tenant function, at zero additional cost: the startup is work the function
performs anyway, and because every function of a given language runs a
nearly identical startup routine, its counters can be compared against the
same routine's interference-free baseline.

Three readings make up an observation (Section 6):

* the startup's ``T_private`` slowdown against the solo baseline,
* the startup's ``T_shared`` slowdown against the solo baseline, and
* the machine-wide L3 miss count during the startup window, which tells
  CT-Gen-like congestion (on-chip, few L3 misses) apart from MB-Gen-like
  congestion (bandwidth bound, many L3 misses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.platform.invoker import Invocation
from repro.platform.metering import StartupMeasurement, measure_startup
from repro.workloads.function import FunctionSpec
from repro.workloads.phases import ExecutionPhase, PhaseKind, ResourceProfile
from repro.workloads.runtimes import Language


@dataclass(frozen=True)
class LitmusObservation:
    """One Litmus-test reading, ready for the congestion estimator."""

    function: str
    language: Language
    private_slowdown: float
    shared_slowdown: float
    total_slowdown: float
    machine_l3_misses: float
    startup_wall_seconds: float

    def __post_init__(self) -> None:
        if self.private_slowdown <= 0 or self.shared_slowdown <= 0:
            raise ValueError("slowdowns must be positive")
        if self.machine_l3_misses < 0:
            raise ValueError("machine_l3_misses must be >= 0")


@dataclass(frozen=True)
class StartupBaseline:
    """Solo (interference-free) startup readings for one language."""

    language: Language
    private_seconds: float
    shared_seconds: float
    machine_l3_misses: float

    @property
    def total_seconds(self) -> float:
        return self.private_seconds + self.shared_seconds

    @classmethod
    def from_measurement(cls, measurement: StartupMeasurement) -> "StartupBaseline":
        return cls(
            language=Language(measurement.language),
            private_seconds=measurement.t_private_seconds,
            shared_seconds=measurement.t_shared_seconds,
            machine_l3_misses=measurement.machine_l3_misses,
        )


class LitmusProbe:
    """Turns raw startup measurements into slowdown observations.

    The probe holds the per-language solo startup baselines (collected once
    by the provider during calibration) and divides every observed startup's
    private/shared occupancy by the corresponding baseline.
    """

    def __init__(self, baselines: Mapping[Language, StartupBaseline]) -> None:
        if not baselines:
            raise ValueError("at least one language baseline is required")
        self._baselines: Dict[Language, StartupBaseline] = dict(baselines)

    def baseline(self, language: Language) -> StartupBaseline:
        try:
            return self._baselines[language]
        except KeyError:
            raise KeyError(
                f"no startup baseline for language {language.value!r}"
            ) from None

    @property
    def languages(self) -> list[Language]:
        return list(self._baselines)

    def observe_measurement(self, measurement: StartupMeasurement) -> LitmusObservation:
        """Build an observation from a startup measurement."""
        language = Language(measurement.language)
        baseline = self.baseline(language)
        if baseline.private_seconds <= 0 or baseline.shared_seconds <= 0:
            raise ValueError(
                f"the solo startup baseline for {language.value} has a zero "
                "component; the probe cannot compute slowdowns"
            )
        private_slowdown = measurement.t_private_seconds / baseline.private_seconds
        shared_slowdown = measurement.t_shared_seconds / baseline.shared_seconds
        total_slowdown = measurement.t_total_seconds / baseline.total_seconds
        return LitmusObservation(
            function=measurement.function,
            language=language,
            private_slowdown=max(private_slowdown, 1e-6),
            shared_slowdown=max(shared_slowdown, 1e-6),
            total_slowdown=max(total_slowdown, 1e-6),
            machine_l3_misses=measurement.machine_l3_misses,
            startup_wall_seconds=measurement.wall_seconds,
        )

    def observe(self, invocation: Invocation) -> LitmusObservation:
        """Build an observation directly from a (possibly running) invocation.

        The invocation must have completed its startup window; it does not
        need to have finished — the whole point of the Litmus test is to read
        the system state at the *beginning* of the execution.
        """
        return self.observe_measurement(measure_startup(invocation))


#: Body size of the dedicated probe functions used during calibration.  The
#: body only exists so the spec is a valid function; it is kept tiny so a
#: probe run is dominated by the startup phases being measured.
_PROBE_BODY_INSTRUCTIONS = 1e6

_PROBE_BODY_PROFILE = ResourceProfile(
    cpi_base=0.5,
    l2_mpki=0.5,
    working_set_mb=1.0,
    solo_l3_hit_fraction=0.9,
    mlp=4.0,
)


def probe_spec(language: Language) -> FunctionSpec:
    """A minimal function of ``language`` used as a pure startup probe.

    Calibration runs these against the traffic generators to fill the
    congestion table; their startup phases are identical to those of every
    real function of the same language, which is what makes the table
    transferable to unknown tenant functions.
    """
    body = ExecutionPhase(
        name=f"probe-{language.value}-body",
        kind=PhaseKind.BODY,
        instructions=_PROBE_BODY_INSTRUCTIONS,
        profile=_PROBE_BODY_PROFILE,
    )
    return FunctionSpec(
        name=f"Litmus probe ({language.value})",
        abbreviation=f"probe-{language.short}",
        language=language,
        suite="litmus-probe",
        memory_mb=128.0,
        body_phases=(body,),
        is_reference=False,
    )
