"""The congestion and performance tables (paper Figure 5).

Providers build two tables offline, one entry per (traffic generator,
stress level):

* the **congestion table** records how the *startup* of each language
  runtime slows down (private and shared components separately) and how many
  L3 misses the machine suffers while the startup runs;
* the **performance table** records the geometric-mean slowdown of the
  *reference functions* (again split into private / shared / total).

Entries of the two tables are mapped one-to-one through the (generator,
stress level) key: once a runtime Litmus test is matched against congestion
table entries, the corresponding performance entries predict how a typical
function would slow down under the same conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.workloads.runtimes import Language
from repro.workloads.traffic import GeneratorKind


@dataclass(frozen=True)
class CongestionObservation:
    """Startup-probe readings at one (generator, level) for one language."""

    generator: GeneratorKind
    stress_level: int
    language: Language
    private_slowdown: float
    shared_slowdown: float
    total_slowdown: float
    machine_l3_misses: float

    def __post_init__(self) -> None:
        if self.stress_level < 0:
            raise ValueError("stress_level must be >= 0")
        for name in ("private_slowdown", "shared_slowdown", "total_slowdown"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.machine_l3_misses < 0:
            raise ValueError("machine_l3_misses must be >= 0")


@dataclass(frozen=True)
class PerformanceObservation:
    """Reference-set gmean slowdowns at one (generator, level)."""

    generator: GeneratorKind
    stress_level: int
    private_slowdown: float
    shared_slowdown: float
    total_slowdown: float

    def __post_init__(self) -> None:
        if self.stress_level < 0:
            raise ValueError("stress_level must be >= 0")
        for name in ("private_slowdown", "shared_slowdown", "total_slowdown"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


class CongestionTable:
    """Startup slowdowns and L3 misses per (generator, stress level, language)."""

    def __init__(self, observations: Iterable[CongestionObservation] = ()) -> None:
        self._entries: Dict[Tuple[GeneratorKind, int, Language], CongestionObservation] = {}
        for observation in observations:
            self.add(observation)

    def add(self, observation: CongestionObservation) -> None:
        key = (observation.generator, observation.stress_level, observation.language)
        if key in self._entries:
            raise ValueError(
                f"duplicate congestion entry for generator={key[0].value}, "
                f"level={key[1]}, language={key[2].value}"
            )
        self._entries[key] = observation

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, generator: GeneratorKind, stress_level: int, language: Language
    ) -> CongestionObservation:
        key = (generator, stress_level, language)
        try:
            return self._entries[key]
        except KeyError:
            raise KeyError(
                f"no congestion entry for generator={generator.value}, "
                f"level={stress_level}, language={language.value}"
            ) from None

    def entries(
        self,
        generator: Optional[GeneratorKind] = None,
        language: Optional[Language] = None,
    ) -> List[CongestionObservation]:
        """All entries, optionally filtered, sorted by stress level."""
        result = [
            obs
            for obs in self._entries.values()
            if (generator is None or obs.generator is generator)
            and (language is None or obs.language is language)
        ]
        return sorted(result, key=lambda o: (o.generator.value, o.language.value, o.stress_level))

    def stress_levels(self, generator: GeneratorKind) -> List[int]:
        return sorted({obs.stress_level for obs in self._entries.values() if obs.generator is generator})

    def languages(self) -> List[Language]:
        return sorted({obs.language for obs in self._entries.values()}, key=lambda l: l.value)

    def rows(self) -> List[Mapping[str, object]]:
        """Render the table for reporting (one dict per entry)."""
        return [
            {
                "generator": obs.generator.value,
                "stress_level": obs.stress_level,
                "language": obs.language.value,
                "startup_private_slowdown": obs.private_slowdown,
                "startup_shared_slowdown": obs.shared_slowdown,
                "startup_total_slowdown": obs.total_slowdown,
                "machine_l3_misses": obs.machine_l3_misses,
            }
            for obs in self.entries()
        ]


class PerformanceTable:
    """Reference-set slowdowns per (generator, stress level)."""

    def __init__(self, observations: Iterable[PerformanceObservation] = ()) -> None:
        self._entries: Dict[Tuple[GeneratorKind, int], PerformanceObservation] = {}
        for observation in observations:
            self.add(observation)

    def add(self, observation: PerformanceObservation) -> None:
        key = (observation.generator, observation.stress_level)
        if key in self._entries:
            raise ValueError(
                f"duplicate performance entry for generator={key[0].value}, level={key[1]}"
            )
        self._entries[key] = observation

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, generator: GeneratorKind, stress_level: int) -> PerformanceObservation:
        try:
            return self._entries[(generator, stress_level)]
        except KeyError:
            raise KeyError(
                f"no performance entry for generator={generator.value}, level={stress_level}"
            ) from None

    def entries(self, generator: Optional[GeneratorKind] = None) -> List[PerformanceObservation]:
        result = [
            obs
            for obs in self._entries.values()
            if generator is None or obs.generator is generator
        ]
        return sorted(result, key=lambda o: (o.generator.value, o.stress_level))

    def stress_levels(self, generator: GeneratorKind) -> List[int]:
        return sorted({obs.stress_level for obs in self._entries.values() if obs.generator is generator})

    def rows(self) -> List[Mapping[str, object]]:
        return [
            {
                "generator": obs.generator.value,
                "stress_level": obs.stress_level,
                "reference_private_slowdown": obs.private_slowdown,
                "reference_shared_slowdown": obs.shared_slowdown,
                "reference_total_slowdown": obs.total_slowdown,
            }
            for obs in self.entries()
        ]
