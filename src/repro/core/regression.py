"""Regression models used by Litmus pricing.

The paper builds two kinds of models from its calibration tables
(Section 6, step 3 and Figures 9/10):

* **linear** models relating the startup (probe) slowdown to the reference
  functions' slowdown at the same stress level, one per traffic generator
  and time component, and
* a **logarithmic/exponential** model relating the probe slowdown to the
  machine's L3 miss count, used to place a runtime observation between the
  CT-Gen extreme (few L3 misses) and the MB-Gen extreme (many L3 misses).

Both are tiny ordinary-least-squares fits implemented with numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def _validate_xy(x: Sequence[float], y: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    xs = np.asarray(list(x), dtype=float)
    ys = np.asarray(list(y), dtype=float)
    if xs.ndim != 1 or ys.ndim != 1:
        raise ValueError("x and y must be one-dimensional sequences")
    if xs.size != ys.size:
        raise ValueError("x and y must have the same length")
    if xs.size < 2:
        raise ValueError("at least two points are required to fit a regression")
    return xs, ys


def _r_squared(y: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    if total == 0.0:
        # A constant target is matched exactly by the fitted constant model.
        return 1.0 if residual < 1e-12 else 0.0
    return 1.0 - residual / total


@dataclass(frozen=True)
class LinearRegressionModel:
    """Least-squares fit of ``y = intercept + slope * x``."""

    slope: float
    intercept: float
    r_squared: float

    @classmethod
    def fit(cls, x: Sequence[float], y: Sequence[float]) -> "LinearRegressionModel":
        xs, ys = _validate_xy(x, y)
        if np.allclose(xs, xs[0]):
            # Degenerate calibration (all probes saw the same slowdown):
            # fall back to a constant model at the mean.
            return cls(slope=0.0, intercept=float(ys.mean()), r_squared=_r_squared(ys, np.full_like(ys, ys.mean())))
        slope, intercept = np.polyfit(xs, ys, deg=1)
        predicted = intercept + slope * xs
        return cls(slope=float(slope), intercept=float(intercept), r_squared=_r_squared(ys, predicted))

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x


@dataclass(frozen=True)
class ExponentialRegressionModel:
    """Least-squares fit of ``y = exp(intercept + slope * x)`` (y > 0).

    Fitting is done in log space, which is the natural scale for L3 miss
    counts that span several orders of magnitude between the CT-Gen and
    MB-Gen regimes (Figure 10a).
    """

    slope: float
    intercept: float
    r_squared: float

    @classmethod
    def fit(cls, x: Sequence[float], y: Sequence[float]) -> "ExponentialRegressionModel":
        xs, ys = _validate_xy(x, y)
        if np.any(ys <= 0):
            raise ValueError("exponential regression requires positive y values")
        log_y = np.log(ys)
        if np.allclose(xs, xs[0]):
            mean_log = float(log_y.mean())
            return cls(slope=0.0, intercept=mean_log, r_squared=_r_squared(log_y, np.full_like(log_y, mean_log)))
        slope, intercept = np.polyfit(xs, log_y, deg=1)
        predicted = intercept + slope * xs
        return cls(slope=float(slope), intercept=float(intercept), r_squared=_r_squared(log_y, predicted))

    def predict(self, x: float) -> float:
        return math.exp(self.intercept + self.slope * x)

    def predict_log(self, x: float) -> float:
        return self.intercept + self.slope * x


def log_interpolation_weight(value: float, low: float, high: float) -> float:
    """Position of ``value`` between ``low`` and ``high`` on a log scale.

    Returns 0.0 when ``value`` is at (or below) ``low``, 1.0 when at or above
    ``high``, and the logarithmic interpolation factor in between — the
    paper's Figure 10 procedure for blending the CT-Gen and MB-Gen discount
    predictions by the observed L3 miss count.  When the two anchors are
    (nearly) identical the midpoint 0.5 is returned.
    """
    if value <= 0 or low <= 0 or high <= 0:
        raise ValueError("log interpolation requires positive values")
    if high < low:
        low, high = high, low
    if math.isclose(low, high, rel_tol=1e-9):
        return 0.5
    weight = (math.log(value) - math.log(low)) / (math.log(high) - math.log(low))
    return min(max(weight, 0.0), 1.0)
