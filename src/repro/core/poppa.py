"""POPPA-style shutter-sampling baseline.

POPPA (Breslow et al., SC'13) prices co-scheduled HPC jobs fairly by
periodically *shutter sampling*: all co-running applications are paused for
a short window so the target application's interference-free progress rate
can be observed, and the observed slowdown sets the discount.

The paper uses POPPA as the conceptual baseline that Litmus improves on:
sampling measures each function's own slowdown (so it is accurate), but the
measurement stalls every co-runner, and with hundreds of short-lived
functions the sampling frequency required makes the overhead untenable.

In this reproduction POPPA is modeled analytically against the solo oracle:
its slowdown estimate equals the function's true slowdown (the best case for
sampling accuracy), while the cost of obtaining it — co-runner core-seconds
lost to shutter windows — is accounted explicitly so the overhead comparison
of the two schemes can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pricing import Price, PricingComponents
from repro.platform.metering import InvocationMeasurement
from repro.platform.oracle import SoloProfile


@dataclass(frozen=True)
class PoppaQuote:
    """A POPPA price plus the sampling overhead it imposed on the system."""

    function: str
    price: Price
    commercial: Price
    measured_slowdown: float
    sample_count: int
    #: Core-seconds of co-runner execution stalled by the shutter windows.
    sampling_overhead_core_seconds: float

    @property
    def normalized_price(self) -> float:
        if self.commercial.total <= 0:
            return 1.0
        return self.price.total / self.commercial.total

    @property
    def discount(self) -> float:
        return 1.0 - self.normalized_price


class PoppaPricing:
    """Shutter-sampling pricing baseline."""

    def __init__(
        self,
        *,
        rate_per_gb_second: float = 1.0,
        sampling_interval_seconds: float = 0.05,
        sample_window_seconds: float = 0.002,
    ) -> None:
        if rate_per_gb_second <= 0:
            raise ValueError("rate_per_gb_second must be positive")
        if sampling_interval_seconds <= 0:
            raise ValueError("sampling_interval_seconds must be positive")
        if sample_window_seconds <= 0:
            raise ValueError("sample_window_seconds must be positive")
        if sample_window_seconds >= sampling_interval_seconds:
            raise ValueError("the sample window must be shorter than the interval")
        self._rate = rate_per_gb_second
        self._interval = sampling_interval_seconds
        self._window = sample_window_seconds

    @property
    def sampling_interval_seconds(self) -> float:
        return self._interval

    @property
    def sample_window_seconds(self) -> float:
        return self._window

    def quote(
        self,
        measurement: InvocationMeasurement,
        solo: SoloProfile,
        co_running_functions: int,
    ) -> PoppaQuote:
        """Price one invocation by (idealised) shutter sampling.

        ``co_running_functions`` is the number of other functions stalled
        during every shutter window; their lost core-seconds are the
        overhead POPPA pays for its accuracy.
        """
        if co_running_functions < 0:
            raise ValueError("co_running_functions must be >= 0")
        components = PricingComponents.from_measurement(measurement)
        if solo.t_total_seconds <= 0:
            raise ValueError("the solo profile must have a positive execution time")
        slowdown = max(components.t_total_seconds / solo.t_total_seconds, 1.0)

        commercial = Price(
            private=self._rate * components.memory_gb * components.t_private_seconds,
            shared=self._rate * components.memory_gb * components.t_shared_seconds,
        )
        # Sampling observes the true slowdown, so the discounted price equals
        # the commercial price divided by the slowdown (i.e. the ideal price).
        price = Price(
            private=commercial.private / slowdown,
            shared=commercial.shared / slowdown,
        )
        sample_count = max(int(components.t_total_seconds / self._interval), 1)
        overhead = sample_count * self._window * co_running_functions
        return PoppaQuote(
            function=measurement.function,
            price=price,
            commercial=commercial,
            measured_slowdown=slowdown,
            sample_count=sample_count,
            sampling_overhead_core_seconds=overhead,
        )
