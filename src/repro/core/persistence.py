"""Persisting calibration results to disk.

Calibration is the expensive, offline half of Litmus pricing: a provider
sweeps two traffic generators across stress levels on every machine
configuration it operates.  The natural workflow is to run that sweep once,
store the tables, and load them on the pricing path — so this module
serializes a :class:`repro.core.calibration.CalibrationResult` (tables,
startup baselines and reference baselines) to a JSON document and back.

Only measurement data is persisted; regression models are cheap to refit and
are always rebuilt from the loaded tables, which keeps the stored format
independent of the fitting implementation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Tuple

from repro.core.calibration import CalibrationResult, CalibrationScenario
from repro.core.litmus_test import StartupBaseline
from repro.core.tables import (
    CongestionObservation,
    CongestionTable,
    PerformanceObservation,
    PerformanceTable,
)
from repro.hardware.topology import machine_by_name
from repro.platform.metering import InvocationMeasurement, StartupMeasurement
from repro.platform.oracle import SoloProfile
from repro.workloads.runtimes import Language
from repro.workloads.traffic import GeneratorKind

#: Format marker so future layout changes can be detected on load.
FORMAT_VERSION = 1


# --------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------- #
def _encode_startup_baseline(baseline: StartupBaseline) -> Mapping[str, float]:
    return {
        "language": baseline.language.value,
        "private_seconds": baseline.private_seconds,
        "shared_seconds": baseline.shared_seconds,
        "machine_l3_misses": baseline.machine_l3_misses,
    }


def _encode_execution(measurement: InvocationMeasurement) -> Mapping[str, object]:
    return {
        "function": measurement.function,
        "memory_gb": measurement.memory_gb,
        "occupied_seconds": measurement.occupied_seconds,
        "t_private_seconds": measurement.t_private_seconds,
        "t_shared_seconds": measurement.t_shared_seconds,
        "instructions": measurement.instructions,
        "cycles": measurement.cycles,
        "l2_misses": measurement.l2_misses,
        "l3_misses": measurement.l3_misses,
        "mean_thread_occupancy": measurement.mean_thread_occupancy,
    }


def _encode_startup(measurement: StartupMeasurement) -> Mapping[str, object]:
    return {
        "function": measurement.function,
        "language": measurement.language,
        "instructions": measurement.instructions,
        "t_private_seconds": measurement.t_private_seconds,
        "t_shared_seconds": measurement.t_shared_seconds,
        "private_cycles": measurement.private_cycles,
        "shared_cycles": measurement.shared_cycles,
        "wall_seconds": measurement.wall_seconds,
        "machine_l3_misses": measurement.machine_l3_misses,
    }


def calibration_to_dict(result: CalibrationResult) -> Dict[str, object]:
    """Encode a calibration result as a JSON-serializable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "machine": result.machine.name,
        "scenario": {
            "name": result.scenario.name,
            "function_thread_count": result.scenario.function_thread_count,
            "functions_per_thread": result.scenario.functions_per_thread,
            "smt_enabled": result.scenario.smt_enabled,
            "background_functions": result.scenario.background_functions,
        },
        "stress_levels": list(result.stress_levels),
        "generators": [kind.value for kind in result.generators],
        "startup_baselines": [
            _encode_startup_baseline(baseline)
            for baseline in result.startup_baselines.values()
        ],
        "reference_baselines": {
            abbreviation: {
                "execution": _encode_execution(profile.execution),
                "startup": _encode_startup(profile.startup)
                if profile.startup is not None
                else None,
            }
            for abbreviation, profile in result.reference_baselines.items()
        },
        "congestion_table": [dict(row) for row in result.congestion_table.rows()],
        "performance_table": [dict(row) for row in result.performance_table.rows()],
        "reference_slowdowns": [
            {
                "generator": generator.value,
                "stress_level": level,
                "slowdowns": {
                    abbreviation: list(values)
                    for abbreviation, values in per_reference.items()
                },
            }
            for (generator, level), per_reference in result.reference_slowdowns.items()
        ],
    }


# --------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------- #
def _decode_execution(payload: Mapping[str, object]) -> InvocationMeasurement:
    return InvocationMeasurement(**payload)  # type: ignore[arg-type]


def _decode_startup(payload: Mapping[str, object]) -> StartupMeasurement:
    return StartupMeasurement(**payload)  # type: ignore[arg-type]


def calibration_from_dict(payload: Mapping[str, object]) -> CalibrationResult:
    """Rebuild a calibration result from :func:`calibration_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported calibration format version {version!r}; "
            f"this library reads version {FORMAT_VERSION}"
        )
    scenario_payload = payload["scenario"]
    scenario = CalibrationScenario(
        name=scenario_payload["name"],
        function_thread_count=scenario_payload["function_thread_count"],
        functions_per_thread=scenario_payload["functions_per_thread"],
        smt_enabled=scenario_payload["smt_enabled"],
        background_functions=scenario_payload["background_functions"],
    )

    startup_baselines = {}
    for entry in payload["startup_baselines"]:
        language = Language(entry["language"])
        startup_baselines[language] = StartupBaseline(
            language=language,
            private_seconds=entry["private_seconds"],
            shared_seconds=entry["shared_seconds"],
            machine_l3_misses=entry["machine_l3_misses"],
        )

    reference_baselines = {}
    for abbreviation, entry in payload["reference_baselines"].items():
        startup = entry.get("startup")
        reference_baselines[abbreviation] = SoloProfile(
            execution=_decode_execution(entry["execution"]),
            startup=_decode_startup(startup) if startup is not None else None,
        )

    congestion = CongestionTable(
        CongestionObservation(
            generator=GeneratorKind(row["generator"]),
            stress_level=int(row["stress_level"]),
            language=Language(row["language"]),
            private_slowdown=row["startup_private_slowdown"],
            shared_slowdown=row["startup_shared_slowdown"],
            total_slowdown=row["startup_total_slowdown"],
            machine_l3_misses=row["machine_l3_misses"],
        )
        for row in payload["congestion_table"]
    )
    performance = PerformanceTable(
        PerformanceObservation(
            generator=GeneratorKind(row["generator"]),
            stress_level=int(row["stress_level"]),
            private_slowdown=row["reference_private_slowdown"],
            shared_slowdown=row["reference_shared_slowdown"],
            total_slowdown=row["reference_total_slowdown"],
        )
        for row in payload["performance_table"]
    )

    reference_slowdowns: Dict[Tuple[GeneratorKind, int], Dict[str, Tuple[float, float, float]]] = {}
    for entry in payload["reference_slowdowns"]:
        key = (GeneratorKind(entry["generator"]), int(entry["stress_level"]))
        reference_slowdowns[key] = {
            abbreviation: tuple(values)  # type: ignore[misc]
            for abbreviation, values in entry["slowdowns"].items()
        }

    return CalibrationResult(
        machine=machine_by_name(payload["machine"]),
        scenario=scenario,
        stress_levels=tuple(int(level) for level in payload["stress_levels"]),
        generators=tuple(GeneratorKind(value) for value in payload["generators"]),
        startup_baselines=startup_baselines,
        reference_baselines=reference_baselines,
        congestion_table=congestion,
        performance_table=performance,
        reference_slowdowns=reference_slowdowns,
    )


# --------------------------------------------------------------------- #
# File helpers
# --------------------------------------------------------------------- #
def save_calibration(result: CalibrationResult, path: str | Path) -> Path:
    """Write a calibration result to ``path`` as JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(calibration_to_dict(result), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    return path


def load_calibration(path: str | Path) -> CalibrationResult:
    """Load a calibration result previously written by :func:`save_calibration`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return calibration_from_dict(payload)
