"""Temporal-sharing support: the switching-overhead curve and Method 1.

When functions temporally share a CPU (Section 7.2), a switched-out
function's cached state is evicted by whoever runs next, inflating its
``T_private`` by an amount that grows with the number of co-located
functions and saturates around 20 of them (Figure 14).

The paper offers two ways to price in this environment:

* **Method 1** keeps the tables built on dedicated cores but (a) removes the
  switching overhead from the probe's ``T_private`` reading before looking
  up the tables and (b) adds the overhead back as an extra discount factor
  on the private charging rate.
* **Method 2** simply rebuilds the tables in the shared environment — that
  is handled by running the :class:`repro.core.calibration.Calibrator` with
  a shared :class:`repro.core.calibration.CalibrationScenario`, so this
  module only provides Method 1 plus the measurement harness for the
  switching curve itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.analysis.stats import geometric_mean
from repro.core.litmus_test import LitmusObservation
from repro.hardware.contention import ContentionParameters
from repro.hardware.cpu import CPU
from repro.hardware.topology import MachineSpec
from repro.platform.drivers import RepeatingSubmitter, SubmitterGroup
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.metering import measure_invocation
from repro.platform.oracle import SoloOracle
from repro.platform.scheduler import LeastOccupancyScheduler, SwitchingOverheadModel
from repro.workloads.function import FunctionSpec
from repro.workloads.registry import FunctionRegistry, default_registry

#: Safety bound (simulated seconds) for one switching-curve measurement run.
_MAX_RUN_SECONDS = 300.0


@dataclass(frozen=True)
class Method1Adjustment:
    """Calibrates Litmus pricing for temporal sharing without new tables."""

    #: Average number of functions sharing a hardware thread in the target
    #: environment (10 in the paper's Section 7.2 configuration).
    functions_per_thread: float
    #: The switching-overhead curve; defaults to the platform's model.
    overhead_model: SwitchingOverheadModel = SwitchingOverheadModel()

    def __post_init__(self) -> None:
        if self.functions_per_thread < 1:
            raise ValueError("functions_per_thread must be >= 1")

    @property
    def switching_factor(self) -> float:
        """The T_private inflation expected from sharing alone (e.g. ~1.025)."""
        return self.overhead_model.factor(self.functions_per_thread)

    def adjust_observation(self, observation: LitmusObservation) -> LitmusObservation:
        """Remove the switching overhead from the probe's private slowdown.

        The dedicated-core congestion table knows nothing about context
        switching, so the probe reading must be mapped back onto the
        conditions the table was built under before it is used as an index.
        """
        factor = self.switching_factor
        return replace(
            observation,
            private_slowdown=max(observation.private_slowdown / factor, 1e-6),
            total_slowdown=max(observation.total_slowdown / factor, 1e-6),
        )


@dataclass(frozen=True)
class SwitchingCurvePoint:
    """One point of the Figure 14 curve."""

    functions_per_thread: int
    t_private_inflation: float


def measure_switching_curve(
    machine: MachineSpec,
    counts: Sequence[int] = (1, 2, 4, 6, 8, 10, 15, 20, 25),
    *,
    registry: Optional[FunctionRegistry] = None,
    functions: Optional[Sequence[str]] = None,
    repetitions: int = 1,
    engine_config: Optional[EngineConfig] = None,
    contention_parameters: Optional[ContentionParameters] = None,
    backend: str = "scalar",
) -> List[SwitchingCurvePoint]:
    """Measure ``T_private`` inflation versus co-located function count.

    For every count ``n`` the harness pins ``n`` functions onto a single
    hardware thread of an otherwise idle machine and measures how much the
    probe functions' per-invocation ``T_private`` grows relative to running
    alone — the experiment behind Figure 14 and behind Method 1's
    calibration factor.  ``backend="vector"`` runs the co-located stints on
    the NumPy fleet engine instead of the scalar reference (the solo oracle
    always stays scalar).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    registry = registry or default_registry()
    if functions is None:
        functions = ["auth-py", "aes-go", "cur-nj"]
    specs: List[FunctionSpec] = [registry.get(abbr) for abbr in functions]
    engine_config = engine_config or EngineConfig()
    oracle = SoloOracle(
        machine,
        contention_parameters=contention_parameters,
        engine_config=engine_config,
    )

    points: List[SwitchingCurvePoint] = []
    for count in counts:
        if count < 1:
            raise ValueError("co-located counts must be >= 1")
        inflations = _measure_inflation_at_count(
            machine,
            specs,
            count,
            repetitions,
            engine_config,
            contention_parameters,
            oracle,
            backend,
        )
        points.append(
            SwitchingCurvePoint(
                functions_per_thread=count,
                t_private_inflation=geometric_mean(inflations),
            )
        )
    return points


def _measure_inflation_at_count(
    machine: MachineSpec,
    specs: Sequence[FunctionSpec],
    count: int,
    repetitions: int,
    engine_config: EngineConfig,
    contention_parameters: Optional[ContentionParameters],
    oracle: SoloOracle,
    backend: str = "scalar",
) -> List[float]:
    if backend == "vector":
        from repro.platform.batch import VectorEngine, VectorEngineConfig

        engine = VectorEngine(
            machine,
            machines=1,
            config=VectorEngineConfig(
                epoch_seconds=engine_config.epoch_seconds,
                fixed_point_iterations=engine_config.fixed_point_iterations,
            ),
            contention_parameters=contention_parameters,
        )
    elif backend == "scalar":
        cpu = CPU(
            machine, smt_enabled=False, contention_parameters=contention_parameters
        )
        engine = SimulationEngine(
            cpu,
            LeastOccupancyScheduler(max_per_thread=max(count, 1)),
            config=engine_config,
        )
    else:
        raise ValueError(f"unknown backend {backend!r}; expected 'scalar' or 'vector'")
    submitters: List[RepeatingSubmitter] = []
    # Fill the single shared thread with `count` co-located functions by
    # cycling through the measurement specs.
    for slot in range(count):
        spec = specs[slot % len(specs)]
        submitters.append(
            RepeatingSubmitter(spec, repetitions=repetitions, thread_id=0, role="switching")
        )
    group = SubmitterGroup(submitters)
    group.attach(engine)
    finished = engine.run_until(lambda eng: group.done, max_seconds=_MAX_RUN_SECONDS)
    if not finished:
        raise RuntimeError(
            f"switching-curve run with {count} co-located functions did not finish"
        )

    inflations: List[float] = []
    for submitter in submitters[: len(specs)]:
        solo = oracle.profile(submitter.spec)
        solo_private_per_instruction = (
            solo.execution.t_private_seconds / solo.execution.instructions
        )
        for invocation in submitter.completed:
            measurement = measure_invocation(invocation)
            private_per_instruction = (
                measurement.t_private_seconds / measurement.instructions
            )
            inflations.append(private_per_instruction / solo_private_per_instruction)
    return inflations
