"""Provider-side calibration: building the congestion and performance tables.

Calibration is the offline step of Section 6 (steps 1 and 2).  For every
traffic generator (CT-Gen, MB-Gen) and stress level the calibrator:

1. launches the generator's threads on their own cores,
2. runs the three language-runtime startup probes and records their
   private/shared slowdowns (against the solo startup baseline) plus the
   machine-wide L3 misses observed during each probe window — these fill the
   **congestion table**, and
3. runs the provider's reference functions under the same stress and records
   the geometric mean of their private/shared/total slowdowns — these fill
   the **performance table**.

The *scenario* describes the environment the tables are built for: the
paper's Section 7.1 tables use dedicated cores (one function per hardware
thread); the Method 2 tables of Section 7.2 are rebuilt in a temporally
shared environment (50 functions over 5 cores, i.e. 10 per core); the SMT
study rebuilds them again with SMT enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.stats import geometric_mean
from repro.core.litmus_test import LitmusProbe, StartupBaseline, probe_spec
from repro.core.tables import (
    CongestionObservation,
    CongestionTable,
    PerformanceObservation,
    PerformanceTable,
)
from repro.hardware.contention import ContentionParameters
from repro.hardware.cpu import CPU
from repro.hardware.frequency import FrequencyPolicy
from repro.hardware.topology import MachineSpec
from repro.platform.churn import ChurnManager
from repro.platform.drivers import WorkQueueDriver
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.metering import measure_invocation
from repro.platform.oracle import SoloOracle, SoloProfile
from repro.platform.scheduler import LeastOccupancyScheduler
from repro.workloads.function import FunctionSpec
from repro.workloads.registry import FunctionRegistry, default_registry
from repro.workloads.runtimes import Language
from repro.workloads.synthetic import WorkloadMixer
from repro.workloads.traffic import GeneratorKind, TrafficGenerator, generator

#: Safety bound (simulated seconds) for one calibration run.
_MAX_RUN_SECONDS = 300.0


@dataclass(frozen=True)
class CalibrationScenario:
    """The sharing environment the tables are built for."""

    name: str
    function_thread_count: int
    functions_per_thread: int = 1
    smt_enabled: bool = False
    #: Number of long-lived background co-runners kept alive on the function
    #: threads while probes and references are measured.  ``None`` derives
    #: the value that keeps the function threads fully occupied:
    #: ``(functions_per_thread - 1) * function_thread_count``.
    background_functions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.function_thread_count < 1:
            raise ValueError("function_thread_count must be >= 1")
        if self.functions_per_thread < 1:
            raise ValueError("functions_per_thread must be >= 1")
        if self.background_functions is not None and self.background_functions < 0:
            raise ValueError("background_functions must be >= 0")

    @property
    def resolved_background_functions(self) -> int:
        if self.background_functions is not None:
            return self.background_functions
        return (self.functions_per_thread - 1) * self.function_thread_count

    @classmethod
    def dedicated(cls, function_thread_count: int = 14) -> "CalibrationScenario":
        """One function per hardware thread (Section 7.1 tables)."""
        return cls(
            name=f"dedicated-{function_thread_count}",
            function_thread_count=function_thread_count,
            functions_per_thread=1,
        )

    @classmethod
    def shared(
        cls, function_thread_count: int = 5, functions_per_thread: int = 10
    ) -> "CalibrationScenario":
        """Temporal sharing (Method 2 tables: 50 functions over 5 cores)."""
        return cls(
            name=f"shared-{function_thread_count}x{functions_per_thread}",
            function_thread_count=function_thread_count,
            functions_per_thread=functions_per_thread,
        )

    @classmethod
    def smt(
        cls, physical_cores: int = 5, functions_per_thread: int = 5
    ) -> "CalibrationScenario":
        """SMT-enabled sharing (Figure 21 tables)."""
        return cls(
            name=f"smt-{physical_cores}x{functions_per_thread}",
            function_thread_count=physical_cores * 2,
            functions_per_thread=functions_per_thread,
            smt_enabled=True,
        )


@dataclass
class CalibrationResult:
    """Everything the pricing engine needs from the offline calibration."""

    machine: MachineSpec
    scenario: CalibrationScenario
    stress_levels: Tuple[int, ...]
    generators: Tuple[GeneratorKind, ...]
    startup_baselines: Dict[Language, StartupBaseline]
    reference_baselines: Dict[str, SoloProfile]
    congestion_table: CongestionTable
    performance_table: PerformanceTable
    #: Per-(generator, level) per-reference-function slowdown triples
    #: (private, shared, total); kept for the characterization figures.
    reference_slowdowns: Dict[Tuple[GeneratorKind, int], Dict[str, Tuple[float, float, float]]]

    def probe(self) -> LitmusProbe:
        """A Litmus probe configured with this calibration's solo baselines."""
        return LitmusProbe(self.startup_baselines)

    def languages(self) -> List[Language]:
        return list(self.startup_baselines)


class Calibrator:
    """Builds congestion/performance tables for one machine and scenario."""

    def __init__(
        self,
        machine: MachineSpec,
        registry: Optional[FunctionRegistry] = None,
        scenario: Optional[CalibrationScenario] = None,
        *,
        stress_levels: Sequence[int] = (2, 6, 10, 14, 18),
        generators: Sequence[GeneratorKind] = (GeneratorKind.CT, GeneratorKind.MB),
        reference_repetitions: int = 1,
        probe_repetitions: int = 1,
        engine_config: Optional[EngineConfig] = None,
        contention_parameters: Optional[ContentionParameters] = None,
        oracle: Optional[SoloOracle] = None,
        churn_seed: int = 1337,
    ) -> None:
        if not stress_levels:
            raise ValueError("at least one stress level is required")
        if reference_repetitions < 1 or probe_repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self._machine = machine
        self._registry = registry or default_registry()
        self._scenario = scenario or CalibrationScenario.dedicated()
        self._stress_levels = tuple(sorted(set(int(level) for level in stress_levels)))
        self._generators = tuple(generators)
        self._reference_repetitions = reference_repetitions
        self._probe_repetitions = probe_repetitions
        self._engine_config = engine_config or EngineConfig()
        self._contention_parameters = contention_parameters
        self._oracle = oracle or SoloOracle(
            machine,
            contention_parameters=contention_parameters,
            engine_config=self._engine_config,
        )
        self._churn_seed = churn_seed
        self._validate_topology()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def scenario(self) -> CalibrationScenario:
        return self._scenario

    @property
    def oracle(self) -> SoloOracle:
        return self._oracle

    def calibrate(self) -> CalibrationResult:
        """Run the full sweep and return the populated tables."""
        startup_baselines = self._collect_startup_baselines()
        reference_baselines = {
            spec.abbreviation: self._oracle.profile(spec)
            for spec in self._registry.reference_functions()
        }
        probe = LitmusProbe(startup_baselines)

        congestion = CongestionTable()
        performance = PerformanceTable()
        reference_slowdowns: Dict[
            Tuple[GeneratorKind, int], Dict[str, Tuple[float, float, float]]
        ] = {}

        for kind in self._generators:
            for level in self._stress_levels:
                run = self._run_stress_point(kind, level, probe, reference_baselines)
                for observation in run.congestion_observations:
                    congestion.add(observation)
                performance.add(run.performance_observation)
                reference_slowdowns[(kind, level)] = run.per_reference_slowdowns

        return CalibrationResult(
            machine=self._machine,
            scenario=self._scenario,
            stress_levels=self._stress_levels,
            generators=self._generators,
            startup_baselines=startup_baselines,
            reference_baselines=reference_baselines,
            congestion_table=congestion,
            performance_table=performance,
            reference_slowdowns=reference_slowdowns,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _validate_topology(self) -> None:
        cores = self._machine.cores
        function_cores = (
            self._scenario.function_thread_count // 2
            if self._scenario.smt_enabled
            else self._scenario.function_thread_count
        )
        max_level = max(self._stress_levels)
        if function_cores + max_level > cores:
            raise ValueError(
                f"scenario {self._scenario.name!r} needs {function_cores} function "
                f"cores plus up to {max_level} generator cores, but the machine "
                f"only has {cores} cores"
            )

    def _function_thread_ids(self, cpu: CPU) -> List[int]:
        if not self._scenario.smt_enabled:
            return list(range(self._scenario.function_thread_count))
        physical = self._scenario.function_thread_count // 2
        core_count = self._machine.cores
        ids = list(range(physical)) + [core_count + i for i in range(physical)]
        return ids

    def _generator_thread_ids(self, cpu: CPU, level: int) -> List[int]:
        if not self._scenario.smt_enabled:
            start = self._scenario.function_thread_count
        else:
            start = self._scenario.function_thread_count // 2
        return list(range(start, start + level))

    def _collect_startup_baselines(self) -> Dict[Language, StartupBaseline]:
        baselines: Dict[Language, StartupBaseline] = {}
        for language in Language:
            profile = self._oracle.profile(probe_spec(language))
            if profile.startup is None:
                raise RuntimeError(
                    f"solo probe run for {language.value} produced no startup window"
                )
            baselines[language] = StartupBaseline.from_measurement(profile.startup)
        return baselines

    def _run_stress_point(
        self,
        kind: GeneratorKind,
        level: int,
        probe: LitmusProbe,
        reference_baselines: Mapping[str, SoloProfile],
    ) -> "_StressPointResult":
        cpu = CPU(
            self._machine,
            smt_enabled=self._scenario.smt_enabled,
            frequency_policy=FrequencyPolicy.FIXED,
            contention_parameters=self._contention_parameters,
        )
        engine = SimulationEngine(
            cpu,
            LeastOccupancyScheduler(max_per_thread=self._scenario.functions_per_thread),
            config=self._engine_config,
        )
        function_threads = self._function_thread_ids(cpu)
        generator_threads = self._generator_thread_ids(cpu, level)

        traffic: TrafficGenerator = generator(kind, level)
        for spec, thread_id in zip(traffic.thread_specs(), generator_threads):
            engine.submit(spec, thread_id=thread_id, tags={"role": "generator"})

        background = self._scenario.resolved_background_functions
        if background > 0:
            mixer = WorkloadMixer(self._registry.all(), seed=self._churn_seed + level)
            churn = ChurnManager(mixer, background, thread_ids=function_threads)
            churn.attach(engine)

        # Stage 1: startup probes.  They are measured against the traffic
        # generator (plus, in shared scenarios, the resident co-runners) so
        # the congestion table reflects the stress level itself rather than
        # interference between calibration workloads.
        probe_items: List[FunctionSpec] = []
        for language in Language:
            probe_items.extend([probe_spec(language)] * self._probe_repetitions)
        probe_driver = WorkQueueDriver(
            probe_items,
            allowed_threads=function_threads[:1],
            max_per_thread=self._scenario.functions_per_thread,
        )
        probe_driver.attach(engine)
        finished = engine.run_until(
            lambda eng: probe_driver.done, max_seconds=_MAX_RUN_SECONDS
        )
        if not finished:
            raise RuntimeError(
                f"calibration probes (generator={kind.value}, level={level}) did "
                f"not finish within {_MAX_RUN_SECONDS} simulated seconds"
            )

        # Stage 2: reference functions.  In the dedicated scenario they run
        # one at a time so each only competes with the generator; in shared
        # scenarios they spread across the function threads on top of the
        # resident co-runners, matching how the Method 2 tables are built.
        reference_items: List[FunctionSpec] = []
        for spec in self._registry.reference_functions():
            reference_items.extend([spec] * self._reference_repetitions)
        reference_threads = (
            function_threads[:1]
            if self._scenario.functions_per_thread == 1
            else function_threads
        )
        reference_driver = WorkQueueDriver(
            reference_items,
            allowed_threads=reference_threads,
            max_per_thread=self._scenario.functions_per_thread,
        )
        reference_driver.attach(engine)
        finished = engine.run_until(
            lambda eng: reference_driver.done, max_seconds=_MAX_RUN_SECONDS
        )
        if not finished:
            raise RuntimeError(
                f"calibration references (generator={kind.value}, level={level}) "
                f"did not finish within {_MAX_RUN_SECONDS} simulated seconds"
            )
        return self._summarize_run(
            kind, level, probe_driver, reference_driver, probe, reference_baselines
        )

    def _summarize_run(
        self,
        kind: GeneratorKind,
        level: int,
        probe_driver: WorkQueueDriver,
        reference_driver: WorkQueueDriver,
        probe: LitmusProbe,
        reference_baselines: Mapping[str, SoloProfile],
    ) -> "_StressPointResult":
        probes_by_spec = probe_driver.completed_by_spec()
        by_spec = reference_driver.completed_by_spec()

        congestion_observations: List[CongestionObservation] = []
        for language in Language:
            abbr = probe_spec(language).abbreviation
            invocations = probes_by_spec.get(abbr, [])
            if not invocations:
                raise RuntimeError(
                    f"no completed probe for {language.value} at level {level}"
                )
            observations = [probe.observe(inv) for inv in invocations]
            congestion_observations.append(
                CongestionObservation(
                    generator=kind,
                    stress_level=level,
                    language=language,
                    private_slowdown=geometric_mean(
                        o.private_slowdown for o in observations
                    ),
                    shared_slowdown=geometric_mean(
                        o.shared_slowdown for o in observations
                    ),
                    total_slowdown=geometric_mean(o.total_slowdown for o in observations),
                    machine_l3_misses=sum(o.machine_l3_misses for o in observations)
                    / len(observations),
                )
            )

        per_reference: Dict[str, Tuple[float, float, float]] = {}
        for spec in self._registry.reference_functions():
            invocations = by_spec.get(spec.abbreviation, [])
            if not invocations:
                raise RuntimeError(
                    f"no completed reference run for {spec.abbreviation} at level {level}"
                )
            baseline = reference_baselines[spec.abbreviation]
            private = geometric_mean(
                measure_invocation(inv).t_private_seconds / baseline.t_private_seconds
                for inv in invocations
            )
            shared = geometric_mean(
                measure_invocation(inv).t_shared_seconds
                / max(baseline.t_shared_seconds, 1e-12)
                for inv in invocations
            )
            total = geometric_mean(
                measure_invocation(inv).t_total_seconds / baseline.t_total_seconds
                for inv in invocations
            )
            per_reference[spec.abbreviation] = (private, shared, total)

        performance = PerformanceObservation(
            generator=kind,
            stress_level=level,
            private_slowdown=geometric_mean(v[0] for v in per_reference.values()),
            shared_slowdown=geometric_mean(v[1] for v in per_reference.values()),
            total_slowdown=geometric_mean(v[2] for v in per_reference.values()),
        )
        return _StressPointResult(
            congestion_observations=congestion_observations,
            performance_observation=performance,
            per_reference_slowdowns=per_reference,
        )


@dataclass(frozen=True)
class _StressPointResult:
    congestion_observations: List[CongestionObservation]
    performance_observation: PerformanceObservation
    per_reference_slowdowns: Dict[str, Tuple[float, float, float]]


# --------------------------------------------------------------------- #
# Process-wide calibration cache, backed by the versioned on-disk cache
# --------------------------------------------------------------------- #
_CALIBRATION_CACHE: Dict[str, CalibrationResult] = {}


def _cache_key(
    machine: MachineSpec,
    scenario: CalibrationScenario,
    stress_levels: Sequence[int],
    registry_signature: str,
    reference_repetitions: int,
    probe_repetitions: int,
    engine_config: EngineConfig,
    contention_signature: str,
) -> str:
    levels = ",".join(str(level) for level in sorted(set(stress_levels)))
    return (
        f"{machine.name}|{scenario.name}|{levels}|{registry_signature}"
        f"|ref{reference_repetitions}|probe{probe_repetitions}"
        f"|dt{engine_config.epoch_seconds!r}|it{engine_config.fixed_point_iterations}"
        f"|cp{contention_signature}"
    )


def _registry_signature(registry: FunctionRegistry) -> str:
    parts = []
    for spec in sorted(registry.all(), key=lambda s: s.abbreviation):
        parts.append(f"{spec.abbreviation}:{spec.total_instructions:.0f}")
    return ";".join(parts)


def calibrate_cached(
    machine: MachineSpec,
    scenario: CalibrationScenario,
    *,
    registry: Optional[FunctionRegistry] = None,
    stress_levels: Sequence[int] = (2, 6, 10, 14, 18),
    reference_repetitions: int = 1,
    probe_repetitions: int = 1,
    engine_config: Optional[EngineConfig] = None,
    oracle: Optional[SoloOracle] = None,
) -> CalibrationResult:
    """Calibrate once per (machine, scenario, levels, registry) — ever.

    Calibration sweeps are the most expensive part of the study.  Two cache
    layers make them amortized-free: a process-wide dictionary (so, e.g.,
    every Method 2 pricing figure in one process reuses the same
    sharing-scenario tables, exactly as a provider would) and the versioned
    on-disk cache of :mod:`repro.diskcache` (so parallel figure workers and
    repeated sweeps — CI runs, staleness checks — calibrate each
    configuration once per machine rather than once per process).  The
    on-disk key covers the full CPU topology, the registry contents
    (phases included) and the engine configuration; entries from older
    cache versions are ignored and recomputed.
    """
    # Imported here: persistence imports this module at top level.
    from repro import diskcache
    from repro.core.persistence import calibration_from_dict, calibration_to_dict

    registry = registry or default_registry()
    resolved_engine_config = engine_config or EngineConfig()
    # A custom oracle carries its own contention parameters into the solo
    # baselines, so they are part of both cache identities.
    contention_parameters = None if oracle is None else oracle.contention_parameters
    key = _cache_key(
        machine,
        scenario,
        stress_levels,
        _registry_signature(registry),
        reference_repetitions,
        probe_repetitions,
        resolved_engine_config,
        diskcache.fingerprint(contention_parameters),
    )
    if key in _CALIBRATION_CACHE:
        return _CALIBRATION_CACHE[key]

    disk_key = diskcache.fingerprint(
        machine,
        scenario,
        tuple(sorted(set(int(level) for level in stress_levels))),
        diskcache.registry_fingerprint(registry.all()),
        reference_repetitions,
        probe_repetitions,
        resolved_engine_config.epoch_seconds,
        resolved_engine_config.fixed_point_iterations,
        contention_parameters,
    )
    payload = diskcache.load("calibration", disk_key)
    if payload is not None:
        try:
            result = calibration_from_dict(payload)
        except (KeyError, TypeError, ValueError):
            result = None
        if result is not None:
            _CALIBRATION_CACHE[key] = result
            return result

    calibrator = Calibrator(
        machine,
        registry,
        scenario,
        stress_levels=stress_levels,
        reference_repetitions=reference_repetitions,
        probe_repetitions=probe_repetitions,
        engine_config=engine_config,
        # The oracle's parameters must also drive the stress-point CPUs:
        # they are part of both cache identities above, and without this
        # a recalibrated profile's tables would mix the new solo
        # baselines with default-coefficient congestion measurements.
        contention_parameters=contention_parameters,
        oracle=oracle,
    )
    result = calibrator.calibrate()
    _CALIBRATION_CACHE[key] = result
    diskcache.store("calibration", disk_key, calibration_to_dict(result))
    return result


def clear_calibration_cache() -> None:
    """Drop all cached calibrations (used by tests)."""
    _CALIBRATION_CACHE.clear()
