"""Co-runner churn.

The paper keeps the congestion level steady by maintaining a fixed number of
co-running functions: "whenever a function finishes, a new randomly-selected
function is launched".  :class:`ChurnManager` implements exactly that on top
of the engine: it owns a set of *churn* invocations, tops the set up to the
target count, and resubmits a fresh random workload whenever one of its
invocations completes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.platform.invoker import Invocation
from repro.workloads.synthetic import WorkloadMixer

#: Tag value the churn manager stamps on the invocations it owns.
CHURN_ROLE = "churn"


class ChurnManager:
    """Keeps ``target_count`` randomly selected co-runners alive."""

    def __init__(
        self,
        mixer: WorkloadMixer,
        target_count: int,
        thread_ids: Optional[Sequence[int]] = None,
    ) -> None:
        if target_count < 0:
            raise ValueError("target_count must be >= 0")
        self._mixer = mixer
        self._target_count = target_count
        self._thread_ids = None if thread_ids is None else list(thread_ids)
        self._active: Dict[int, Invocation] = {}
        self._launched = 0

    @property
    def target_count(self) -> int:
        return self._target_count

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def launched_count(self) -> int:
        """Total number of churn invocations launched so far."""
        return self._launched

    def attach(self, engine: "SimulationEngine") -> None:  # noqa: F821
        """Register with an engine and launch the initial co-runners."""
        engine.add_finish_listener(self._on_finish)
        self.top_up(engine)

    def top_up(self, engine: "SimulationEngine") -> None:  # noqa: F821
        """Submit churn invocations until the target count is reached."""
        while len(self._active) < self._target_count:
            spec = self._mixer.next()
            thread_id = self._pick_thread(engine)
            invocation = engine.submit(
                spec, thread_id=thread_id, tags={"role": CHURN_ROLE}
            )
            self._active[invocation.invocation_id] = invocation
            self._launched += 1

    def _pick_thread(self, engine: "SimulationEngine") -> Optional[int]:  # noqa: F821
        if self._thread_ids is None:
            return None
        # Spread churn invocations across the allowed threads evenly.
        best_thread = None
        best_occupancy = None
        for thread_id in self._thread_ids:
            occupancy = engine.cpu.thread(thread_id).occupancy
            if best_occupancy is None or occupancy < best_occupancy:
                best_thread = thread_id
                best_occupancy = occupancy
        return best_thread

    def _on_finish(self, invocation: Invocation, engine: "SimulationEngine") -> None:  # noqa: F821
        if invocation.invocation_id not in self._active:
            return
        del self._active[invocation.invocation_id]
        self.top_up(engine)
