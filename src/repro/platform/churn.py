"""Co-runner churn.

The paper keeps the congestion level steady by maintaining a fixed number of
co-running functions: "whenever a function finishes, a new randomly-selected
function is launched".  :class:`ChurnManager` implements exactly that on top
of the engine: it owns a set of *churn* invocations, tops the set up to the
target count, and resubmits a fresh random workload whenever one of its
invocations completes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.platform.faults import FAULT_ROLE
from repro.platform.invoker import Invocation
from repro.workloads.synthetic import Mixer, WorkloadMixer

#: Tag value the churn manager stamps on the invocations it owns.
CHURN_ROLE = "churn"


class ChurnManager:
    """Keeps ``target_count`` randomly selected co-runners alive."""

    def __init__(
        self,
        mixer: WorkloadMixer,
        target_count: int,
        thread_ids: Optional[Sequence[int]] = None,
    ) -> None:
        if target_count < 0:
            raise ValueError("target_count must be >= 0")
        self._mixer = mixer
        self._target_count = target_count
        self._thread_ids = None if thread_ids is None else list(thread_ids)
        self._active: Dict[int, Invocation] = {}
        self._launched = 0

    @property
    def target_count(self) -> int:
        return self._target_count

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def launched_count(self) -> int:
        """Total number of churn invocations launched so far."""
        return self._launched

    def attach(self, engine: "SimulationEngine") -> None:  # noqa: F821
        """Register with an engine and launch the initial co-runners."""
        engine.add_finish_listener(self._on_finish)
        self.top_up(engine)

    def top_up(self, engine: "SimulationEngine") -> None:  # noqa: F821
        """Submit churn invocations until the target count is reached."""
        while len(self._active) < self._target_count:
            spec = self._mixer.next()
            thread_id = self._pick_thread(engine)
            invocation = engine.submit(
                spec, thread_id=thread_id, tags={"role": CHURN_ROLE}
            )
            self._active[invocation.invocation_id] = invocation
            self._launched += 1

    def _pick_thread(self, engine: "SimulationEngine") -> Optional[int]:  # noqa: F821
        if self._thread_ids is None:
            return None
        # Spread churn invocations across the allowed threads evenly.
        best_thread = None
        best_occupancy = None
        for thread_id in self._thread_ids:
            occupancy = engine.cpu.thread(thread_id).occupancy
            if best_occupancy is None or occupancy < best_occupancy:
                best_thread = thread_id
                best_occupancy = occupancy
        return best_thread

    def _on_finish(self, invocation: Invocation, engine: "SimulationEngine") -> None:  # noqa: F821
        if invocation.invocation_id not in self._active:
            return
        del self._active[invocation.invocation_id]
        self.top_up(engine)


class WindowedBurst:
    """Keeps ``count`` burst co-runners alive until ``end_seconds``.

    The scalar-engine driver behind the ``churn-spike`` and
    ``noisy-neighbor`` fault types (:mod:`repro.platform.faults`): at
    :meth:`attach` it launches ``count`` invocations drawn from its mixer
    (placed by the engine's scheduler) and, whenever one of them finishes
    before the window closes, launches a replacement.  After the window
    closes the burst simply drains.  Burst invocations are tagged with
    ``role=FAULT_ROLE`` so steady-churn listeners and metering skip them.
    """

    def __init__(self, mixer: Mixer, count: int, end_seconds: float) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self._mixer = mixer
        self._count = count
        self._end_seconds = end_seconds
        self._active: Set[int] = set()
        self._launched = 0
        self._completed = 0

    @property
    def launched_count(self) -> int:
        return self._launched

    @property
    def completed_count(self) -> int:
        return self._completed

    @property
    def active_count(self) -> int:
        return len(self._active)

    def attach(self, engine: "SimulationEngine") -> None:  # noqa: F821
        """Register with an engine and launch the initial burst."""
        engine.add_finish_listener(self._on_finish)
        for _ in range(self._count):
            self._launch(engine)

    def _launch(self, engine: "SimulationEngine") -> None:  # noqa: F821
        invocation = engine.submit(self._mixer.next(), tags={"role": FAULT_ROLE})
        self._active.add(invocation.invocation_id)
        self._launched += 1

    def _on_finish(self, invocation: Invocation, engine: "SimulationEngine") -> None:  # noqa: F821
        if invocation.invocation_id not in self._active:
            return
        self._active.discard(invocation.invocation_id)
        self._completed += 1
        if engine.time_seconds < self._end_seconds:
            self._launch(engine)
