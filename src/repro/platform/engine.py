"""The epoch-driven simulation engine.

The engine advances simulated time in fixed epochs (1 ms by default).  Every
epoch it:

1. collects the runnable invocations on every hardware thread and gives each
   an equal share of the epoch (temporal sharing),
2. iterates the hardware contention model to a fixed point — the miss
   *rates* each invocation generates depend on how fast it can run, which in
   turn depends on everybody's miss rates,
3. advances every invocation's phase cursor by the instructions its cycle
   budget allows, splitting the consumed cycles into private cycles and
   cycles stalled on L2 misses, and accumulating both per-invocation and
   machine-wide performance counters,
4. records startup-window (Litmus probe) snapshots and completion events.

All randomness lives outside the engine (in workload selection); given the
same submissions the engine is fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.hardware.contention import SharedResourcePenalty, WorkloadDemand
from repro.hardware.cpu import CPU
from repro.platform.events import Event, EventKind, EventLog
from repro.platform.invoker import Invocation, InvocationState
from repro.platform.sandbox import Sandbox
from repro.platform.scheduler import Scheduler, SwitchingOverheadModel
from repro.workloads.function import FunctionSpec

FinishListener = Callable[[Invocation, "SimulationEngine"], None]


@dataclass(frozen=True)
class EngineConfig:
    """Engine time-stepping parameters."""

    epoch_seconds: float = 1e-3
    fixed_point_iterations: int = 2
    record_events: bool = True

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if self.fixed_point_iterations < 1:
            raise ValueError("fixed_point_iterations must be >= 1")


class SimulationEngine:
    """Advances all active invocations under the contention model."""

    def __init__(
        self,
        cpu: CPU,
        scheduler: Scheduler,
        config: Optional[EngineConfig] = None,
        switching_overhead: Optional[SwitchingOverheadModel] = None,
    ) -> None:
        self._cpu = cpu
        self._scheduler = scheduler
        self._config = config or EngineConfig()
        self._switching_overhead = switching_overhead or SwitchingOverheadModel()
        self._time = 0.0
        self._next_invocation_id = 0
        self._next_sandbox_id = 0
        self._invocations: Dict[int, Invocation] = {}
        self._completed: List[Invocation] = []
        self._finish_listeners: List[FinishListener] = []
        self._penalty_cache: Dict[int, SharedResourcePenalty] = {}
        self._event_log = EventLog()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cpu(self) -> CPU:
        return self._cpu

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def switching_overhead(self) -> SwitchingOverheadModel:
        return self._switching_overhead

    @property
    def time_seconds(self) -> float:
        return self._time

    @property
    def event_log(self) -> EventLog:
        return self._event_log

    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    def invocation(self, invocation_id: int) -> Invocation:
        try:
            return self._invocations[invocation_id]
        except KeyError:
            raise KeyError(f"unknown invocation id {invocation_id}") from None

    def active_invocations(self) -> List[Invocation]:
        return [
            inv for inv in self._invocations.values() if inv.state is InvocationState.RUNNING
        ]

    def completed_invocations(
        self,
        role: Optional[str] = None,
        abbreviation: Optional[str] = None,
    ) -> List[Invocation]:
        """Completed invocations, optionally filtered by role tag and spec."""
        result = []
        for inv in self._completed:
            if role is not None and inv.role() != role:
                continue
            if abbreviation is not None and inv.spec.abbreviation != abbreviation:
                continue
            result.append(inv)
        return result

    def add_finish_listener(self, listener: FinishListener) -> None:
        self._finish_listeners.append(listener)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: FunctionSpec,
        *,
        thread_id: Optional[int] = None,
        tags: Optional[Dict[str, str]] = None,
    ) -> Invocation:
        """Create, place and start a new invocation of ``spec``.

        The serverless platform modeled here starts invocations immediately
        (cold-start queueing is outside the paper's scope), so submission
        also transitions the invocation to RUNNING.
        """
        sandbox = Sandbox(
            sandbox_id=self._next_sandbox_id,
            memory_mb=spec.memory_mb,
            language=spec.language,
        )
        self._next_sandbox_id += 1
        invocation = Invocation(
            invocation_id=self._next_invocation_id,
            spec=spec,
            sandbox=sandbox,
            submit_time=self._time,
            tags=dict(tags or {}),
        )
        self._next_invocation_id += 1
        self._invocations[invocation.invocation_id] = invocation

        placed_thread = (
            thread_id if thread_id is not None else self._scheduler.place(invocation, self._cpu)
        )
        self._cpu.thread(placed_thread).enqueue(invocation.invocation_id)
        invocation.mark_started(placed_thread, self._time)
        invocation.machine_counters_at_start = self._cpu.global_counters.snapshot()

        self._record_event(EventKind.SUBMIT, invocation)
        self._record_event(EventKind.START, invocation)
        return invocation

    # ------------------------------------------------------------------ #
    # Time stepping
    # ------------------------------------------------------------------ #
    def run_epoch(self) -> None:
        """Advance simulated time by one epoch."""
        dt = self._config.epoch_seconds
        now = self._time + dt
        runnable = self._collect_runnable(dt)
        if not runnable:
            self._cpu.global_counters.observe(elapsed_seconds=dt)
            self._time = now
            return

        frequency_hz = self._cpu.governor.frequency_hz(self._cpu.active_thread_count)
        penalties = self._fixed_point(runnable, frequency_hz, dt)
        self._penalty_cache = dict(penalties)

        finished: List[Invocation] = []
        for invocation, share_seconds, occupancy in runnable:
            penalty = penalties.get(invocation.invocation_id)
            if penalty is None:
                # The invocation had no current profile (already finished).
                continue
            self._advance_invocation(
                invocation, share_seconds, occupancy, penalty, frequency_hz, dt
            )
            if not invocation.startup_recorded and not invocation.is_traffic_generator:
                if invocation.cursor.startup_complete:
                    invocation.record_startup_completion(
                        now, self._cpu.global_counters.snapshot()
                    )
                    self._record_event(EventKind.STARTUP_COMPLETE, invocation, time=now)
            if invocation.cursor.finished:
                finished.append(invocation)

        self._cpu.global_counters.observe(elapsed_seconds=dt)
        self._time = now

        for invocation in finished:
            self._finish(invocation)

    def run_for(self, seconds: float) -> None:
        """Advance the simulation by (at least) ``seconds``."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        target = self._time + seconds
        while self._time < target - 1e-12:
            self.run_epoch()

    def run_until(
        self,
        predicate: Callable[["SimulationEngine"], bool],
        max_seconds: float,
    ) -> bool:
        """Run epochs until ``predicate(self)`` holds or the budget expires.

        Returns ``True`` if the predicate was satisfied.
        """
        if max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        deadline = self._time + max_seconds
        while self._time < deadline:
            if predicate(self):
                return True
            self.run_epoch()
        return predicate(self)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _collect_runnable(
        self, dt: float
    ) -> List[Tuple[Invocation, float, int]]:
        runnable: List[Tuple[Invocation, float, int]] = []
        for thread in self._cpu.threads:
            if not thread.run_queue:
                continue
            occupancy = len(thread.run_queue)
            share = dt / occupancy
            for invocation_id in list(thread.run_queue):
                invocation = self._invocations[invocation_id]
                if invocation.state is InvocationState.RUNNING:
                    runnable.append((invocation, share, occupancy))
        return runnable

    def _private_multiplier(self, invocation: Invocation, occupancy: int) -> float:
        """Private-execution inflation from temporal sharing and SMT."""
        multiplier = self._switching_overhead.factor(occupancy)
        if invocation.thread_id is not None:
            multiplier *= self._cpu.smt_private_penalty(invocation.thread_id)
        return multiplier

    def _fixed_point(
        self,
        runnable: Sequence[Tuple[Invocation, float, int]],
        frequency_hz: float,
        dt: float,
    ) -> Dict[int, SharedResourcePenalty]:
        machine = self._cpu.machine
        penalties: Dict[int, SharedResourcePenalty] = dict(self._penalty_cache)
        for _ in range(self._config.fixed_point_iterations):
            demands: List[WorkloadDemand] = []
            for invocation, share_seconds, occupancy in runnable:
                profile = invocation.cursor.current_profile
                if profile is None:
                    continue
                penalty = penalties.get(invocation.invocation_id)
                if penalty is None:
                    stall_per_inst = profile.solo_stall_cycles_per_instruction(
                        machine.l3.latency_cycles, machine.memory_latency_cycles
                    )
                    private_inflation = 1.0
                else:
                    stall_per_inst = (profile.l2_mpki / 1000.0) * (
                        penalty.stall_cycles_per_l2_miss(profile.mlp)
                    )
                    private_inflation = penalty.private_inflation
                cpi_private = (
                    profile.cpi_base
                    * private_inflation
                    * self._private_multiplier(invocation, occupancy)
                )
                cpi_effective = cpi_private + stall_per_inst
                cycles_available = share_seconds * frequency_hz
                instructions = min(
                    cycles_available / cpi_effective,
                    invocation.cursor.instructions_remaining,
                )
                l2_miss_rate = instructions * profile.l2_mpki / 1000.0 / dt
                demands.append(
                    WorkloadDemand(
                        workload_id=invocation.invocation_id,
                        l2_miss_rate=l2_miss_rate,
                        working_set_mb=profile.working_set_mb,
                        solo_l3_hit_fraction=profile.solo_l3_hit_fraction,
                        mlp=profile.mlp,
                    )
                )
            penalties = dict(self._cpu.contention.evaluate(demands))
        return penalties

    def _advance_invocation(
        self,
        invocation: Invocation,
        share_seconds: float,
        occupancy: int,
        penalty: SharedResourcePenalty,
        frequency_hz: float,
        dt: float,
    ) -> None:
        budget_cycles = share_seconds * frequency_hz
        total_cycles = 0.0
        total_instructions = 0.0
        total_stall = 0.0
        total_l2 = 0.0
        total_l3 = 0.0

        while budget_cycles > 1.0 and not invocation.cursor.finished:
            profile = invocation.cursor.current_profile
            assert profile is not None  # finished is checked above
            stall_per_instruction = (profile.l2_mpki / 1000.0) * (
                penalty.stall_cycles_per_l2_miss(profile.mlp)
            )
            cpi_private = (
                profile.cpi_base
                * penalty.private_inflation
                * self._private_multiplier(invocation, occupancy)
            )
            cpi_effective = cpi_private + stall_per_instruction
            instructions_possible = budget_cycles / cpi_effective
            retired = invocation.cursor.advance(instructions_possible)
            if retired <= 0:
                break
            cycles = retired * cpi_effective
            total_cycles += cycles
            total_instructions += retired
            total_stall += retired * stall_per_instruction
            l2_misses = retired * profile.l2_mpki / 1000.0
            total_l2 += l2_misses
            total_l3 += l2_misses * (1.0 - penalty.l3_hit_fraction)
            budget_cycles -= cycles
            # Stop at the startup/body boundary so the Litmus-probe window is
            # measured exactly over the startup instructions: spilling body
            # work into the snapshot would bias the probe for functions with
            # short startups.  The remaining epoch budget is forfeited once
            # per invocation, which is negligible.
            if (
                not invocation.is_traffic_generator
                and not invocation.startup_recorded
                and invocation.cursor.startup_complete
            ):
                break

        occupied_seconds = total_cycles / frequency_hz
        context_switches = 1.0 if occupancy > 1 else 0.0
        invocation.counters.observe(
            cycles=total_cycles,
            instructions=total_instructions,
            stall_cycles_l2_miss=total_stall,
            l2_misses=total_l2,
            l3_misses=total_l3,
            context_switches=context_switches,
            elapsed_seconds=occupied_seconds,
        )
        self._cpu.global_counters.observe(
            cycles=total_cycles,
            instructions=total_instructions,
            stall_cycles_l2_miss=total_stall,
            l2_misses=total_l2,
            l3_misses=total_l3,
            context_switches=context_switches,
        )
        invocation.observe_occupancy(occupancy, dt)

    def _finish(self, invocation: Invocation) -> None:
        thread_id = invocation.thread_id
        if thread_id is not None:
            self._cpu.thread(thread_id).dequeue(invocation.invocation_id)
        invocation.mark_finished(self._time)
        self._completed.append(invocation)
        self._record_event(EventKind.FINISH, invocation)
        for listener in list(self._finish_listeners):
            listener(invocation, self)

    def _record_event(
        self,
        kind: EventKind,
        invocation: Invocation,
        time: Optional[float] = None,
    ) -> None:
        if not self._config.record_events:
            return
        self._event_log.append(
            Event(
                time_seconds=self._time if time is None else time,
                kind=kind,
                invocation_id=invocation.invocation_id,
                function=invocation.spec.abbreviation,
                thread_id=invocation.thread_id,
            )
        )
