"""The epoch-driven simulation engine.

The engine advances simulated time in fixed epochs (1 ms by default).  Every
epoch it:

1. collects the runnable invocations on every hardware thread and gives each
   an equal share of the epoch (temporal sharing),
2. iterates the hardware contention model to a fixed point — the miss
   *rates* each invocation generates depend on how fast it can run, which in
   turn depends on everybody's miss rates,
3. advances every invocation's phase cursor by the instructions its cycle
   budget allows, splitting the consumed cycles into private cycles and
   cycles stalled on L2 misses, and accumulating both per-invocation and
   machine-wide performance counters,
4. records startup-window (Litmus probe) snapshots and completion events.

All randomness lives outside the engine (in workload selection); given the
same submissions the engine is fully deterministic.

Fast path
---------

Long stretches of a simulation are *stable*: the runnable set does not
change, every invocation is mid-phase, and the contention fixed point has
converged to an exact float fixed point.  Two optimizations exploit this
without changing a single bit of output:

* **Penalty memoization by runnable-set signature** — when an epoch's
  signature (invocation ids, phase indices, thread occupancies, active
  thread count) matches the previous epoch's and that epoch's fixed point
  converged exactly, the stored :class:`SharedResourcePenalty` map *is*
  what the fixed point would recompute, so the contention model is not
  re-evaluated (:class:`PenaltySignatureCache`).

* **Epoch skip-ahead** — inside :meth:`run_for`/:meth:`run_until`, once an
  epoch is stable the engine advances through the provably stable epochs
  that follow in one pass, stopping well before the next boundary
  (submission, completion, probe-window edge, churn tick — all of which
  coincide with phase boundaries — or the caller's time limit).  The pass
  replicates the exact sequence of floating-point additions the
  epoch-by-epoch loop would have performed on every accumulator, so the
  result is bit-identical, just without re-deriving the per-epoch deltas.

Both paths can be disabled with ``EngineConfig(fast_path=False)``; the
property tests assert that fast and disabled runs produce identical states.
Callers of :meth:`run_until` must pass predicates that only change when an
invocation starts or finishes (every predicate in this repository does) —
a predicate watching raw counters or the clock could otherwise observe
fewer intermediate epochs than the slow path exposes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.hardware.contention import SharedResourcePenalty, WorkloadDemand
from repro.hardware.cpu import CPU
from repro.platform.events import Event, EventKind, EventLog
from repro.platform.invoker import Invocation, InvocationState
from repro.platform.sandbox import Sandbox
from repro.platform.scheduler import Scheduler, SwitchingOverheadModel
from repro.workloads.function import FunctionSpec

FinishListener = Callable[[Invocation, "SimulationEngine"], None]

#: A stable span stops this many epochs short of the nearest predicted phase
#: boundary and lets the epoch-by-epoch path cross it, so accumulated
#: floating-point state at the boundary matches the slow path bit for bit.
_SPAN_MARGIN_EPOCHS = 2

#: Signature of one epoch's runnable set: (active thread count, then one
#: (invocation id, phase index, thread occupancy) triple per runnable
#: invocation in collection order).
RunnableSignature = Tuple[int, Tuple[Tuple[int, int, int], ...]]


@dataclass(frozen=True)
class EngineConfig:
    """Engine time-stepping parameters."""

    epoch_seconds: float = 1e-3
    fixed_point_iterations: int = 2
    record_events: bool = True
    #: Enable the exact fast path (penalty memoization + epoch skip-ahead).
    fast_path: bool = True

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if self.fixed_point_iterations < 1:
            raise ValueError("fixed_point_iterations must be >= 1")


@dataclass
class FastPathStats:
    """Observability counters for the engine's fast path."""

    stepped_epochs: int = 0
    span_epochs: int = 0
    spans: int = 0
    fixed_point_evaluations: int = 0
    fixed_point_reuses: int = 0

    @property
    def total_epochs(self) -> int:
        return self.stepped_epochs + self.span_epochs


class PenaltySignatureCache:
    """Memoizes converged contention penalties by runnable-set signature.

    The fixed point warm-starts from the previous epoch's penalties, so a
    stored penalty map is provably what the next epoch would recompute only
    when (a) that map was an *exact* float fixed point (one more iteration
    reproduces it bit for bit) and (b) the next epoch's signature matches
    the one it was stored under — i.e. the entry comes from the immediately
    preceding epoch.  The cache therefore keeps a single entry: any epoch
    with a different signature overwrites it, which doubles as the
    invalidation rule.
    """

    def __init__(self) -> None:
        self._signature: Optional[RunnableSignature] = None
        self._penalties: Optional[Dict[int, SharedResourcePenalty]] = None
        self._converged = False
        self.hits = 0
        self.misses = 0

    @property
    def converged(self) -> bool:
        return self._converged

    @property
    def signature(self) -> Optional[RunnableSignature]:
        return self._signature

    def lookup(
        self, signature: RunnableSignature
    ) -> Optional[Dict[int, SharedResourcePenalty]]:
        """Return the stored penalties if reusable for ``signature``."""
        if self._converged and self._penalties is not None and signature == self._signature:
            self.hits += 1
            return self._penalties
        self.misses += 1
        return None

    def store(
        self,
        signature: RunnableSignature,
        penalties: Dict[int, SharedResourcePenalty],
        converged: bool,
    ) -> None:
        self._signature = signature
        self._penalties = penalties
        self._converged = converged

    def invalidate(self) -> None:
        self._signature = None
        self._penalties = None
        self._converged = False


def _repeat_add(base: float, increment: float, count: int) -> float:
    """``count`` sequential float additions — NOT ``base + count * increment``.

    Floating-point addition is not associative; the skip-ahead path uses
    this helper so each accumulator receives exactly the same rounding
    sequence as the epoch-by-epoch loop.
    """
    if increment == 0.0:
        return base
    for _ in range(count):
        base += increment
    return base


class _SpanInvocationState:
    """Per-invocation constants of one stable span (one epoch's deltas)."""

    __slots__ = (
        "invocation",
        "cursor",
        "retired",
        "cycles",
        "stall",
        "l2",
        "l3",
        "occupied_seconds",
        "has_switch",
        "occupancy",
    )

    def __init__(self, invocation, cursor, retired, cycles, stall, l2, l3,
                 occupied_seconds, has_switch, occupancy):
        self.invocation = invocation
        self.cursor = cursor
        self.retired = retired
        self.cycles = cycles
        self.stall = stall
        self.l2 = l2
        self.l3 = l3
        self.occupied_seconds = occupied_seconds
        self.has_switch = has_switch
        self.occupancy = occupancy


class SimulationEngine:
    """Advances all active invocations under the contention model."""

    def __init__(
        self,
        cpu: CPU,
        scheduler: Scheduler,
        config: Optional[EngineConfig] = None,
        switching_overhead: Optional[SwitchingOverheadModel] = None,
    ) -> None:
        self._cpu = cpu
        self._scheduler = scheduler
        self._config = config or EngineConfig()
        self._switching_overhead = switching_overhead or SwitchingOverheadModel()
        self._time = 0.0
        self._next_invocation_id = 0
        self._next_sandbox_id = 0
        self._invocations: Dict[int, Invocation] = {}
        self._completed: List[Invocation] = []
        self._finish_listeners: List[FinishListener] = []
        self._penalty_cache: Dict[int, SharedResourcePenalty] = {}
        self._event_log = EventLog()
        # Fast-path state.
        self._signature_cache = PenaltySignatureCache()
        self._stats = FastPathStats()
        self._switch_factor_cache: Dict[int, float] = {}
        self._span_ready = False
        self._last_runnable: List[Tuple[Invocation, float, int]] = []
        self._last_multipliers: Dict[int, float] = {}
        self._last_penalties: Dict[int, SharedResourcePenalty] = {}
        self._last_frequency_hz = 0.0
        # Fault-injection hook: multiplies the governed frequency.  1.0 is
        # the healthy fleet and leaves the arithmetic untouched bit-for-bit.
        self._frequency_scale = 1.0
        # The thread list is fixed for the CPU's lifetime; multiplying by the
        # SMT sibling penalty is an exact no-op (``x * 1.0``) when SMT is off.
        self._threads = cpu.threads
        self._smt_active = cpu.smt_enabled

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cpu(self) -> CPU:
        return self._cpu

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def switching_overhead(self) -> SwitchingOverheadModel:
        return self._switching_overhead

    @property
    def time_seconds(self) -> float:
        return self._time

    @property
    def event_log(self) -> EventLog:
        return self._event_log

    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    @property
    def fast_path_stats(self) -> FastPathStats:
        """Counters describing how much work the fast path saved."""
        return self._stats

    @property
    def penalty_signature_cache(self) -> PenaltySignatureCache:
        return self._signature_cache

    def invocation(self, invocation_id: int) -> Invocation:
        try:
            return self._invocations[invocation_id]
        except KeyError:
            raise KeyError(f"unknown invocation id {invocation_id}") from None

    def active_invocations(self) -> List[Invocation]:
        return [
            inv for inv in self._invocations.values() if inv.state is InvocationState.RUNNING
        ]

    def completed_invocations(
        self,
        role: Optional[str] = None,
        abbreviation: Optional[str] = None,
    ) -> List[Invocation]:
        """Completed invocations, optionally filtered by role tag and spec."""
        result = []
        for inv in self._completed:
            if role is not None and inv.role() != role:
                continue
            if abbreviation is not None and inv.spec.abbreviation != abbreviation:
                continue
            result.append(inv)
        return result

    def add_finish_listener(self, listener: FinishListener) -> None:
        self._finish_listeners.append(listener)

    @property
    def frequency_scale(self) -> float:
        """Current fault-injection frequency multiplier (1.0 = healthy)."""
        return self._frequency_scale

    def set_frequency_scale(self, scale: float) -> None:
        """Throttle (or restore) the machine's clock from now on.

        The ``freq-throttle`` fault hook: every subsequent epoch multiplies
        the governed frequency by ``scale``.  Changing the scale invalidates
        the fast-path caches — memoized penalty signatures and the pending
        stable span both bake in the old frequency, so replaying them would
        no longer be bit-exact against plain stepping.
        """
        if scale <= 0:
            raise ValueError("frequency scale must be positive")
        if scale == self._frequency_scale:
            return
        self._frequency_scale = scale
        self._span_ready = False
        self._signature_cache.invalidate()

    def set_contention_parameters(self, parameters) -> None:
        """Apply new contention-model coefficients from now on.

        The hardware-drift hook (see :mod:`repro.calibrate.drift`): like
        :meth:`set_frequency_scale`, changing the model invalidates the
        fast-path caches — memoized penalty signatures and the pending
        stable span bake in penalties computed under the old coefficients,
        so replaying them would no longer be bit-exact against plain
        stepping under the new ones.
        """
        self._cpu.set_contention_parameters(parameters)
        self._span_ready = False
        self._signature_cache.invalidate()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: FunctionSpec,
        *,
        thread_id: Optional[int] = None,
        tags: Optional[Dict[str, str]] = None,
    ) -> Invocation:
        """Create, place and start a new invocation of ``spec``.

        The serverless platform modeled here starts invocations immediately
        (cold-start queueing is outside the paper's scope), so submission
        also transitions the invocation to RUNNING.
        """
        self._span_ready = False
        sandbox = Sandbox(
            sandbox_id=self._next_sandbox_id,
            memory_mb=spec.memory_mb,
            language=spec.language,
        )
        self._next_sandbox_id += 1
        invocation = Invocation(
            invocation_id=self._next_invocation_id,
            spec=spec,
            sandbox=sandbox,
            submit_time=self._time,
            tags=dict(tags or {}),
        )
        self._next_invocation_id += 1
        self._invocations[invocation.invocation_id] = invocation

        placed_thread = (
            thread_id if thread_id is not None else self._scheduler.place(invocation, self._cpu)
        )
        self._cpu.thread(placed_thread).enqueue(invocation.invocation_id)
        invocation.mark_started(placed_thread, self._time)
        invocation.machine_counters_at_start = self._cpu.global_counters.snapshot()

        self._record_event(EventKind.SUBMIT, invocation)
        self._record_event(EventKind.START, invocation)
        return invocation

    # ------------------------------------------------------------------ #
    # Time stepping
    # ------------------------------------------------------------------ #
    def run_epoch(self) -> None:
        """Advance simulated time by one epoch."""
        self._span_ready = False
        self._stats.stepped_epochs += 1
        dt = self._config.epoch_seconds
        now = self._time + dt
        fast = self._config.fast_path
        runnable, busy_threads = self._collect_runnable(dt)
        if not runnable:
            self._cpu.global_counters.observe(elapsed_seconds=dt)
            self._time = now
            return

        # ``busy_threads`` (threads with a non-empty run queue) is exactly
        # ``CPU.active_thread_count`` — counted here to avoid a second scan.
        frequency_hz = self._cpu.governor.frequency_hz(busy_threads)
        if self._frequency_scale != 1.0:
            frequency_hz = frequency_hz * self._frequency_scale
        if fast and not self._smt_active:
            switch_factor = self._switch_factor
            multipliers = {
                invocation.invocation_id: switch_factor(occupancy)
                for invocation, _, occupancy in runnable
            }
        else:
            multipliers = {
                invocation.invocation_id: self._private_multiplier(invocation, occupancy)
                for invocation, _, occupancy in runnable
            }

        # The signature is only needed to look up or store converged
        # penalties; when the previous epoch did not converge, neither can
        # happen, so the construction is skipped entirely.
        signature: Optional[RunnableSignature] = None
        penalties: Optional[Dict[int, SharedResourcePenalty]] = None
        converged = False
        if fast and self._signature_cache.converged:
            signature = self._runnable_signature(runnable, busy_threads)
            cached = self._signature_cache.lookup(signature)
            if cached is not None and self._steady_demands_hold(
                runnable, cached, multipliers, frequency_hz
            ):
                # The previous epoch had the same signature and its penalties
                # are an exact fixed point, so re-evaluating the contention
                # model would reproduce them bit for bit.
                penalties = cached
                converged = True
                self._stats.fixed_point_reuses += 1
        if penalties is None:
            fixed_point = self._fixed_point_fast if fast else self._fixed_point
            penalties, converged = fixed_point(runnable, frequency_hz, dt, multipliers)
            self._stats.fixed_point_evaluations += 1
            if converged:
                if signature is None:
                    signature = self._runnable_signature(runnable, busy_threads)
                self._signature_cache.store(signature, penalties, converged)
            else:
                self._signature_cache.invalidate()
        self._penalty_cache = penalties if fast else dict(penalties)

        advance = self._advance_invocation_fast if fast else self._advance_invocation
        finished: List[Invocation] = []
        for invocation, share_seconds, occupancy in runnable:
            penalty = penalties.get(invocation.invocation_id)
            if penalty is None:
                # The invocation had no current profile (already finished).
                continue
            advance(
                invocation,
                share_seconds,
                occupancy,
                penalty,
                frequency_hz,
                dt,
                multipliers[invocation.invocation_id],
            )
            if not invocation.startup_recorded and not invocation.is_traffic_generator:
                if invocation.cursor.startup_complete:
                    invocation.record_startup_completion(
                        now, self._cpu.global_counters.snapshot()
                    )
                    self._record_event(EventKind.STARTUP_COMPLETE, invocation, time=now)
            if invocation.cursor.finished:
                finished.append(invocation)

        self._cpu.global_counters.observe(elapsed_seconds=dt)
        self._time = now

        if finished:
            for invocation in finished:
                self._finish(invocation)
        elif self._config.fast_path and converged:
            # The penalties are an exact fixed point and nothing changed the
            # runnable set this epoch (finish listeners can only fire on
            # completions, so no submissions happened either).  The fixed
            # point only carries over if no invocation crossed a phase
            # boundary while advancing — a new phase means a new resource
            # profile and therefore new demands.
            if all(
                invocation.cursor.phase_index == phase_index
                for (invocation, _, _), (_, phase_index, _) in zip(
                    runnable, signature[1]
                )
            ):
                self._span_ready = True
                self._last_runnable = runnable
                self._last_multipliers = multipliers
                self._last_penalties = penalties
                self._last_frequency_hz = frequency_hz

    def run_for(self, seconds: float) -> None:
        """Advance the simulation by (at least) ``seconds``."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        target = self._time + seconds
        while self._time < target - 1e-12:
            self.run_epoch()
            if self._span_ready:
                self._run_stable_span(target, 1e-12)

    def run_until(
        self,
        predicate: Callable[["SimulationEngine"], bool],
        max_seconds: float,
    ) -> bool:
        """Run epochs until ``predicate(self)`` holds or the budget expires.

        Returns ``True`` if the predicate was satisfied.  Predicates must be
        functions of state that only changes when an invocation starts or
        finishes (completion flags, driver ``done`` properties, ...): the
        fast path advances through stable stretches without re-evaluating
        the predicate, which is indistinguishable for such predicates
        because no invocation starts or finishes inside a stable stretch.
        """
        if max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        deadline = self._time + max_seconds
        while self._time < deadline:
            if predicate(self):
                return True
            self.run_epoch()
            if self._span_ready:
                self._run_stable_span(deadline, 0.0)
        return predicate(self)

    # ------------------------------------------------------------------ #
    # Fast path internals
    # ------------------------------------------------------------------ #
    def _runnable_signature(
        self,
        runnable: Sequence[Tuple[Invocation, float, int]],
        busy_threads: int,
    ) -> RunnableSignature:
        return (
            busy_threads,
            tuple(
                (invocation.invocation_id, invocation.cursor.phase_index, occupancy)
                for invocation, _, occupancy in runnable
            ),
        )

    def _steady_demands_hold(
        self,
        runnable: Sequence[Tuple[Invocation, float, int]],
        penalties: Dict[int, SharedResourcePenalty],
        multipliers: Dict[int, float],
        frequency_hz: float,
    ) -> bool:
        """True when this epoch's fixed-point demands equal the cached ones.

        The demand an invocation generates stops matching the cached steady
        state only when its remaining instructions start binding the
        ``min()`` in :meth:`_fixed_point` — i.e. in its final epoch.  The
        check recomputes the per-epoch instruction intake from the cached
        penalties with the exact arithmetic the fixed point uses.
        """
        for invocation, share_seconds, occupancy in runnable:
            profile = invocation.cursor.current_profile
            if profile is None:
                return False
            penalty = penalties.get(invocation.invocation_id)
            if penalty is None:
                return False
            stall_per_inst = (profile.l2_mpki / 1000.0) * (
                penalty.stall_cycles_per_l2_miss(profile.mlp)
            )
            cpi_effective = (
                profile.cpi_base
                * penalty.private_inflation
                * multipliers[invocation.invocation_id]
            ) + stall_per_inst
            possible = share_seconds * frequency_hz / cpi_effective
            if possible > invocation.cursor.instructions_remaining:
                return False
        return True

    def _run_stable_span(self, stop_time: float, epsilon: float) -> None:
        """Advance through the provably stable epochs after a stable epoch.

        Replicates, accumulator by accumulator, the exact float-addition
        sequence the epoch-by-epoch loop would perform, while skipping the
        re-derivation of per-epoch deltas (contention fixed point, CPI,
        phase lookups).  Stops ``_SPAN_MARGIN_EPOCHS`` short of the nearest
        phase boundary so boundary crossings — completions, probe-window
        edges, churn resubmissions — happen on the exact path.
        """
        dt = self._config.epoch_seconds
        frequency_hz = self._last_frequency_hz
        penalties = self._last_penalties
        multipliers = self._last_multipliers

        states: List[_SpanInvocationState] = []
        max_epochs: Optional[int] = None
        for invocation, share_seconds, occupancy in self._last_runnable:
            cursor = invocation.cursor
            profile = cursor.current_profile
            penalty = penalties.get(invocation.invocation_id)
            if profile is None or penalty is None:
                return
            if (
                not invocation.is_traffic_generator
                and not invocation.startup_recorded
                and cursor.startup_complete
            ):
                return
            budget_cycles = share_seconds * frequency_hz
            if budget_cycles <= 1.0:
                return
            stall_per_instruction = (profile.l2_mpki / 1000.0) * (
                penalty.stall_cycles_per_l2_miss(profile.mlp)
            )
            cpi_private = (
                profile.cpi_base
                * penalty.private_inflation
                * multipliers[invocation.invocation_id]
            )
            cpi_effective = cpi_private + stall_per_instruction
            retired = budget_cycles / cpi_effective
            if retired <= 0.0:
                return
            headroom = min(
                cursor.phase_instructions_remaining(), cursor.instructions_remaining
            )
            epochs_here = int(math.floor(headroom / retired)) - _SPAN_MARGIN_EPOCHS
            if epochs_here < 1:
                return
            if max_epochs is None or epochs_here < max_epochs:
                max_epochs = epochs_here
            cycles = retired * cpi_effective
            l2 = retired * profile.l2_mpki / 1000.0
            states.append(
                _SpanInvocationState(
                    invocation=invocation,
                    cursor=cursor,
                    retired=retired,
                    cycles=cycles,
                    stall=retired * stall_per_instruction,
                    l2=l2,
                    l3=l2 * (1.0 - penalty.l3_hit_fraction),
                    occupied_seconds=cycles / frequency_hz,
                    has_switch=occupancy > 1,
                    occupancy=occupancy,
                )
            )
        if max_epochs is None:
            return

        # How many of those epochs the caller's time limit actually admits:
        # replicate the outer loop's `time < stop - epsilon` check against
        # the exact accumulated clock.
        clock = self._time
        epochs = 0
        while epochs < max_epochs and clock < stop_time - epsilon:
            clock += dt
            epochs += 1
        if epochs < 1:
            return

        # Shared (machine-wide) counters receive one addition per invocation
        # per epoch, in collection order — replicate that interleaving.
        g = self._cpu.global_counters
        g_cycles = g.cycles
        g_instructions = g.instructions
        g_stall = g.stall_cycles_l2_miss
        g_l2 = g.l2_misses
        g_l3 = g.l3_misses
        g_switches = g.context_switches
        deltas = [
            (s.cycles, s.retired, s.stall, s.l2, s.l3, s.has_switch) for s in states
        ]
        for _ in range(epochs):
            for cycles, retired, stall, l2, l3, has_switch in deltas:
                g_cycles += cycles
                g_instructions += retired
                g_stall += stall
                g_l2 += l2
                g_l3 += l3
                if has_switch:
                    g_switches += 1.0
        g.cycles = g_cycles
        g.instructions = g_instructions
        g.stall_cycles_l2_miss = g_stall
        g.l2_misses = g_l2
        g.l3_misses = g_l3
        g.context_switches = g_switches
        g.elapsed_seconds = _repeat_add(g.elapsed_seconds, dt, epochs)

        # Per-invocation accumulators are independent of each other, so each
        # can replay its additions separately.
        for s in states:
            into_phase, retired_total = s.cursor.span_snapshot()
            s.cursor.span_restore(
                _repeat_add(into_phase, s.retired, epochs),
                _repeat_add(retired_total, s.retired, epochs),
            )
            c = s.invocation.counters
            c.cycles = _repeat_add(c.cycles, s.cycles, epochs)
            c.instructions = _repeat_add(c.instructions, s.retired, epochs)
            c.stall_cycles_l2_miss = _repeat_add(c.stall_cycles_l2_miss, s.stall, epochs)
            c.l2_misses = _repeat_add(c.l2_misses, s.l2, epochs)
            c.l3_misses = _repeat_add(c.l3_misses, s.l3, epochs)
            if s.has_switch:
                c.context_switches = _repeat_add(c.context_switches, 1.0, epochs)
            c.elapsed_seconds = _repeat_add(c.elapsed_seconds, s.occupied_seconds, epochs)
            s.invocation.span_observe_occupancy(s.occupancy, dt, epochs)

        self._time = clock
        self._stats.span_epochs += epochs
        self._stats.spans += 1
        # The runnable set is untouched, so the span state stays valid; the
        # next `run_epoch` will reuse the cached penalties through the
        # signature cache and step the boundary epochs exactly.

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _collect_runnable(
        self, dt: float
    ) -> Tuple[List[Tuple[Invocation, float, int]], int]:
        """Runnable (invocation, epoch share, occupancy) triples + busy threads."""
        runnable: List[Tuple[Invocation, float, int]] = []
        busy_threads = 0
        invocations = self._invocations
        running = InvocationState.RUNNING
        for thread in self._threads:
            if not thread.run_queue:
                continue
            busy_threads += 1
            occupancy = len(thread.run_queue)
            share = dt / occupancy
            for invocation_id in list(thread.run_queue):
                invocation = invocations[invocation_id]
                if invocation.state is running:
                    runnable.append((invocation, share, occupancy))
        return runnable, busy_threads

    def _switch_factor(self, occupancy: int) -> float:
        """Memoized ``SwitchingOverheadModel.factor`` (it is pure)."""
        factor = self._switch_factor_cache.get(occupancy)
        if factor is None:
            factor = self._switching_overhead.factor(occupancy)
            self._switch_factor_cache[occupancy] = factor
        return factor

    def _private_multiplier(self, invocation: Invocation, occupancy: int) -> float:
        """Private-execution inflation from temporal sharing and SMT."""
        multiplier = self._switch_factor(occupancy)
        if invocation.thread_id is not None:
            multiplier *= self._cpu.smt_private_penalty(invocation.thread_id)
        return multiplier

    def _fixed_point(
        self,
        runnable: Sequence[Tuple[Invocation, float, int]],
        frequency_hz: float,
        dt: float,
        multipliers: Dict[int, float],
    ) -> Tuple[Dict[int, SharedResourcePenalty], bool]:
        """Iterate the contention model; report exact convergence.

        Returns ``(penalties, converged)`` where ``converged`` means the
        epoch reproduced its own warm start bit for bit: the returned map is
        an exact float fixed point of the whole per-epoch iteration, so the
        next epoch with identical demands would return the same map.  (This
        is deliberately checked against the epoch's *input* rather than the
        last iteration's, so a fixed point of the composed iterations — e.g.
        a period-two oscillation of the single iteration — still counts.)
        """
        machine = self._cpu.machine
        penalties: Dict[int, SharedResourcePenalty] = dict(self._penalty_cache)
        initial: Dict[int, SharedResourcePenalty] = penalties
        for _ in range(self._config.fixed_point_iterations):
            demands: List[WorkloadDemand] = []
            for invocation, share_seconds, occupancy in runnable:
                profile = invocation.cursor.current_profile
                if profile is None:
                    continue
                penalty = penalties.get(invocation.invocation_id)
                if penalty is None:
                    stall_per_inst = profile.solo_stall_cycles_per_instruction(
                        machine.l3.latency_cycles, machine.memory_latency_cycles
                    )
                    private_inflation = 1.0
                else:
                    stall_per_inst = (profile.l2_mpki / 1000.0) * (
                        penalty.stall_cycles_per_l2_miss(profile.mlp)
                    )
                    private_inflation = penalty.private_inflation
                cpi_private = (
                    profile.cpi_base
                    * private_inflation
                    * multipliers[invocation.invocation_id]
                )
                cpi_effective = cpi_private + stall_per_inst
                cycles_available = share_seconds * frequency_hz
                instructions = min(
                    cycles_available / cpi_effective,
                    invocation.cursor.instructions_remaining,
                )
                l2_miss_rate = instructions * profile.l2_mpki / 1000.0 / dt
                demands.append(
                    WorkloadDemand(
                        workload_id=invocation.invocation_id,
                        l2_miss_rate=l2_miss_rate,
                        working_set_mb=profile.working_set_mb,
                        solo_l3_hit_fraction=profile.solo_l3_hit_fraction,
                        mlp=profile.mlp,
                    )
                )
            penalties = dict(self._cpu.contention.evaluate(demands))
        converged = all(
            initial.get(workload_id) == penalty
            for workload_id, penalty in penalties.items()
        )
        return penalties, converged

    def _fixed_point_fast(
        self,
        runnable: Sequence[Tuple[Invocation, float, int]],
        frequency_hz: float,
        dt: float,
        multipliers: Dict[int, float],
    ) -> Tuple[Dict[int, SharedResourcePenalty], bool]:
        """Bit-identical replica of :meth:`_fixed_point` with hoisted state.

        Per-invocation values that cannot change across iterations (profile
        fields, cycle budget, remaining instructions, multiplier) are read
        once per epoch instead of once per iteration, and the contention
        model is driven through :meth:`ContentionModel.evaluate_tuples`
        instead of per-iteration ``WorkloadDemand`` construction.  Every
        arithmetic expression keeps the reference implementation's operand
        order.  Behavioural changes go into :meth:`_fixed_point` first.
        """
        machine = self._cpu.machine
        l3_latency = machine.l3.latency_cycles
        memory_latency = machine.memory_latency_cycles
        rows = []
        for invocation, share_seconds, occupancy in runnable:
            profile = invocation.cursor.current_profile
            if profile is None:
                continue
            rows.append(
                (
                    invocation.invocation_id,
                    profile,
                    profile.l2_mpki,
                    profile.l2_mpki / 1000.0,
                    profile.mlp,
                    profile.cpi_base,
                    multipliers[invocation.invocation_id],
                    share_seconds * frequency_hz,
                    invocation.cursor.instructions_remaining,
                    profile.working_set_mb,
                    profile.solo_l3_hit_fraction,
                )
            )
        # Read-only warm start: the loop rebinds ``penalties`` to a fresh
        # dict from ``evaluate_tuples``, so no copy is needed.
        penalties: Dict[int, SharedResourcePenalty] = self._penalty_cache
        initial: Dict[int, SharedResourcePenalty] = penalties
        evaluate_tuples = self._cpu.contention.evaluate_tuples
        for _ in range(self._config.fixed_point_iterations):
            demands = []
            lookup = penalties.get
            for (
                workload_id,
                profile,
                l2_mpki,
                mpki_per_inst,
                mlp,
                cpi_base,
                multiplier,
                cycles_available,
                remaining,
                working_set_mb,
                solo_hit,
            ) in rows:
                penalty = lookup(workload_id)
                if penalty is None:
                    stall_per_inst = profile.solo_stall_cycles_per_instruction(
                        l3_latency, memory_latency
                    )
                    private_inflation = 1.0
                else:
                    hit_fraction = penalty.l3_hit_fraction
                    stall_per_inst = mpki_per_inst * (
                        (
                            hit_fraction * penalty.l3_hit_latency_cycles
                            + (1.0 - hit_fraction) * penalty.memory_latency_cycles
                        )
                        / mlp
                    )
                    private_inflation = penalty.private_inflation
                cpi_effective = cpi_base * private_inflation * multiplier + stall_per_inst
                instructions = min(cycles_available / cpi_effective, remaining)
                l2_miss_rate = instructions * l2_mpki / 1000.0 / dt
                demands.append(
                    (workload_id, l2_miss_rate, working_set_mb, solo_hit, mlp)
                )
            penalties = evaluate_tuples(demands)
        converged = all(
            initial.get(workload_id) == penalty
            for workload_id, penalty in penalties.items()
        )
        return penalties, converged

    def _advance_invocation_fast(
        self,
        invocation: Invocation,
        share_seconds: float,
        occupancy: int,
        penalty: SharedResourcePenalty,
        frequency_hz: float,
        dt: float,
        multiplier: float,
    ) -> None:
        """Bit-identical replica of :meth:`_advance_invocation`.

        Hoists loop-invariant penalty terms and accumulates the performance
        counters with direct attribute additions (``PMUCounters.observe``
        validates seven already-non-negative values per call, which is pure
        overhead on this path).  The addition order per accumulator matches
        the reference implementation exactly.  Behavioural changes go into
        :meth:`_advance_invocation` first.
        """
        cursor = invocation.cursor
        budget_cycles = share_seconds * frequency_hz
        total_cycles = 0.0
        total_instructions = 0.0
        total_stall = 0.0
        total_l2 = 0.0
        total_l3 = 0.0

        hit_term = (
            penalty.l3_hit_fraction * penalty.l3_hit_latency_cycles
            + (1.0 - penalty.l3_hit_fraction) * penalty.memory_latency_cycles
        )
        inflation = penalty.private_inflation
        miss_fraction = 1.0 - penalty.l3_hit_fraction
        watch_startup = (
            not invocation.is_traffic_generator and not invocation.startup_recorded
        )

        while budget_cycles > 1.0 and not cursor.finished:
            profile = cursor.current_profile
            stall_per_instruction = (profile.l2_mpki / 1000.0) * (hit_term / profile.mlp)
            cpi_effective = (
                profile.cpi_base * inflation * multiplier + stall_per_instruction
            )
            retired = cursor.advance(budget_cycles / cpi_effective)
            if retired <= 0:
                break
            cycles = retired * cpi_effective
            total_cycles += cycles
            total_instructions += retired
            total_stall += retired * stall_per_instruction
            l2_misses = retired * profile.l2_mpki / 1000.0
            total_l2 += l2_misses
            total_l3 += l2_misses * miss_fraction
            budget_cycles -= cycles
            if watch_startup and cursor.startup_complete:
                break

        occupied_seconds = total_cycles / frequency_hz
        counters = invocation.counters
        counters.cycles += total_cycles
        counters.instructions += total_instructions
        counters.stall_cycles_l2_miss += total_stall
        counters.l2_misses += total_l2
        counters.l3_misses += total_l3
        global_counters = self._cpu.global_counters
        global_counters.cycles += total_cycles
        global_counters.instructions += total_instructions
        global_counters.stall_cycles_l2_miss += total_stall
        global_counters.l2_misses += total_l2
        global_counters.l3_misses += total_l3
        if occupancy > 1:
            counters.context_switches += 1.0
            global_counters.context_switches += 1.0
        counters.elapsed_seconds += occupied_seconds
        # Inlined observe_occupancy (occupancy >= 1 and dt > 0 by construction).
        invocation._occupancy_weighted_sum += occupancy * dt
        invocation._occupancy_weight += dt

    def _advance_invocation(
        self,
        invocation: Invocation,
        share_seconds: float,
        occupancy: int,
        penalty: SharedResourcePenalty,
        frequency_hz: float,
        dt: float,
        multiplier: float,
    ) -> None:
        budget_cycles = share_seconds * frequency_hz
        total_cycles = 0.0
        total_instructions = 0.0
        total_stall = 0.0
        total_l2 = 0.0
        total_l3 = 0.0

        while budget_cycles > 1.0 and not invocation.cursor.finished:
            profile = invocation.cursor.current_profile
            assert profile is not None  # finished is checked above
            stall_per_instruction = (profile.l2_mpki / 1000.0) * (
                penalty.stall_cycles_per_l2_miss(profile.mlp)
            )
            cpi_private = (
                profile.cpi_base
                * penalty.private_inflation
                * multiplier
            )
            cpi_effective = cpi_private + stall_per_instruction
            instructions_possible = budget_cycles / cpi_effective
            retired = invocation.cursor.advance(instructions_possible)
            if retired <= 0:
                break
            cycles = retired * cpi_effective
            total_cycles += cycles
            total_instructions += retired
            total_stall += retired * stall_per_instruction
            l2_misses = retired * profile.l2_mpki / 1000.0
            total_l2 += l2_misses
            total_l3 += l2_misses * (1.0 - penalty.l3_hit_fraction)
            budget_cycles -= cycles
            # Stop at the startup/body boundary so the Litmus-probe window is
            # measured exactly over the startup instructions: spilling body
            # work into the snapshot would bias the probe for functions with
            # short startups.  The remaining epoch budget is forfeited once
            # per invocation, which is negligible.
            if (
                not invocation.is_traffic_generator
                and not invocation.startup_recorded
                and invocation.cursor.startup_complete
            ):
                break

        occupied_seconds = total_cycles / frequency_hz
        context_switches = 1.0 if occupancy > 1 else 0.0
        invocation.counters.observe(
            cycles=total_cycles,
            instructions=total_instructions,
            stall_cycles_l2_miss=total_stall,
            l2_misses=total_l2,
            l3_misses=total_l3,
            context_switches=context_switches,
            elapsed_seconds=occupied_seconds,
        )
        self._cpu.global_counters.observe(
            cycles=total_cycles,
            instructions=total_instructions,
            stall_cycles_l2_miss=total_stall,
            l2_misses=total_l2,
            l3_misses=total_l3,
            context_switches=context_switches,
        )
        invocation.observe_occupancy(occupancy, dt)

    def _finish(self, invocation: Invocation) -> None:
        self._span_ready = False
        thread_id = invocation.thread_id
        if thread_id is not None:
            self._cpu.thread(thread_id).dequeue(invocation.invocation_id)
        invocation.mark_finished(self._time)
        self._completed.append(invocation)
        self._record_event(EventKind.FINISH, invocation)
        for listener in list(self._finish_listeners):
            listener(invocation, self)

    def _record_event(
        self,
        kind: EventKind,
        invocation: Invocation,
        time: Optional[float] = None,
    ) -> None:
        if not self._config.record_events:
            return
        self._event_log.append(
            Event(
                time_seconds=self._time if time is None else time,
                kind=kind,
                invocation_id=invocation.invocation_id,
                function=invocation.spec.abbreviation,
                thread_id=invocation.thread_id,
            )
        )
