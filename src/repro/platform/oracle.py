"""Solo-execution oracle.

Several parts of the study need to know how a function performs when it has
the machine to itself:

* the **ideal price** discounts a tenant exactly by the slowdown it
  experienced, which requires its interference-free execution time;
* the **charging rates** (Equation 3) are defined against solo times;
* the Litmus probe's slowdown is the measured startup time relative to the
  startup's solo time.

On the real system the paper obtains these numbers by profiling functions in
isolation offline.  Here the :class:`SoloOracle` simply runs the function
alone on a private engine instance and caches the result; runs are
deterministic, so one execution per (machine, spec) pair suffices.

Profiles are additionally persisted through the versioned on-disk cache
(:mod:`repro.diskcache`), keyed by the machine topology, the engine
configuration, the contention parameters and the full function spec —
so every figure of a sweep, in any process, profiles each function once.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import diskcache

from repro.hardware.cpu import CPU
from repro.hardware.frequency import FrequencyPolicy
from repro.hardware.contention import ContentionParameters
from repro.hardware.topology import MachineSpec
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.metering import (
    InvocationMeasurement,
    StartupMeasurement,
    measure_invocation,
    measure_startup,
)
from repro.platform.scheduler import DedicatedCoreScheduler
from repro.workloads.function import FunctionSpec

#: Safety bound on how long (simulated seconds) a solo run may take.
_MAX_SOLO_SECONDS = 600.0


@dataclass(frozen=True)
class SoloProfile:
    """Interference-free measurements of one function."""

    execution: InvocationMeasurement
    startup: Optional[StartupMeasurement]

    @property
    def t_private_seconds(self) -> float:
        return self.execution.t_private_seconds

    @property
    def t_shared_seconds(self) -> float:
        return self.execution.t_shared_seconds

    @property
    def t_total_seconds(self) -> float:
        return self.execution.t_total_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-encodable form (floats round-trip exactly)."""
        return {
            "execution": asdict(self.execution),
            "startup": None if self.startup is None else asdict(self.startup),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SoloProfile":
        startup = payload.get("startup")
        return cls(
            execution=InvocationMeasurement(**payload["execution"]),
            startup=None if startup is None else StartupMeasurement(**startup),
        )


class SoloOracle:
    """Runs functions alone on the machine and caches their measurements."""

    def __init__(
        self,
        machine: MachineSpec,
        *,
        contention_parameters: Optional[ContentionParameters] = None,
        engine_config: Optional[EngineConfig] = None,
        use_disk_cache: bool = True,
    ) -> None:
        self._machine = machine
        self._contention_parameters = contention_parameters
        self._engine_config = engine_config or EngineConfig()
        self._use_disk_cache = use_disk_cache
        self._cache: Dict[Tuple[str, float], SoloProfile] = {}

    @property
    def machine(self) -> MachineSpec:
        return self._machine

    @property
    def contention_parameters(self) -> Optional[ContentionParameters]:
        """The contention coefficients the oracle profiles under (None = defaults)."""
        return self._contention_parameters

    @staticmethod
    def _key(spec: FunctionSpec) -> Tuple[str, float]:
        # Keyed on the instruction count as well so differently scaled copies
        # of the same benchmark never collide in the cache.
        return (spec.abbreviation, spec.total_instructions)

    def _disk_key(self, spec: FunctionSpec) -> str:
        # The fast path changes no output bit, so it is deliberately left
        # out of the key: profiles computed with it on and off are
        # interchangeable.
        return diskcache.fingerprint(
            self._machine,
            self._contention_parameters,
            self._engine_config.epoch_seconds,
            self._engine_config.fixed_point_iterations,
            spec,
        )

    def profile(self, spec: FunctionSpec) -> SoloProfile:
        """Return (possibly cached) solo measurements for ``spec``."""
        key = self._key(spec)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        disk_key = self._disk_key(spec) if self._use_disk_cache else None
        if disk_key is not None:
            payload = diskcache.load("solo", disk_key)
            if payload is not None:
                try:
                    profile = SoloProfile.from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    profile = None  # schema drift / corruption: recompute
                if profile is not None:
                    self._cache[key] = profile
                    return profile
        profile = self._run_solo(spec)
        self._cache[key] = profile
        if disk_key is not None:
            diskcache.store("solo", disk_key, profile.to_dict())
        return profile

    def clear(self) -> None:
        self._cache.clear()

    def __contains__(self, abbreviation: str) -> bool:
        return any(key[0] == abbreviation for key in self._cache)

    def _run_solo(self, spec: FunctionSpec) -> SoloProfile:
        if spec.is_traffic_generator:
            raise ValueError("traffic generators are never billed or profiled solo")
        cpu = CPU(
            self._machine,
            smt_enabled=False,
            frequency_policy=FrequencyPolicy.FIXED,
            contention_parameters=self._contention_parameters,
        )
        engine = SimulationEngine(
            cpu, DedicatedCoreScheduler(), config=self._engine_config
        )
        invocation = engine.submit(spec, tags={"role": "solo"})
        completed = engine.run_until(
            lambda eng: invocation.is_completed, max_seconds=_MAX_SOLO_SECONDS
        )
        if not completed:
            raise RuntimeError(
                f"solo run of {spec.abbreviation} did not complete within "
                f"{_MAX_SOLO_SECONDS} simulated seconds"
            )
        startup = measure_startup(invocation) if invocation.startup_recorded else None
        return SoloProfile(execution=measure_invocation(invocation), startup=startup)
