"""Solo-execution oracle.

Several parts of the study need to know how a function performs when it has
the machine to itself:

* the **ideal price** discounts a tenant exactly by the slowdown it
  experienced, which requires its interference-free execution time;
* the **charging rates** (Equation 3) are defined against solo times;
* the Litmus probe's slowdown is the measured startup time relative to the
  startup's solo time.

On the real system the paper obtains these numbers by profiling functions in
isolation offline.  Here the :class:`SoloOracle` simply runs the function
alone on a private engine instance and caches the result; runs are
deterministic, so one execution per (machine, spec) pair suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.hardware.cpu import CPU
from repro.hardware.frequency import FrequencyPolicy
from repro.hardware.contention import ContentionParameters
from repro.hardware.topology import MachineSpec
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.metering import (
    InvocationMeasurement,
    StartupMeasurement,
    measure_invocation,
    measure_startup,
)
from repro.platform.scheduler import DedicatedCoreScheduler
from repro.workloads.function import FunctionSpec

#: Safety bound on how long (simulated seconds) a solo run may take.
_MAX_SOLO_SECONDS = 600.0


@dataclass(frozen=True)
class SoloProfile:
    """Interference-free measurements of one function."""

    execution: InvocationMeasurement
    startup: Optional[StartupMeasurement]

    @property
    def t_private_seconds(self) -> float:
        return self.execution.t_private_seconds

    @property
    def t_shared_seconds(self) -> float:
        return self.execution.t_shared_seconds

    @property
    def t_total_seconds(self) -> float:
        return self.execution.t_total_seconds


class SoloOracle:
    """Runs functions alone on the machine and caches their measurements."""

    def __init__(
        self,
        machine: MachineSpec,
        *,
        contention_parameters: Optional[ContentionParameters] = None,
        engine_config: Optional[EngineConfig] = None,
    ) -> None:
        self._machine = machine
        self._contention_parameters = contention_parameters
        self._engine_config = engine_config or EngineConfig()
        self._cache: Dict[Tuple[str, float], SoloProfile] = {}

    @property
    def machine(self) -> MachineSpec:
        return self._machine

    @staticmethod
    def _key(spec: FunctionSpec) -> Tuple[str, float]:
        # Keyed on the instruction count as well so differently scaled copies
        # of the same benchmark never collide in the cache.
        return (spec.abbreviation, spec.total_instructions)

    def profile(self, spec: FunctionSpec) -> SoloProfile:
        """Return (possibly cached) solo measurements for ``spec``."""
        key = self._key(spec)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        profile = self._run_solo(spec)
        self._cache[key] = profile
        return profile

    def clear(self) -> None:
        self._cache.clear()

    def __contains__(self, abbreviation: str) -> bool:
        return any(key[0] == abbreviation for key in self._cache)

    def _run_solo(self, spec: FunctionSpec) -> SoloProfile:
        if spec.is_traffic_generator:
            raise ValueError("traffic generators are never billed or profiled solo")
        cpu = CPU(
            self._machine,
            smt_enabled=False,
            frequency_policy=FrequencyPolicy.FIXED,
            contention_parameters=self._contention_parameters,
        )
        engine = SimulationEngine(
            cpu, DedicatedCoreScheduler(), config=self._engine_config
        )
        invocation = engine.submit(spec, tags={"role": "solo"})
        completed = engine.run_until(
            lambda eng: invocation.is_completed, max_seconds=_MAX_SOLO_SECONDS
        )
        if not completed:
            raise RuntimeError(
                f"solo run of {spec.abbreviation} did not complete within "
                f"{_MAX_SOLO_SECONDS} simulated seconds"
            )
        startup = measure_startup(invocation) if invocation.startup_recorded else None
        return SoloProfile(execution=measure_invocation(invocation), startup=startup)
