"""Sandboxes.

Commercial serverless platforms execute each function inside a container or
micro-VM whose memory size is what the tenant is billed for.  For the
pricing study the sandbox is pure bookkeeping: an identity, the configured
memory size (the billing dimension of the pay-as-you-go formula) and the
language runtime it hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.runtimes import Language


@dataclass(frozen=True)
class Sandbox:
    """One sandbox (container / micro-VM) hosting a single invocation."""

    sandbox_id: int
    memory_mb: float
    language: Language

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")

    @property
    def memory_gb(self) -> float:
        return self.memory_mb / 1024.0
