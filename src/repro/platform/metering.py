"""Perf-like metering of completed invocations.

Litmus pricing needs two measurement windows per invocation:

* the **whole execution**: occupied time split into ``T_private`` and
  ``T_shared`` using the L2-miss stall-cycle counter (Section 5.2), and
* the **startup window** (the Litmus probe): the same split restricted to
  the language runtime's startup phases, plus the *machine-wide* L3 miss
  count observed during that window (Section 6, step 3).

Both are expressed here as value objects derived from an
:class:`repro.platform.invoker.Invocation`'s counters, mirroring how the
paper derives them from ``perf`` counter reads at phase boundaries.

The tail of the module is the *billing* side of metering: a
:class:`MeteringLedger` accumulates per-tenant GB-second charges from
completion events, and a :class:`MeterFaultInjector` models a lossy
delivery pipeline (each event independently dropped or double-delivered
with a seeded probability — the ``meter-drop`` / ``meter-dup`` fault
types of :mod:`repro.platform.faults`).  The ledger tracks the *true*
charge alongside the *billed* one, so a sweep can report exactly how much
billing error a metering fault introduces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.hardware.pmu import CounterSnapshot
from repro.platform.invoker import Invocation


@dataclass(frozen=True)
class InvocationMeasurement:
    """Billing-relevant measurements of one completed invocation."""

    function: str
    memory_gb: float
    occupied_seconds: float
    t_private_seconds: float
    t_shared_seconds: float
    instructions: float
    cycles: float
    l2_misses: float
    l3_misses: float
    mean_thread_occupancy: float

    @property
    def t_total_seconds(self) -> float:
        return self.t_private_seconds + self.t_shared_seconds

    @property
    def shared_fraction(self) -> float:
        if self.t_total_seconds <= 0:
            return 0.0
        return self.t_shared_seconds / self.t_total_seconds

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles


@dataclass(frozen=True)
class StartupMeasurement:
    """Litmus-probe window readings for one invocation."""

    function: str
    language: str
    instructions: float
    t_private_seconds: float
    t_shared_seconds: float
    private_cycles: float
    shared_cycles: float
    wall_seconds: float
    machine_l3_misses: float

    @property
    def t_total_seconds(self) -> float:
        return self.t_private_seconds + self.t_shared_seconds


def _split_seconds(snapshot: CounterSnapshot) -> tuple[float, float]:
    """Split a window's occupied seconds into (private, shared) components.

    The counters track cycles and the seconds the invocation occupied the
    processor; seconds are apportioned by the cycle split so the result is
    correct even when the clock frequency varied during the window.
    """
    if snapshot.cycles <= 0:
        return 0.0, 0.0
    shared_ratio = snapshot.shared_cycles / snapshot.cycles
    shared_seconds = snapshot.elapsed_seconds * shared_ratio
    private_seconds = snapshot.elapsed_seconds - shared_seconds
    return private_seconds, shared_seconds


def measure_invocation(invocation: Invocation) -> InvocationMeasurement:
    """Derive the billing measurements of a completed invocation."""
    if not invocation.is_completed:
        raise ValueError(
            f"invocation {invocation.invocation_id} has not completed; "
            "metering requires a finished execution"
        )
    snapshot = invocation.counters.snapshot()
    private_seconds, shared_seconds = _split_seconds(snapshot)
    return InvocationMeasurement(
        function=invocation.spec.abbreviation,
        memory_gb=invocation.spec.memory_gb,
        occupied_seconds=snapshot.elapsed_seconds,
        t_private_seconds=private_seconds,
        t_shared_seconds=shared_seconds,
        instructions=snapshot.instructions,
        cycles=snapshot.cycles,
        l2_misses=snapshot.l2_misses,
        l3_misses=snapshot.l3_misses,
        mean_thread_occupancy=invocation.mean_thread_occupancy,
    )


def measure_startup(invocation: Invocation) -> StartupMeasurement:
    """Derive the Litmus-probe readings from an invocation's startup window."""
    if invocation.startup_counters is None:
        raise ValueError(
            f"invocation {invocation.invocation_id} has no recorded startup window"
        )
    if (
        invocation.machine_counters_at_start is None
        or invocation.machine_counters_at_startup_end is None
    ):
        raise ValueError(
            f"invocation {invocation.invocation_id} is missing machine-wide "
            "counter snapshots for its startup window"
        )
    snapshot = invocation.startup_counters
    private_seconds, shared_seconds = _split_seconds(snapshot)
    machine_delta = invocation.machine_counters_at_startup_end.delta(
        invocation.machine_counters_at_start
    )
    wall_seconds = 0.0
    if invocation.startup_end_time is not None and invocation.start_time is not None:
        wall_seconds = invocation.startup_end_time - invocation.start_time
    return StartupMeasurement(
        function=invocation.spec.abbreviation,
        language=invocation.spec.language.value,
        instructions=snapshot.instructions,
        t_private_seconds=private_seconds,
        t_shared_seconds=shared_seconds,
        private_cycles=snapshot.private_cycles,
        shared_cycles=snapshot.shared_cycles,
        wall_seconds=wall_seconds,
        machine_l3_misses=machine_delta.l3_misses,
    )


@dataclass(frozen=True)
class TenantBilling:
    """Frozen per-tenant billing outcome of one scenario's metering stream.

    ``true_gb_seconds`` is what a perfect pipeline would have charged each
    function (tenant); ``billed_gb_seconds`` is what the possibly-faulty
    pipeline actually charged.  Both are sorted ``(function, gb_seconds)``
    tuples so the object is hashable, picklable, and bit-comparable across
    shard merges.
    """

    true_gb_seconds: Tuple[Tuple[str, float], ...] = ()
    billed_gb_seconds: Tuple[Tuple[str, float], ...] = ()
    events: int = 0
    dropped: int = 0
    duplicated: int = 0

    @property
    def true_total(self) -> float:
        return sum(v for _, v in self.true_gb_seconds)

    @property
    def billed_total(self) -> float:
        return sum(v for _, v in self.billed_gb_seconds)

    @property
    def billing_error_fraction(self) -> float:
        """Signed relative billing error: ``(billed - true) / true``."""
        true = self.true_total
        if true <= 0:
            return 0.0
        return (self.billed_total - true) / true

    def per_tenant_error(self) -> Dict[str, float]:
        """Signed relative billing error per function, by abbreviation."""
        true = dict(self.true_gb_seconds)
        billed = dict(self.billed_gb_seconds)
        errors: Dict[str, float] = {}
        for function, charge in true.items():
            if charge <= 0:
                continue
            errors[function] = (billed.get(function, 0.0) - charge) / charge
        return errors


class MeterFaultInjector:
    """Seeded drop/duplicate perturbation of one metering stream.

    One injector serves one machine's completion stream: decisions are
    drawn from dedicated :class:`random.Random` streams (one per fault
    kind), so the outcome depends only on the seeds and the order of that
    machine's own completions — never on co-resident scenarios or shard
    membership.  A drop consumes the event before duplication is even
    considered, mirroring a pipeline where the event is lost upstream of
    the replaying delivery layer.
    """

    def __init__(
        self,
        *,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        drop_seed: int = 0,
        duplicate_seed: int = 1,
    ) -> None:
        for name, p in (
            ("drop_probability", drop_probability),
            ("duplicate_probability", duplicate_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        self._drop_probability = drop_probability
        self._duplicate_probability = duplicate_probability
        self._drop_rng = random.Random(drop_seed)
        self._duplicate_rng = random.Random(duplicate_seed)

    def copies(self) -> int:
        """Delivered copies of the next event: 0 (dropped), 1, or 2."""
        if self._drop_probability > 0.0:
            if self._drop_rng.random() < self._drop_probability:
                return 0
        if self._duplicate_probability > 0.0:
            if self._duplicate_rng.random() < self._duplicate_probability:
                return 2
        return 1


@dataclass
class MeteringLedger:
    """Accumulates true vs billed GB-seconds per tenant for one scenario.

    Callers observe each completion with the delivered-copy count decided
    by the (per-machine) :class:`MeterFaultInjector`; ``copies=1`` is the
    healthy pipeline.  GB-seconds follow the serverless convention:
    occupied seconds × configured memory.
    """

    _true: Dict[str, float] = field(default_factory=dict)
    _billed: Dict[str, float] = field(default_factory=dict)
    events: int = 0
    dropped: int = 0
    duplicated: int = 0

    def observe(
        self, function: str, memory_gb: float, occupied_seconds: float, copies: int = 1
    ) -> None:
        if copies not in (0, 1, 2):
            raise ValueError(f"copies must be 0, 1 or 2, got {copies!r}")
        gb_seconds = memory_gb * occupied_seconds
        self._true[function] = self._true.get(function, 0.0) + gb_seconds
        self.events += 1
        if copies == 0:
            self.dropped += 1
            return
        if copies == 2:
            self.duplicated += 1
        self._billed[function] = self._billed.get(function, 0.0) + gb_seconds * copies

    @property
    def true_total(self) -> float:
        return sum(self._true.values())

    @property
    def billed_total(self) -> float:
        return sum(self._billed.values())

    def freeze(self) -> TenantBilling:
        return TenantBilling(
            true_gb_seconds=tuple(sorted(self._true.items())),
            billed_gb_seconds=tuple(sorted(self._billed.items())),
            events=self.events,
            dropped=self.dropped,
            duplicated=self.duplicated,
        )
