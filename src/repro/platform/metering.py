"""Perf-like metering of completed invocations.

Litmus pricing needs two measurement windows per invocation:

* the **whole execution**: occupied time split into ``T_private`` and
  ``T_shared`` using the L2-miss stall-cycle counter (Section 5.2), and
* the **startup window** (the Litmus probe): the same split restricted to
  the language runtime's startup phases, plus the *machine-wide* L3 miss
  count observed during that window (Section 6, step 3).

Both are expressed here as value objects derived from an
:class:`repro.platform.invoker.Invocation`'s counters, mirroring how the
paper derives them from ``perf`` counter reads at phase boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.pmu import CounterSnapshot
from repro.platform.invoker import Invocation


@dataclass(frozen=True)
class InvocationMeasurement:
    """Billing-relevant measurements of one completed invocation."""

    function: str
    memory_gb: float
    occupied_seconds: float
    t_private_seconds: float
    t_shared_seconds: float
    instructions: float
    cycles: float
    l2_misses: float
    l3_misses: float
    mean_thread_occupancy: float

    @property
    def t_total_seconds(self) -> float:
        return self.t_private_seconds + self.t_shared_seconds

    @property
    def shared_fraction(self) -> float:
        if self.t_total_seconds <= 0:
            return 0.0
        return self.t_shared_seconds / self.t_total_seconds

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles


@dataclass(frozen=True)
class StartupMeasurement:
    """Litmus-probe window readings for one invocation."""

    function: str
    language: str
    instructions: float
    t_private_seconds: float
    t_shared_seconds: float
    private_cycles: float
    shared_cycles: float
    wall_seconds: float
    machine_l3_misses: float

    @property
    def t_total_seconds(self) -> float:
        return self.t_private_seconds + self.t_shared_seconds


def _split_seconds(snapshot: CounterSnapshot) -> tuple[float, float]:
    """Split a window's occupied seconds into (private, shared) components.

    The counters track cycles and the seconds the invocation occupied the
    processor; seconds are apportioned by the cycle split so the result is
    correct even when the clock frequency varied during the window.
    """
    if snapshot.cycles <= 0:
        return 0.0, 0.0
    shared_ratio = snapshot.shared_cycles / snapshot.cycles
    shared_seconds = snapshot.elapsed_seconds * shared_ratio
    private_seconds = snapshot.elapsed_seconds - shared_seconds
    return private_seconds, shared_seconds


def measure_invocation(invocation: Invocation) -> InvocationMeasurement:
    """Derive the billing measurements of a completed invocation."""
    if not invocation.is_completed:
        raise ValueError(
            f"invocation {invocation.invocation_id} has not completed; "
            "metering requires a finished execution"
        )
    snapshot = invocation.counters.snapshot()
    private_seconds, shared_seconds = _split_seconds(snapshot)
    return InvocationMeasurement(
        function=invocation.spec.abbreviation,
        memory_gb=invocation.spec.memory_gb,
        occupied_seconds=snapshot.elapsed_seconds,
        t_private_seconds=private_seconds,
        t_shared_seconds=shared_seconds,
        instructions=snapshot.instructions,
        cycles=snapshot.cycles,
        l2_misses=snapshot.l2_misses,
        l3_misses=snapshot.l3_misses,
        mean_thread_occupancy=invocation.mean_thread_occupancy,
    )


def measure_startup(invocation: Invocation) -> StartupMeasurement:
    """Derive the Litmus-probe readings from an invocation's startup window."""
    if invocation.startup_counters is None:
        raise ValueError(
            f"invocation {invocation.invocation_id} has no recorded startup window"
        )
    if (
        invocation.machine_counters_at_start is None
        or invocation.machine_counters_at_startup_end is None
    ):
        raise ValueError(
            f"invocation {invocation.invocation_id} is missing machine-wide "
            "counter snapshots for its startup window"
        )
    snapshot = invocation.startup_counters
    private_seconds, shared_seconds = _split_seconds(snapshot)
    machine_delta = invocation.machine_counters_at_startup_end.delta(
        invocation.machine_counters_at_start
    )
    wall_seconds = 0.0
    if invocation.startup_end_time is not None and invocation.start_time is not None:
        wall_seconds = invocation.startup_end_time - invocation.start_time
    return StartupMeasurement(
        function=invocation.spec.abbreviation,
        language=invocation.spec.language.value,
        instructions=snapshot.instructions,
        t_private_seconds=private_seconds,
        t_shared_seconds=shared_seconds,
        private_cycles=snapshot.private_cycles,
        shared_cycles=snapshot.shared_cycles,
        wall_seconds=wall_seconds,
        machine_l3_misses=machine_delta.l3_misses,
    )
