"""Simulation event log.

The engine records coarse lifecycle events (submission, start, completion of
the startup window, completion of the invocation).  Figure 7 of the paper —
the timeline of Litmus tests observing congestion rise and fall as functions
come and go — is regenerated directly from this log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class EventKind(enum.Enum):
    SUBMIT = "submit"
    START = "start"
    STARTUP_COMPLETE = "startup-complete"
    FINISH = "finish"


@dataclass(frozen=True)
class Event:
    """One lifecycle event."""

    time_seconds: float
    kind: EventKind
    invocation_id: int
    function: str
    thread_id: Optional[int] = None
    details: Dict[str, float] = field(default_factory=dict)


class EventLog:
    """Append-only record of simulation events."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def append(self, event: Event) -> None:
        if self._events and event.time_seconds < self._events[-1].time_seconds - 1e-9:
            raise ValueError("events must be appended in time order")
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def all(self) -> List[Event]:
        return list(self._events)

    def of_kind(self, kind: EventKind) -> List[Event]:
        return [event for event in self._events if event.kind is kind]

    def for_invocation(self, invocation_id: int) -> List[Event]:
        return [
            event for event in self._events if event.invocation_id == invocation_id
        ]

    def between(self, start_seconds: float, end_seconds: float) -> List[Event]:
        return [
            event
            for event in self._events
            if start_seconds <= event.time_seconds <= end_seconds
        ]
