"""Serverless platform substrate.

This package provides the pieces of a FaaS platform that the paper's
evaluation needs: sandboxes, an invoker that tracks per-invocation state and
counters, placement schedulers (dedicated cores, temporal sharing, SMT), a
churn manager that keeps a target number of co-running functions alive, a
Perf-like metering layer, a solo-execution oracle (for ideal prices and
probe baselines) and the epoch-driven simulation engine that advances every
active invocation under the hardware contention model.
"""

from repro.platform.sandbox import Sandbox
from repro.platform.events import Event, EventKind, EventLog
from repro.platform.invoker import Invocation, InvocationState
from repro.platform.scheduler import (
    LeastOccupancyScheduler,
    DedicatedCoreScheduler,
    Scheduler,
    SwitchingOverheadModel,
)
from repro.platform.churn import ChurnManager
from repro.platform.drivers import RepeatingSubmitter, SubmitterGroup
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.metering import (
    InvocationMeasurement,
    StartupMeasurement,
    measure_invocation,
    measure_startup,
)
from repro.platform.oracle import SoloOracle, SoloProfile

__all__ = [
    "Sandbox",
    "Event",
    "EventKind",
    "EventLog",
    "Invocation",
    "InvocationState",
    "Scheduler",
    "LeastOccupancyScheduler",
    "DedicatedCoreScheduler",
    "SwitchingOverheadModel",
    "ChurnManager",
    "RepeatingSubmitter",
    "SubmitterGroup",
    "EngineConfig",
    "SimulationEngine",
    "InvocationMeasurement",
    "StartupMeasurement",
    "measure_invocation",
    "measure_startup",
    "SoloOracle",
    "SoloProfile",
]
