"""Placement schedulers and the temporal-sharing overhead model.

Two placement regimes appear in the paper:

* **One function per core** (Section 7.1): every invocation gets a dedicated
  hardware thread for its whole lifetime, so there is no temporal sharing
  and no context switching.
* **Temporal CPU sharing** (Section 7.2): many functions share a pool of
  cores; whenever a function is switched out its cached state is evicted by
  the next one, adding a ``T_private`` overhead that grows with the number
  of co-located functions and saturates around 20 of them (Figure 14).

The schedulers here implement placement only; time multiplexing itself is
performed by the engine, which gives every invocation queued on a thread an
equal share of each epoch.  :class:`SwitchingOverheadModel` captures the
saturating overhead curve and is reused by Method 1 of the pricing scheme,
which needs to *remove* this overhead before consulting its tables.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.hardware.cpu import CPU
from repro.platform.invoker import Invocation


@dataclass(frozen=True)
class SwitchingOverheadModel:
    """Saturating ``T_private`` inflation caused by temporal sharing.

    ``factor(n)`` follows ``1 + amplitude * (1 - exp(-(n - 1) / scale))``:
    1.0 for a dedicated thread, rising quickly over the first handful of
    co-located functions and flattening near ``1 + amplitude`` — the shape
    of Figure 14, which stabilises around 20 co-runners at roughly +2.5 %.
    """

    amplitude: float = 0.028
    scale_functions: float = 5.0

    def factor(self, co_located_functions: float) -> float:
        """Overhead multiplier for ``co_located_functions`` sharing a thread."""
        if co_located_functions < 1:
            raise ValueError("co_located_functions must be >= 1")
        growth = 1.0 - math.exp(-(co_located_functions - 1.0) / self.scale_functions)
        return 1.0 + self.amplitude * growth

    def saturation_factor(self) -> float:
        """The asymptotic overhead for a heavily shared thread."""
        return 1.0 + self.amplitude


class Scheduler(ABC):
    """Chooses the hardware thread a newly started invocation runs on."""

    @abstractmethod
    def place(self, invocation: Invocation, cpu: CPU) -> int:
        """Return the id of the hardware thread to run ``invocation`` on.

        Raises :class:`RuntimeError` if no thread can accept the invocation.
        """


class LeastOccupancyScheduler(Scheduler):
    """Place each invocation on the least-loaded allowed hardware thread."""

    def __init__(
        self,
        allowed_threads: Optional[Sequence[int]] = None,
        max_per_thread: Optional[int] = None,
    ) -> None:
        if max_per_thread is not None and max_per_thread < 1:
            raise ValueError("max_per_thread must be >= 1")
        self._allowed_threads = (
            None if allowed_threads is None else tuple(allowed_threads)
        )
        self._max_per_thread = max_per_thread

    @property
    def allowed_threads(self) -> Optional[Sequence[int]]:
        return self._allowed_threads

    @property
    def max_per_thread(self) -> Optional[int]:
        return self._max_per_thread

    def candidate_threads(self, cpu: CPU) -> Sequence[int]:
        if self._allowed_threads is None:
            return [thread.thread_id for thread in cpu.threads]
        return self._allowed_threads

    def place(self, invocation: Invocation, cpu: CPU) -> int:
        best_thread: Optional[int] = None
        best_occupancy: Optional[int] = None
        for thread_id in self.candidate_threads(cpu):
            thread = cpu.thread(thread_id)
            occupancy = thread.occupancy
            if self._max_per_thread is not None and occupancy >= self._max_per_thread:
                continue
            if best_occupancy is None or occupancy < best_occupancy:
                best_thread = thread_id
                best_occupancy = occupancy
        if best_thread is None:
            raise RuntimeError(
                f"no hardware thread can accept invocation "
                f"{invocation.invocation_id} ({invocation.spec.abbreviation}); "
                "all allowed threads are at capacity"
            )
        return best_thread


class DedicatedCoreScheduler(LeastOccupancyScheduler):
    """One invocation per hardware thread — the Section 7.1 regime."""

    def __init__(self, allowed_threads: Optional[Sequence[int]] = None) -> None:
        super().__init__(allowed_threads=allowed_threads, max_per_thread=1)
