"""Workload drivers used by the measurement harnesses.

The paper measures a *test* function by running it back-to-back many times
on the platform while co-runner churn keeps the congestion level steady.
:class:`RepeatingSubmitter` implements the back-to-back part: it pins a
function spec to a hardware thread (or lets the scheduler place it), runs it
a fixed number of times, and collects the completed invocations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.platform.engine import SimulationEngine
from repro.platform.invoker import Invocation
from repro.workloads.function import FunctionSpec

#: Tag value stamped on invocations owned by a RepeatingSubmitter.
TEST_ROLE = "test"


class RepeatingSubmitter:
    """Runs one function spec back-to-back for a fixed number of repetitions."""

    def __init__(
        self,
        spec: FunctionSpec,
        repetitions: int,
        thread_id: Optional[int] = None,
        role: str = TEST_ROLE,
    ) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self._spec = spec
        self._repetitions = repetitions
        self._thread_id = thread_id
        self._role = role
        self._submitted = 0
        self._completed: List[Invocation] = []
        self._current: Optional[Invocation] = None

    @property
    def spec(self) -> FunctionSpec:
        return self._spec

    @property
    def repetitions(self) -> int:
        return self._repetitions

    @property
    def completed(self) -> List[Invocation]:
        return list(self._completed)

    @property
    def done(self) -> bool:
        return len(self._completed) >= self._repetitions

    def attach(self, engine: SimulationEngine) -> None:
        """Register with the engine and submit the first repetition."""
        engine.add_finish_listener(self._on_finish)
        self._submit_next(engine)

    def _submit_next(self, engine: SimulationEngine) -> None:
        if self._submitted >= self._repetitions:
            self._current = None
            return
        self._current = engine.submit(
            self._spec,
            thread_id=self._thread_id,
            tags={"role": self._role, "driver_spec": self._spec.abbreviation},
        )
        self._submitted += 1

    def _on_finish(self, invocation: Invocation, engine: SimulationEngine) -> None:
        if self._current is None:
            return
        if invocation.invocation_id != self._current.invocation_id:
            return
        self._completed.append(invocation)
        self._submit_next(engine)


class WorkQueueDriver:
    """Runs a fixed list of invocations across a pool of hardware threads.

    The calibration harness uses this to run the reference functions and
    startup probes against a traffic generator: all pending items are queued
    up front, every allowed thread is filled up to ``max_per_thread``
    concurrent invocations, and whenever one of the driver's invocations
    finishes the next pending item takes its place.
    """

    def __init__(
        self,
        items: List[FunctionSpec],
        allowed_threads: List[int],
        max_per_thread: int = 1,
        role: str = "calibration",
    ) -> None:
        if not allowed_threads:
            raise ValueError("allowed_threads must not be empty")
        if max_per_thread < 1:
            raise ValueError("max_per_thread must be >= 1")
        self._pending: List[FunctionSpec] = list(items)
        self._allowed_threads = list(allowed_threads)
        self._max_per_thread = max_per_thread
        self._role = role
        self._in_flight: Dict[int, Invocation] = {}
        self._completed: List[Invocation] = []

    @property
    def completed(self) -> List[Invocation]:
        return list(self._completed)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def done(self) -> bool:
        return not self._pending and not self._in_flight

    def attach(self, engine: SimulationEngine) -> None:
        engine.add_finish_listener(self._on_finish)
        self._fill(engine)

    def completed_by_spec(self) -> Dict[str, List[Invocation]]:
        result: Dict[str, List[Invocation]] = {}
        for invocation in self._completed:
            result.setdefault(invocation.spec.abbreviation, []).append(invocation)
        return result

    def _fill(self, engine: SimulationEngine) -> None:
        while self._pending:
            thread_id = self._least_loaded_thread(engine)
            if thread_id is None:
                return
            spec = self._pending.pop(0)
            invocation = engine.submit(
                spec, thread_id=thread_id, tags={"role": self._role}
            )
            self._in_flight[invocation.invocation_id] = invocation

    def _least_loaded_thread(self, engine: SimulationEngine) -> Optional[int]:
        best_thread: Optional[int] = None
        best_occupancy: Optional[int] = None
        for thread_id in self._allowed_threads:
            occupancy = engine.cpu.thread(thread_id).occupancy
            if occupancy >= self._max_per_thread:
                continue
            if best_occupancy is None or occupancy < best_occupancy:
                best_thread = thread_id
                best_occupancy = occupancy
        return best_thread

    def _on_finish(self, invocation: Invocation, engine: SimulationEngine) -> None:
        if invocation.invocation_id not in self._in_flight:
            return
        del self._in_flight[invocation.invocation_id]
        self._completed.append(invocation)
        self._fill(engine)


class SubmitterGroup:
    """A collection of repeating submitters driven together.

    The harnesses place one submitter per test function (and, in the
    temporal-sharing configurations, additional submitters acting as pinned
    co-runners) and then run the engine until every submitter has finished
    its repetitions.
    """

    def __init__(self, submitters: List[RepeatingSubmitter]) -> None:
        self._submitters = list(submitters)

    @property
    def submitters(self) -> List[RepeatingSubmitter]:
        return list(self._submitters)

    def attach(self, engine: SimulationEngine) -> None:
        for submitter in self._submitters:
            submitter.attach(engine)

    @property
    def done(self) -> bool:
        return all(submitter.done for submitter in self._submitters)

    def completed_by_spec(self) -> Dict[str, List[Invocation]]:
        """Completed test invocations grouped by function abbreviation."""
        result: Dict[str, List[Invocation]] = {}
        for submitter in self._submitters:
            result.setdefault(submitter.spec.abbreviation, []).extend(
                submitter.completed
            )
        return result
