"""NumPy-vectorized fleet simulation backend.

The scalar :class:`repro.platform.engine.SimulationEngine` advances one
machine invocation-by-invocation in pure Python; that is the right tool for
the bit-exact committed figures, but it caps out far below the fleet scales
the roadmap asks for.  :class:`VectorEngine` represents an entire fleet —
many independent sharing domains ("machines") and every invocation running
on them — as NumPy arrays and evaluates the contention fixed point plus the
epoch advancement for *all* of them in one vectorized pass per epoch.

Semantics mirror the scalar engine's slow path operation for operation:

* every epoch, each runnable invocation receives ``dt / occupancy`` of its
  hardware thread (temporal sharing) times the temporal-switching
  multiplier,
* the contention fixed point iterates ``fixed_point_iterations`` times,
  warm-started from the previous epoch's penalties, with the cache
  water-fill, ring and memory queueing models applied per machine,
* invocations advance through their phase lists, splitting consumed cycles
  into private and L2-miss-stalled cycles and accumulating per-invocation
  and per-machine counters,
* startup (Litmus probe) windows and completions are detected at the same
  epoch boundaries, and completions fire finish listeners so the scalar
  drivers (``RepeatingSubmitter``, ``ChurnManager``) can be reused
  unchanged.

Per-invocation arithmetic keeps the scalar implementation's operand order,
and per-machine reductions use ``np.bincount`` (a sequential left-to-right
fold per bin, like the scalar sums), so vector and scalar runs agree to
float rounding noise — the property tests assert agreement at rtol=1e-9.
The backend is *not* bit-exact (summation orders differ at a few points by
design); the committed ``results/*.txt`` stay on the scalar engine.

Limitations (gated with explicit errors): SMT sharing domains and
event-log recording are not supported; randomness must live outside the
engine, exactly as with the scalar engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.hardware.frequency import FrequencyGovernor, FrequencyPolicy
from repro.hardware.contention import ContentionParameters
from repro.hardware.pmu import CounterSnapshot
from repro.hardware.topology import MachineSpec
from repro.platform.invoker import Invocation
from repro.platform.sandbox import Sandbox
from repro.platform.scheduler import SwitchingOverheadModel
from repro.workloads.function import FunctionSpec

#: Counter fields shared by the per-invocation and per-machine accumulators.
_COUNTER_FIELDS = (
    "cycles",
    "instructions",
    "stall_cycles_l2_miss",
    "l2_misses",
    "l3_misses",
    "context_switches",
)

#: Listener called when an invocation completes.  Receives the materialized
#: :class:`Invocation` handle (or the bare invocation index when the engine
#: was built with ``materialize_handles=False``) and the engine.
VectorFinishListener = Callable[[object, "VectorEngine"], None]


@dataclass(frozen=True)
class VectorEngineConfig:
    """Time-stepping parameters (mirrors the scalar ``EngineConfig``)."""

    epoch_seconds: float = 1e-3
    fixed_point_iterations: int = 2

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if self.fixed_point_iterations < 1:
            raise ValueError("fixed_point_iterations must be >= 1")


@dataclass
class VectorEngineStats:
    """Observability counters for the vectorized backend."""

    epochs: int = 0
    fixed_point_iterations: int = 0
    advance_passes: int = 0
    submissions: int = 0
    completions: int = 0


class _SpecTable:
    """Padded per-phase profile arrays for every distinct function spec."""

    def __init__(self) -> None:
        self._index: Dict[FunctionSpec, int] = {}
        self._by_id: Dict[int, int] = {}
        #: Keeps every id-cached spec object alive so ids cannot recycle.
        self._keepalive: List[FunctionSpec] = []
        self.specs: List[FunctionSpec] = []
        # Built lazily into dense arrays on demand.
        self._dirty = True
        self.phase_instructions: np.ndarray = np.zeros((0, 1))
        self.cpi_base: np.ndarray = np.zeros((0, 1))
        self.l2_mpki: np.ndarray = np.zeros((0, 1))
        self.working_set_mb: np.ndarray = np.zeros((0, 1))
        self.solo_l3_hit: np.ndarray = np.zeros((0, 1))
        self.mlp: np.ndarray = np.zeros((0, 1))
        self.phase_count: np.ndarray = np.zeros(0, dtype=np.int64)
        self.total_instructions: np.ndarray = np.zeros(0)
        self.startup_instructions: np.ndarray = np.zeros(0)
        self.is_traffic_generator: np.ndarray = np.zeros(0, dtype=bool)

    def intern(self, spec: FunctionSpec) -> int:
        # Keyed by object identity first: churn drivers resubmit the same
        # spec objects over and over, and hashing a FunctionSpec walks its
        # whole phase list.
        index = self._by_id.get(id(spec))
        if index is not None:
            return index
        index = self._index.get(spec)
        if index is None:
            if not spec.phases:
                raise ValueError(
                    f"function {spec.name!r} has no phases; the vector engine "
                    "requires at least one"
                )
            index = len(self.specs)
            self._index[spec] = index
            self.specs.append(spec)
            self._dirty = True
        self._by_id[id(spec)] = index
        self._keepalive.append(spec)
        return index

    def __getstate__(self) -> Dict[str, object]:
        # ``_by_id`` keys on ``id(spec)``; after unpickling every spec is a
        # new object, so stale ids could alias fresh ones and corrupt the
        # interning.  Drop the cache — ``intern`` repopulates it lazily via
        # the hash-based ``_index`` lookup (same indices, same arrays).
        state = self.__dict__.copy()
        state["_by_id"] = {}
        return state

    def rebuild(self) -> None:
        if not self._dirty:
            return
        count = len(self.specs)
        width = max(len(spec.phases) for spec in self.specs)
        # Padding uses 1.0 so padded slots can never divide by zero; they
        # are always masked out by the ``finished`` check before use.
        self.phase_instructions = np.full((count, width), 1.0)
        self.cpi_base = np.ones((count, width))
        self.l2_mpki = np.zeros((count, width))
        self.working_set_mb = np.zeros((count, width))
        self.solo_l3_hit = np.zeros((count, width))
        self.mlp = np.ones((count, width))
        self.phase_count = np.zeros(count, dtype=np.int64)
        self.total_instructions = np.zeros(count)
        self.startup_instructions = np.zeros(count)
        self.is_traffic_generator = np.zeros(count, dtype=bool)
        for s, spec in enumerate(self.specs):
            phases = spec.phases
            self.phase_count[s] = len(phases)
            self.total_instructions[s] = spec.total_instructions
            self.startup_instructions[s] = spec.startup_instructions
            self.is_traffic_generator[s] = spec.is_traffic_generator
            for p, phase in enumerate(phases):
                profile = phase.profile
                self.phase_instructions[s, p] = phase.instructions
                self.cpi_base[s, p] = profile.cpi_base
                self.l2_mpki[s, p] = profile.l2_mpki
                self.working_set_mb[s, p] = profile.working_set_mb
                self.solo_l3_hit[s, p] = profile.solo_l3_hit_fraction
                self.mlp[s, p] = profile.mlp
        # Stacked views so one fancy-index gathers every profile field.
        self.epoch_stack = np.stack(
            (
                self.cpi_base,
                self.l2_mpki,
                self.working_set_mb,
                self.solo_l3_hit,
                self.mlp,
            )
        )
        self.advance_stack = np.stack(
            (self.phase_instructions, self.cpi_base, self.l2_mpki, self.mlp)
        )
        self._dirty = False


class _VectorThreadView:
    """Occupancy view of one hardware thread (duck-types ``HardwareThread``)."""

    __slots__ = ("_engine", "_gthread")

    def __init__(self, engine: "VectorEngine", gthread: int) -> None:
        self._engine = engine
        self._gthread = gthread

    @property
    def occupancy(self) -> int:
        return len(self._engine._queues[self._gthread])

    @property
    def is_busy(self) -> bool:
        return self.occupancy > 0


class _VectorCPUFacade:
    """Minimal ``CPU`` facade so scalar drivers can query thread occupancy.

    Thread ids are machine-local ids of machine 0 — the facade exists for
    the single-machine harness adapters that reuse ``RepeatingSubmitter``
    and ``ChurnManager`` against a :class:`VectorEngine`.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: "VectorEngine") -> None:
        self._engine = engine

    @property
    def machine(self) -> MachineSpec:
        return self._engine.machine

    def thread(self, thread_id: int) -> _VectorThreadView:
        if not 0 <= thread_id < self._engine.threads_per_machine:
            raise KeyError(f"no hardware thread with id {thread_id}")
        return _VectorThreadView(self._engine, thread_id)


class VectorEngine:
    """Batched epoch engine over a fleet of independent machines.

    Construction parameters: ``machine`` describes the hardware every
    fleet machine shares; ``machines`` is the fleet size (each machine is
    an independent sharing domain); ``threads_per_machine`` defaults to
    the machine's core count (SMT domains are rejected — scalar-only);
    ``materialize_handles`` chooses between full
    :class:`~repro.platform.invoker.Invocation` handles (scalar-adapter
    compatible) and bare integer indices (cheaper at fleet scale, columns
    recycled after completion); ``initial_capacity`` pre-sizes the arrays.

    Drive it like the scalar engine: :meth:`submit` invocations, attach
    :meth:`add_finish_listener` callbacks, advance with :meth:`run_for` /
    :meth:`run_until`, read results via :meth:`machine_counters`,
    :attr:`completed`, and :attr:`stats`.
    """

    def __init__(
        self,
        machine: MachineSpec,
        *,
        machines: int = 1,
        threads_per_machine: Optional[int] = None,
        config: Optional[VectorEngineConfig] = None,
        switching_overhead: Optional[SwitchingOverheadModel] = None,
        contention_parameters: Optional[ContentionParameters] = None,
        frequency_policy: FrequencyPolicy = FrequencyPolicy.FIXED,
        materialize_handles: bool = True,
        initial_capacity: int = 1024,
    ) -> None:
        if machines < 1:
            raise ValueError("machines must be >= 1")
        self._machine = machine
        self._machines = machines
        self._threads_per_machine = (
            machine.cores if threads_per_machine is None else threads_per_machine
        )
        if self._threads_per_machine < 1:
            raise ValueError("threads_per_machine must be >= 1")
        self._config = config or VectorEngineConfig()
        self._switching = switching_overhead or SwitchingOverheadModel()
        self._parameters = contention_parameters or ContentionParameters()
        self._frequency_policy = frequency_policy
        self._materialize = materialize_handles
        self._time = 0.0
        self._stats = VectorEngineStats()
        self._specs = _SpecTable()
        self._finish_listeners: List[VectorFinishListener] = []
        self._cpu_facade = _VectorCPUFacade(self)

        total_threads = machines * self._threads_per_machine
        self._queues: List[List[int]] = [[] for _ in range(total_threads)]
        self._order: np.ndarray = np.zeros(0, dtype=np.int64)
        self._order_dirty = True

        # Derived machine constants.
        self._capacity_mb = machine.l3.size_mb
        self._utility_exponent = self._parameters.cache_utility_exponent
        self._line_size = float(machine.line_size_bytes)
        self._l3_latency = machine.l3.latency_cycles
        self._memory_latency = machine.memory_latency_cycles
        self._ring_peak = machine.ring_peak_accesses_per_us * 1e6
        self._memory_peak = machine.memory_bandwidth_gbs * 1e9
        self._max_util = self._parameters.max_utilization
        self._ring_q = self._parameters.ring_queueing_coefficient
        self._memory_q = self._parameters.memory_queueing_coefficient
        self._pressure = self._parameters.private_pressure_sensitivity
        self._switch_factors: Dict[int, float] = {}
        self._switch_table: Optional[np.ndarray] = None
        self._governor = FrequencyGovernor(machine=machine, policy=frequency_policy)
        self._turbo_cache: Dict[int, float] = {}
        self._fixed_frequency = np.full(machines, machine.base_frequency_ghz * 1e9)
        # Fault-injection hook: per-machine frequency multiplier.  ``None``
        # (every machine healthy) keeps the fault-free path untouched.
        self._freq_scale: Optional[np.ndarray] = None

        # Per-machine accumulators (the machine-wide PMU view).
        m = machines
        self._m_counters = {field: np.zeros(m) for field in _COUNTER_FIELDS}
        self._m_elapsed = np.zeros(m)

        # Per-invocation state arrays, grown by doubling.  In
        # non-materialized mode finished columns go onto a free list and are
        # reused, so a long churn sweep's footprint is bounded by the peak
        # *active* fleet, not by total completions; materialized handles keep
        # unique invocation ids for the scalar drivers, so there columns are
        # append-only (figure-scale runs are bounded anyway).
        self._count = 0
        self._next_sandbox_id = 0
        self._free: List[int] = []
        self._grow(max(initial_capacity, 16))
        self._handles: List[Optional[Invocation]] = []
        self._tags: List[Optional[Dict[str, str]]] = []
        self._completed: List[object] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def machine(self) -> MachineSpec:
        """The hardware description every machine of the fleet shares."""
        return self._machine

    @property
    def machines(self) -> int:
        """Number of independent sharing domains in the fleet."""
        return self._machines

    @property
    def threads_per_machine(self) -> int:
        """Hardware threads hosting functions on each machine."""
        return self._threads_per_machine

    @property
    def config(self) -> VectorEngineConfig:
        """Time-stepping parameters (epoch length, fixed-point iterations)."""
        return self._config

    @property
    def time_seconds(self) -> float:
        """Simulated time elapsed since construction."""
        return self._time

    @property
    def stats(self) -> VectorEngineStats:
        """Observability counters (epochs, submissions, completions, …)."""
        return self._stats

    @property
    def cpu(self) -> _VectorCPUFacade:
        """CPU facade for scalar drivers (single-machine adapters only)."""
        return self._cpu_facade

    @property
    def invocation_count(self) -> int:
        """High-water mark of concurrently tracked invocations.

        Total submissions live in ``stats.submissions``; in
        non-materialized mode finished columns are recycled, so this stays
        bounded by the peak active fleet.
        """
        return self._count

    @property
    def active_count(self) -> int:
        """Invocations currently running anywhere in the fleet."""
        return int(np.count_nonzero(self.active[: self._count]))

    @property
    def completed(self) -> List[object]:
        """Finished ``Invocation`` handles (materialized mode only).

        Non-materialized engines recycle finished columns and count
        completions in ``stats.completions`` instead of retaining them.
        """
        return list(self._completed)

    def machine_counters(self, machine: int = 0) -> CounterSnapshot:
        """Machine-wide counter snapshot (the Litmus-test view)."""
        return CounterSnapshot(
            cycles=float(self._m_counters["cycles"][machine]),
            instructions=float(self._m_counters["instructions"][machine]),
            stall_cycles_l2_miss=float(
                self._m_counters["stall_cycles_l2_miss"][machine]
            ),
            l2_misses=float(self._m_counters["l2_misses"][machine]),
            l3_misses=float(self._m_counters["l3_misses"][machine]),
            context_switches=float(self._m_counters["context_switches"][machine]),
            elapsed_seconds=float(self._m_elapsed[machine]),
        )

    @property
    def fleet_shared_stall_fraction(self) -> float:
        """Fleet-wide shared-resource stall share: stall cycles / cycles.

        A cheap read over the already-maintained counter arrays — the
        per-epoch telemetry samplers use it (repro.obs.series), so it
        must never mutate state.
        """
        cycles = float(self._m_counters["cycles"].sum())
        if cycles <= 0.0:
            return 0.0
        return float(self._m_counters["stall_cycles_l2_miss"].sum()) / cycles

    def set_frequency_scale(self, machines, scale: float) -> None:
        """Scale selected machines' operating frequency from now on.

        The ``freq-throttle`` fault hook: ``machines`` is one machine index
        or an iterable of them, ``scale`` the multiplier applied on top of
        the governed (fixed or turbo) frequency.  Restoring every machine
        to 1.0 drops the scale array entirely, so a healthy fleet pays
        nothing — and unthrottled machines are untouched even while others
        are throttled (``x * 1.0`` is exact in IEEE-754).
        """
        if scale <= 0:
            raise ValueError("frequency scale must be positive")
        if isinstance(machines, int):
            machines = (machines,)
        if self._freq_scale is None:
            if scale == 1.0:
                return
            self._freq_scale = np.ones(self._machines)
        for machine in machines:
            if not 0 <= machine < self._machines:
                raise ValueError(f"machine index {machine} out of range")
            self._freq_scale[machine] = scale
        if (self._freq_scale == 1.0).all():
            self._freq_scale = None

    def set_contention_parameters(
        self, parameters: Optional[ContentionParameters]
    ) -> None:
        """Apply new contention-model coefficients from now on.

        The hardware-drift hook (see :mod:`repro.calibrate.drift`), the
        vector twin of :meth:`SimulationEngine.set_contention_parameters`:
        the fleet keeps its state but every subsequent epoch's fixed point
        evaluates under the new coefficients.  The derived per-epoch
        constants are recomputed here; nothing else in the engine bakes
        them in, so both backends stay in lockstep when drift is applied
        at the same segment boundary.
        """
        self._parameters = parameters or ContentionParameters()
        self._utility_exponent = self._parameters.cache_utility_exponent
        self._max_util = self._parameters.max_utilization
        self._ring_q = self._parameters.ring_queueing_coefficient
        self._memory_q = self._parameters.memory_queueing_coefficient
        self._pressure = self._parameters.private_pressure_sensitivity

    def invocation_spec(self, index: int) -> FunctionSpec:
        """The function spec of a tracked invocation, by index.

        Valid while the invocation's column is live — including inside
        finish listeners, which fire before the column is recycled.
        """
        return self._specs.specs[int(self.spec_idx[index])]

    def invocation_elapsed_seconds(self, index: int) -> float:
        """Seconds a tracked invocation has occupied its processor.

        The metering pipeline's per-completion reading: same validity
        window as :meth:`invocation_spec`.
        """
        return float(self._ctr[6, index])

    def add_finish_listener(self, listener: VectorFinishListener) -> None:
        """Register a completion callback (handle-or-index, engine).

        Listeners may :meth:`submit` replacements from inside the callback
        — the churn pattern fleet sweeps rely on.
        """
        self._finish_listeners.append(listener)

    def thread_occupancy(self, machine: int, thread_id: int) -> int:
        """Invocations co-located on one machine-local hardware thread."""
        return len(self._queues[machine * self._threads_per_machine + thread_id])

    def __getstate__(self) -> Dict[str, object]:
        # Finish listeners are arbitrary closures over driver state and are
        # not picklable in general; whoever checkpoints an engine owns
        # re-attaching its listeners after restore (see ``repro.serve``).
        state = self.__dict__.copy()
        state["_finish_listeners"] = []
        return state

    # ------------------------------------------------------------------ #
    # Storage management
    # ------------------------------------------------------------------ #
    def _grow(self, capacity: int) -> None:
        def extend(array: Optional[np.ndarray], dtype=float) -> np.ndarray:
            fresh = np.zeros(capacity, dtype=dtype)
            if array is not None:
                fresh[: array.shape[0]] = array
            return fresh

        def extend2(array: Optional[np.ndarray], rows: int) -> np.ndarray:
            fresh = np.zeros((rows, capacity))
            if array is not None:
                fresh[:, : array.shape[1]] = array
            return fresh

        self.spec_idx = extend(getattr(self, "spec_idx", None), np.int64)
        self.machine_of = extend(getattr(self, "machine_of", None), np.int64)
        self.gthread = extend(getattr(self, "gthread", None), np.int64)
        self.active = extend(getattr(self, "active", None), bool)
        self.phase_index = extend(getattr(self, "phase_index", None), np.int64)
        self.into_phase = extend(getattr(self, "into_phase", None))
        self.retired_total = extend(getattr(self, "retired_total", None))
        #: Rows: cycles, instructions, stall, l2, l3, switches, elapsed.
        self._ctr = extend2(getattr(self, "_ctr", None), 7)
        self.occ_weighted = extend(getattr(self, "occ_weighted", None))
        self.occ_weight = extend(getattr(self, "occ_weight", None))
        #: Rows: l3_hit_fraction, l3_hit_latency, memory_latency, inflation.
        self._pen = extend2(getattr(self, "_pen", None), 4)
        self.has_penalty = extend(getattr(self, "has_penalty", None), bool)
        self.startup_recorded = extend(getattr(self, "startup_recorded", None), bool)
        self.watch_startup = extend(getattr(self, "watch_startup", None), bool)
        self.submit_time = extend(getattr(self, "submit_time", None))
        self.finish_time = extend(getattr(self, "finish_time", None))
        self._capacity = capacity

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def _least_loaded_thread(self, machine: int) -> int:
        base = machine * self._threads_per_machine
        best = 0
        best_occ: Optional[int] = None
        for local in range(self._threads_per_machine):
            occ = len(self._queues[base + local])
            if best_occ is None or occ < best_occ:
                best = local
                best_occ = occ
        return best

    def submit(
        self,
        spec: FunctionSpec,
        *,
        machine: int = 0,
        thread_id: Optional[int] = None,
        tags: Optional[Dict[str, str]] = None,
    ):
        """Start one invocation of ``spec``; returns its handle (or index).

        ``thread_id`` is machine-local; when omitted the least-occupied
        thread of the target machine hosts the invocation (the scalar
        ``LeastOccupancyScheduler`` rule).
        """
        if not 0 <= machine < self._machines:
            raise ValueError(f"machine {machine} out of range")
        if thread_id is None:
            thread_id = self._least_loaded_thread(machine)
        elif not 0 <= thread_id < self._threads_per_machine:
            raise ValueError(f"thread {thread_id} out of range")
        if self._free:
            index = self._free.pop()
            self._ctr[:, index] = 0.0
            self.occ_weighted[index] = 0.0
            self.occ_weight[index] = 0.0
        else:
            index = self._count
            if index >= self._capacity:
                self._grow(self._capacity * 2)
            self._count = index + 1
            self._handles.append(None)
            self._tags.append(None)

        spec_index = self._specs.intern(spec)
        gthread = machine * self._threads_per_machine + thread_id
        self.spec_idx[index] = spec_index
        self.machine_of[index] = machine
        self.gthread[index] = gthread
        self.active[index] = True
        self.phase_index[index] = 0
        self.into_phase[index] = 0.0
        self.retired_total[index] = 0.0
        self.has_penalty[index] = False
        self.startup_recorded[index] = False
        self.watch_startup[index] = not spec.is_traffic_generator
        self.submit_time[index] = self._time
        self._queues[gthread].append(index)
        self._order_dirty = True
        self._stats.submissions += 1

        if self._materialize:
            sandbox = Sandbox(
                sandbox_id=self._next_sandbox_id,
                memory_mb=spec.memory_mb,
                language=spec.language,
            )
            self._next_sandbox_id += 1
            handle = Invocation(
                invocation_id=index,
                spec=spec,
                sandbox=sandbox,
                submit_time=self._time,
                tags=dict(tags or {}),
            )
            handle.mark_started(thread_id, self._time)
            handle.machine_counters_at_start = self.machine_counters(machine)
            self._handles[index] = handle
            return handle
        self._tags[index] = dict(tags) if tags else None
        return index

    # ------------------------------------------------------------------ #
    # Time stepping
    # ------------------------------------------------------------------ #
    def run_for(self, seconds: float) -> None:
        """Advance the whole fleet by ``seconds`` of simulated time."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        target = self._time + seconds
        while self._time < target - 1e-12:
            self.run_epoch()

    def run_until(
        self, predicate: Callable[["VectorEngine"], bool], max_seconds: float
    ) -> bool:
        """Step epochs until ``predicate(engine)`` holds or time runs out."""
        if max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        deadline = self._time + max_seconds
        while self._time < deadline:
            if predicate(self):
                return True
            self.run_epoch()
        return predicate(self)

    def _runnable_order(self) -> np.ndarray:
        """Active invocation indices in (thread id, queue position) order.

        This is the order the scalar engine's ``_collect_runnable`` visits
        invocations in; per-machine reductions accumulate in this order so
        their floating-point folds match the scalar sums.
        """
        if self._order_dirty:
            order = [index for queue in self._queues for index in queue]
            self._order = np.array(order, dtype=np.int64)
            self._order_dirty = False
        return self._order

    def _switch_factor_table(self, max_occupancy: int) -> np.ndarray:
        """Switch factors for occupancies 0..max (``math.exp``-exact)."""
        table = self._switch_table
        if table is not None and table.size > max_occupancy:
            return table
        table = np.ones(max_occupancy + 1)
        for occ in range(1, max_occupancy + 1):
            factor = self._switch_factors.get(occ)
            if factor is None:
                factor = self._switching.factor(occ)
                self._switch_factors[occ] = factor
            table[occ] = factor
        self._switch_table = table
        return table

    def _frequency_hz(self, busy_threads: np.ndarray) -> np.ndarray:
        """Per-machine operating frequency, memoized per busy-thread count.

        Delegates to :class:`FrequencyGovernor` so the turbo curve has a
        single source of truth (and stays ``math.exp``-exact against the
        scalar engine).
        """
        if self._frequency_policy is FrequencyPolicy.FIXED:
            if self._freq_scale is not None:
                return self._fixed_frequency * self._freq_scale
            return self._fixed_frequency
        freqs = np.empty(self._machines)
        for m, busy in enumerate(busy_threads.tolist()):
            cached = self._turbo_cache.get(busy)
            if cached is None:
                cached = self._governor.frequency_hz(busy)
                self._turbo_cache[busy] = cached
            freqs[m] = cached
        if self._freq_scale is not None:
            freqs *= self._freq_scale
        return freqs

    def run_epoch(self) -> None:
        """Advance the whole fleet by one epoch."""
        self._stats.epochs += 1
        dt = self._config.epoch_seconds
        now = self._time + dt
        idx = self._runnable_order()
        if idx.size == 0:
            self._m_elapsed += dt
            self._time = now
            return
        self._specs.rebuild()
        specs = self._specs
        n = idx.size
        m_of = self.machine_of[idx]

        occ_per_thread = np.bincount(
            self.gthread[idx], minlength=self._machines * self._threads_per_machine
        )
        occ = occ_per_thread[self.gthread[idx]]
        busy = np.count_nonzero(
            occ_per_thread.reshape(self._machines, self._threads_per_machine), axis=1
        )
        frequency_hz = self._frequency_hz(busy)
        share = dt / occ
        multiplier = self._switch_factor_table(int(occ.max()))[occ]

        spec_i = self.spec_idx[idx]
        # Every runnable invocation is mid-execution, so its phase index is a
        # valid row of the spec table (finished ones left the queues).
        phase = self.phase_index[idx]
        cpi_base, l2_mpki, working_set, solo_hit, mlp = specs.epoch_stack[:, spec_i, phase]
        mpki_per_inst = l2_mpki / 1000.0
        frequency = frequency_hz[m_of]
        cycles_available = share * frequency
        remaining = np.maximum(
            specs.total_instructions[spec_i] - self.retired_total[idx], 0.0
        )
        need = np.minimum(working_set, self._capacity_mb)

        # ---------------- contention fixed point ---------------------- #
        hit_frac, hit_latency, mem_latency, inflation = self._pen[:, idx]
        has_pen = self.has_penalty[idx]
        all_pen = bool(has_pen.all())
        solo_stall = None
        if not all_pen:
            solo_stall = mpki_per_inst * (
                (solo_hit * self._l3_latency + (1.0 - solo_hit) * self._memory_latency)
                / mlp
            )
        for _ in range(self._config.fixed_point_iterations):
            self._stats.fixed_point_iterations += 1
            stall = mpki_per_inst * (
                (hit_frac * hit_latency + (1.0 - hit_frac) * mem_latency) / mlp
            )
            cpi_effective = cpi_base * inflation * multiplier + stall
            if not all_pen:
                stall = np.where(has_pen, stall, solo_stall)
                cpi_effective = np.where(
                    has_pen, cpi_effective, cpi_base * multiplier + stall
                )
            instructions = np.minimum(cycles_available / cpi_effective, remaining)
            rate = instructions * l2_mpki / 1000.0 / dt

            hit_frac = self._water_fill(rate, need, solo_hit, m_of)
            lookups = np.bincount(m_of, weights=rate, minlength=self._machines)
            dram_bytes = np.bincount(
                m_of,
                weights=rate * (1.0 - hit_frac) * self._line_size,
                minlength=self._machines,
            )
            ring_util = np.minimum(
                np.maximum(lookups / self._ring_peak, 0.0), self._max_util
            )
            bw_util = np.minimum(
                np.maximum(dram_bytes / self._memory_peak, 0.0), self._max_util
            )
            m_hit_latency = self._l3_latency * (
                1.0 + self._ring_q * ring_util / (1.0 - ring_util)
            )
            m_mem_latency = self._memory_latency * (
                1.0 + self._memory_q * bw_util / (1.0 - bw_util)
            )
            m_inflation = 1.0 + self._pressure * np.maximum(ring_util, bw_util)
            hit_latency = m_hit_latency[m_of]
            mem_latency = m_mem_latency[m_of]
            inflation = m_inflation[m_of]
            if not all_pen:
                all_pen = True
                has_pen = np.ones(n, dtype=bool)

        self._pen[:, idx] = (hit_frac, hit_latency, mem_latency, inflation)
        self.has_penalty[idx] = True

        # ---------------- epoch advancement --------------------------- #
        # The scalar advance recomputes ``share * frequency_hz``; the product
        # of the same two floats is bit-identical, so reuse the epoch's.
        budget = cycles_available.copy()
        phase_index = self.phase_index[idx].copy()
        into_phase = self.into_phase[idx].copy()
        retired_total = self.retired_total[idx].copy()
        watch = self.watch_startup[idx] & ~self.startup_recorded[idx]
        startup_instr = specs.startup_instructions[spec_i]
        phase_count = specs.phase_count[spec_i]
        stopped = np.zeros(n, dtype=bool)
        tot_cycles = np.zeros(n)
        tot_instr = np.zeros(n)
        tot_stall = np.zeros(n)
        tot_l2 = np.zeros(n)
        tot_l3 = np.zeros(n)
        hit_term = hit_frac * hit_latency + (1.0 - hit_frac) * mem_latency
        miss_fraction = 1.0 - hit_frac
        max_passes = int(specs.phase_count.max()) + 2
        for pass_no in range(max_passes):
            mask = (budget > 1.0) & (phase_index < phase_count) & ~stopped
            if pass_no == 0 and mask.all():
                # Every lane advances and no phase moved yet, so the
                # epoch-start profile gathers are still valid — no fancy
                # indexing, whole-array operations throughout.
                live = slice(None)
                p_instr = specs.phase_instructions[spec_i, phase]
                p_cpi = cpi_base
                p_mpki = l2_mpki
                stall = mpki_per_inst * (hit_term / mlp)
            else:
                live = np.nonzero(mask)[0]
                if live.size == 0:
                    break
                sp = spec_i[live]
                ph = phase_index[live]
                p_instr, p_cpi, p_mpki, p_mlp = specs.advance_stack[:, sp, ph]
                stall = (p_mpki / 1000.0) * (hit_term[live] / p_mlp)
            self._stats.advance_passes += 1
            cpi_effective = p_cpi * inflation[live] * multiplier[live] + stall
            possible = budget[live] / cpi_effective
            available = p_instr - into_phase[live]
            retired = np.minimum(possible, available)
            cycles = retired * cpi_effective
            tot_cycles[live] += cycles
            tot_instr[live] += retired
            tot_stall[live] += retired * stall
            l2 = retired * p_mpki / 1000.0
            tot_l2[live] += l2
            tot_l3[live] += l2 * miss_fraction[live]
            budget[live] -= cycles
            new_into = into_phase[live] + retired
            retired_total[live] += retired
            crossed = new_into >= p_instr - 1e-9
            phase_index[live] += crossed
            into_phase[live] = np.where(crossed, 0.0, new_into)
            stopped[live] |= watch[live] & (retired_total[live] >= startup_instr[live])

        self.phase_index[idx] = phase_index
        self.into_phase[idx] = into_phase
        self.retired_total[idx] = retired_total
        occupied = tot_cycles / frequency
        switches = (occ > 1).astype(float)
        self._ctr[:, idx] += np.stack(
            (tot_cycles, tot_instr, tot_stall, tot_l2, tot_l3, switches, occupied)
        )
        self.occ_weighted[idx] += occ * dt
        self.occ_weight[idx] += dt

        deltas = {
            "cycles": tot_cycles,
            "instructions": tot_instr,
            "stall_cycles_l2_miss": tot_stall,
            "l2_misses": tot_l2,
            "l3_misses": tot_l3,
            "context_switches": switches,
        }
        # Startup (Litmus probe) completions must snapshot the machine-wide
        # counters exactly as the scalar engine does: mid-epoch, after the
        # contributions of invocations at earlier runnable positions (and
        # the recorder itself) but before later ones.
        startup_now = np.nonzero(watch & (retired_total >= startup_instr))[0]
        if self._materialize and startup_now.size:
            self._record_startups(startup_now, idx, m_of, deltas, now)
        self.startup_recorded[idx[startup_now]] = True

        for field, values in deltas.items():
            self._m_counters[field] += np.bincount(
                m_of, weights=values, minlength=self._machines
            )
        self._m_elapsed += dt
        self._time = now

        finished_positions = np.nonzero(phase_index >= phase_count)[0]
        if finished_positions.size:
            self._finish(idx[finished_positions])

    # ------------------------------------------------------------------ #
    # Water-filling cache allocation (vectorized per machine)
    # ------------------------------------------------------------------ #
    def _water_fill(
        self,
        rate: np.ndarray,
        need: np.ndarray,
        solo_hit: np.ndarray,
        m_of: np.ndarray,
    ) -> np.ndarray:
        """Effective L3 hit fractions under capacity contention.

        Vectorized replica of ``SharedCacheModel.allocate``: capacity is
        split per machine proportionally to request rate, capped at each
        workload's working set (``need`` is the working set pre-clamped to
        the L3 capacity), surplus re-offered until no workload is capped;
        hit fractions degrade along the concave utility curve.
        """
        n = rate.shape[0]
        machines = self._machines
        capacity = self._capacity_mb
        wf_active = (rate > 0.0) & (need > 0.0)
        all_active = bool(wf_active.all())
        if not all_active:
            hit = solo_hit.copy()
            if not wf_active.any():
                return hit
        # First-pass fast path: with full capacity every machine hosting an
        # active workload is processing (active implies rate > 0, so its
        # machine's total rate is positive), and when no workload's
        # proportional share reaches its need the scalar loop distributes
        # the shares and stops — one pass, no bookkeeping.
        if all_active:
            total_rate = np.bincount(m_of, weights=rate, minlength=machines)
            share = capacity * rate / total_rate[m_of]
            capped = share >= need
        else:
            total_rate = np.bincount(
                m_of, weights=np.where(wf_active, rate, 0.0), minlength=machines
            )
            share = (
                capacity * rate / np.where(total_rate[m_of] > 0, total_rate[m_of], 1.0)
            )
            capped = wf_active & (share >= need)
        if capped.any():
            alloc = self._water_fill_slow(rate, need, m_of, wf_active)
        elif all_active:
            alloc = share
        else:
            alloc = np.where(wf_active, share, 0.0)
        if all_active:
            coverage = np.minimum(np.maximum(alloc / need, 0.0), 1.0)
            partial_mask = coverage < 1.0
        else:
            covered = need > 0.0
            coverage = np.minimum(
                np.maximum(alloc / np.where(covered, need, 1.0), 0.0), 1.0
            )
            coverage[~covered] = 0.0
            partial_mask = wf_active & covered & (coverage < 1.0)
        # The utility curve is the one transcendental in the per-epoch chain.
        # NumPy's SIMD ``power`` rounds differently from libm ``pow`` (the
        # scalar engine's ``**``) in ~5 % of cases, and a 1-ulp penalty
        # difference drifts the accumulated instruction counters onto the
        # scalar engine's exact startup-boundary comparisons — so the
        # partial-coverage lanes go through ``math.pow`` instead.  Coverage
        # values repeat heavily (invocations running the same phase of the
        # same spec on a machine share rate and need bit for bit), so pow
        # runs once per distinct value.
        exponent = self._utility_exponent
        curve = np.ones(n)
        partial = np.nonzero(partial_mask)[0]
        if partial.size:
            unique, inverse = np.unique(coverage[partial], return_inverse=True)
            powered = np.fromiter(
                (math.pow(value, exponent) for value in unique.tolist()),
                dtype=float,
                count=unique.size,
            )
            curve[partial] = powered[inverse]
        if all_active:
            return solo_hit * curve
        hit = np.where(wf_active & covered, solo_hit * curve, hit)
        return hit

    def _water_fill_slow(
        self,
        rate: np.ndarray,
        need: np.ndarray,
        m_of: np.ndarray,
        wf_active: np.ndarray,
    ) -> np.ndarray:
        """General multi-pass water-fill (some workload capped its share)."""
        n = rate.shape[0]
        machines = self._machines
        alloc = np.zeros(n)
        remaining = wf_active.copy()
        rem_capacity = np.full(machines, self._capacity_mb)
        machine_done = np.zeros(machines, dtype=bool)
        for _ in range(n + 1):
            live = remaining & ~machine_done[m_of]
            if not live.any():
                break
            total_rate = np.bincount(
                m_of, weights=np.where(live, rate, 0.0), minlength=machines
            )
            has_live = (
                np.bincount(m_of, weights=live.astype(float), minlength=machines) > 0
            )
            processing = (
                has_live & ~machine_done & (rem_capacity > 1e-12) & (total_rate > 0.0)
            )
            machine_done |= has_live & ~processing
            live &= processing[m_of]
            if not live.any():
                continue
            # The expression is evaluated for masked-out lanes too, whose
            # garbage values can overflow before np.where discards them.
            with np.errstate(over="ignore", invalid="ignore"):
                share = np.where(
                    live,
                    rem_capacity[m_of]
                    * rate
                    / np.where(total_rate[m_of] > 0, total_rate[m_of], 1.0),
                    0.0,
                )
            capped = live & (share >= need - alloc)
            has_capped = (
                np.bincount(m_of, weights=capped.astype(float), minlength=machines) > 0
            )
            # Machines with live workloads but no capped one: distribute the
            # proportional shares and stop (the scalar loop's final branch).
            final = processing & ~has_capped
            final_positions = live & final[m_of]
            alloc = np.where(final_positions, alloc + share, alloc)
            rem_capacity = np.where(final, 0.0, rem_capacity)
            machine_done |= final
            # Capped workloads take exactly their need; grants come off the
            # machine's remaining capacity sequentially in runnable order
            # (the scalar fold), so replicate that with a tiny Python loop.
            capped_positions = np.nonzero(capped)[0]
            for position in capped_positions.tolist():
                machine = m_of[position]
                grant = need[position] - alloc[position]
                alloc[position] = need[position]
                rem_capacity[machine] -= grant
            remaining &= ~capped
        return alloc

    # ------------------------------------------------------------------ #
    # Event handling
    # ------------------------------------------------------------------ #
    def _record_startups(
        self,
        positions: np.ndarray,
        idx: np.ndarray,
        m_of: np.ndarray,
        deltas: Dict[str, np.ndarray],
        now: float,
    ) -> None:
        """Fill probe-window snapshots for invocations finishing startup."""
        for position in positions.tolist():
            index = int(idx[position])
            handle = self._handles[index]
            if handle is None or handle.startup_recorded:
                continue
            machine = int(m_of[position])
            prefix = (m_of == machine) & (np.arange(idx.size) <= position)
            machine_end = CounterSnapshot(
                cycles=float(
                    self._m_counters["cycles"][machine]
                    + deltas["cycles"][prefix].sum()
                ),
                instructions=float(
                    self._m_counters["instructions"][machine]
                    + deltas["instructions"][prefix].sum()
                ),
                stall_cycles_l2_miss=float(
                    self._m_counters["stall_cycles_l2_miss"][machine]
                    + deltas["stall_cycles_l2_miss"][prefix].sum()
                ),
                l2_misses=float(
                    self._m_counters["l2_misses"][machine]
                    + deltas["l2_misses"][prefix].sum()
                ),
                l3_misses=float(
                    self._m_counters["l3_misses"][machine]
                    + deltas["l3_misses"][prefix].sum()
                ),
                context_switches=float(
                    self._m_counters["context_switches"][machine]
                    + deltas["context_switches"][prefix].sum()
                ),
                elapsed_seconds=float(self._m_elapsed[machine]),
            )
            self._sync_handle_counters(index)
            handle.record_startup_completion(now, machine_end)

    def _sync_handle_counters(self, index: int) -> None:
        handle = self._handles[index]
        if handle is None:
            return
        counters = handle.counters
        column = self._ctr[:, index]
        counters.cycles = float(column[0])
        counters.instructions = float(column[1])
        counters.stall_cycles_l2_miss = float(column[2])
        counters.l2_misses = float(column[3])
        counters.l3_misses = float(column[4])
        counters.context_switches = float(column[5])
        counters.elapsed_seconds = float(column[6])
        handle._occupancy_weighted_sum = float(self.occ_weighted[index])
        handle._occupancy_weight = float(self.occ_weight[index])

    def _finish(self, finished_indices: np.ndarray) -> None:
        """Retire finished invocations and fire listeners in runnable order."""
        materialize = self._materialize
        for index in finished_indices.tolist():
            self.active[index] = False
            self.finish_time[index] = self._time
            self._queues[int(self.gthread[index])].remove(index)
            self._order_dirty = True
            self._stats.completions += 1
            handle: object = index
            if materialize:
                handle = self._handles[index]
                self._sync_handle_counters(index)
                handle.mark_finished(self._time)
                self._completed.append(handle)
            for listener in list(self._finish_listeners):
                listener(handle, self)
            if not materialize:
                # Listener work (e.g. churn resubmission) is done with this
                # index; recycle its column so churn fleets stay bounded by
                # their active size.  (``completed`` therefore only tracks
                # materialized handles.)
                self._free.append(index)
