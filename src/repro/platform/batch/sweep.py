"""Fleet-scale scenario sweeps.

A :class:`FleetScenario` describes one co-running environment — a traffic
mix, a number of machines, and a co-location level (functions per hardware
thread).  :class:`FleetSweep` simulates a whole grid of scenarios at once:
with the vector backend every machine of every scenario lives in a single
:class:`repro.platform.batch.VectorEngine`, so the entire grid advances in
one batched NumPy pass per epoch.  The scalar backend runs the identical
scenarios machine-by-machine on the bit-exact
:class:`repro.platform.engine.SimulationEngine` (fast path enabled) and is
what the vector backend's throughput claims are measured against.

Both backends keep the congestion level steady the way the paper does:
whenever an invocation finishes, a new one drawn from the scenario's mix is
launched on the same hardware thread (deterministically, from a per-machine
seed), so the fleet size stays constant for the whole horizon.  The draw
policy defaults to a uniform random pick but any
:class:`repro.workloads.synthetic.TrafficModel` (weighted, round-robin, or
an explicit replayed trace) can be attached per scenario — this is how
declarative scenario specs (:mod:`repro.scenarios`) describe traffic.

Because every machine's churn stream is seeded by ``scenario.seed`` plus the
machine's index *within its scenario*, a scenario's results do not depend on
which other scenarios share the engine — the invariant that lets
:mod:`repro.platform.batch.shard` split a grid across worker processes and
merge results identical to the single-process run.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.hardware.cpu import CPU
from repro.hardware.topology import CASCADE_LAKE_5218, MachineSpec
from repro.platform.batch.vector_engine import VectorEngine, VectorEngineConfig
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.scheduler import LeastOccupancyScheduler
from repro.workloads.function import FunctionSpec
from repro.workloads.registry import FunctionRegistry, default_registry
from repro.workloads.synthetic import Mixer, TrafficModel

_BACKENDS = ("vector", "scalar")

#: Mix strings with a built-in meaning (anything else must name functions).
NAMED_MIXES = ("all", "memory-intensive")


def resolve_mix(mix: str, registry: FunctionRegistry) -> List[FunctionSpec]:
    """Resolve a mix string to a function pool, with token-level errors.

    Accepted forms: ``all`` (every Table-1 function), ``memory-intensive``
    (the eight high-L2-miss functions), or function abbreviations joined
    with ``+`` or ``,`` (e.g. ``bfs-py+float-py``).  Unknown tokens raise a
    :class:`ValueError` that names the offending token and lists the valid
    choices, so CLI users see what to fix rather than a bare traceback.
    """
    stripped = mix.strip()
    if stripped == "all":
        return registry.all()
    if stripped == "memory-intensive":
        return registry.memory_intensive()
    tokens = [token.strip() for token in re.split(r"[+,]", stripped) if token.strip()]
    if not tokens:
        raise ValueError(
            f"empty mix {mix!r}; valid mixes: {', '.join(NAMED_MIXES)}, or "
            f"function abbreviations joined with '+'"
        )
    pool: List[FunctionSpec] = []
    for token in tokens:
        if token not in registry:
            known = ", ".join(sorted(registry.abbreviations()))
            raise ValueError(
                f"unknown function {token!r} in mix {mix!r}; valid mixes: "
                f"{', '.join(NAMED_MIXES)}, or function abbreviations: {known}"
            )
        pool.append(registry.get(token))
    return pool


@dataclass(frozen=True)
class FleetScenario:
    """One cell of the sweep grid."""

    name: str
    #: Traffic mix: ``all``, ``memory-intensive`` or a comma-separated list
    #: of function abbreviations.
    mix: str = "all"
    machines: int = 1
    #: Functions co-located per hardware thread.
    colocation: int = 1
    #: Cores hosting functions on each machine (default: every core).
    cores_per_machine: Optional[int] = None
    seed: int = 2024
    #: Optional declarative churn-traffic description.  ``None`` means the
    #: default: uniform random draws from the pool the ``mix`` string names.
    #: A model with explicit ``functions`` overrides the ``mix`` pool.
    traffic: Optional[TrafficModel] = None

    def __post_init__(self) -> None:
        if self.machines < 1:
            raise ValueError("machines must be >= 1")
        if self.colocation < 1:
            raise ValueError("colocation must be >= 1")
        if self.cores_per_machine is not None and self.cores_per_machine < 1:
            raise ValueError("cores_per_machine must be >= 1")

    def cores(self, machine: MachineSpec) -> int:
        cores = self.cores_per_machine or machine.cores
        if cores > machine.cores:
            raise ValueError(
                f"scenario {self.name!r} wants {cores} cores but "
                f"{machine.name} has {machine.cores}"
            )
        return cores

    def fleet_size(self, machine: MachineSpec) -> int:
        """Concurrent invocations this scenario keeps alive."""
        return self.machines * self.cores(machine) * self.colocation


@dataclass(frozen=True)
class ScenarioResult:
    """Aggregate outcome of one scenario over the sweep horizon."""

    name: str
    backend: str
    fleet_size: int
    machines: int
    colocation: int
    submitted: int
    completed: int
    simulated_seconds: float
    instructions: float
    cycles: float
    stall_cycles: float
    l3_misses: float

    @property
    def throughput_per_machine_second(self) -> float:
        """Completed invocations per machine per simulated second."""
        denominator = self.machines * self.simulated_seconds
        return self.completed / denominator if denominator > 0 else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def shared_fraction(self) -> float:
        return self.stall_cycles / self.cycles if self.cycles > 0 else 0.0


@dataclass(frozen=True)
class FleetSweepResult:
    """Outcome of a full sweep on one backend."""

    backend: str
    scenarios: Tuple[ScenarioResult, ...]
    wall_seconds: float
    horizon_seconds: float

    @property
    def fleet_size(self) -> int:
        return sum(s.fleet_size for s in self.scenarios)

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.scenarios)

    def render(self) -> str:
        rows = [
            {
                "scenario": s.name,
                "machines": s.machines,
                "colocation": s.colocation,
                "fleet": s.fleet_size,
                "completed": s.completed,
                "throughput": s.throughput_per_machine_second,
                "ipc": s.ipc,
                "shared_frac": s.shared_fraction,
            }
            for s in self.scenarios
        ]
        table = format_table(
            rows,
            columns=(
                "scenario",
                "machines",
                "colocation",
                "fleet",
                "completed",
                "throughput",
                "ipc",
                "shared_frac",
            ),
            title=(
                f"Fleet sweep [{self.backend}]: {self.fleet_size} concurrent "
                f"invocations, {self.horizon_seconds:g}s horizon"
            ),
        )
        return table


def scenario_grid(
    mixes: Sequence[str],
    machine_counts: Sequence[int],
    colocations: Sequence[int],
    *,
    cores_per_machine: Optional[int] = None,
    seed: int = 2024,
) -> List[FleetScenario]:
    """The full cross product of mixes × machine counts × co-location."""
    scenarios: List[FleetScenario] = []
    for mix in mixes:
        for machines in machine_counts:
            for colocation in colocations:
                scenarios.append(
                    FleetScenario(
                        name=f"{mix}-m{machines}-c{colocation}",
                        mix=mix,
                        machines=machines,
                        colocation=colocation,
                        cores_per_machine=cores_per_machine,
                        seed=seed,
                    )
                )
    return scenarios


class FleetSweep:
    """Simulates a grid of fleet scenarios on either backend.

    Construction is cheap and side-effect free; :meth:`run` does the work.

    Parameters: ``scenarios`` is the compiled grid (see
    :func:`scenario_grid` or :func:`repro.scenarios.compile_spec`);
    ``machine`` the socket-level hardware description every machine of the
    fleet shares; ``horizon_seconds`` the simulated duration per scenario;
    ``epoch_seconds`` the engine time step; ``registry_scale`` shrinks every
    function body by that factor (the usual way to trade fidelity for
    wall-clock in large grids).

    To run a grid across worker processes instead of one engine, hand the
    same scenarios to :func:`repro.platform.batch.run_sharded` — results
    merge back identical to a single-process :meth:`run`.
    """

    def __init__(
        self,
        scenarios: Sequence[FleetScenario],
        *,
        machine: MachineSpec = CASCADE_LAKE_5218,
        horizon_seconds: float = 2.0,
        epoch_seconds: float = 1e-3,
        registry: Optional[FunctionRegistry] = None,
        registry_scale: float = 0.1,
    ) -> None:
        if not scenarios:
            raise ValueError("at least one scenario is required")
        if horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if registry_scale <= 0:
            raise ValueError("registry_scale must be positive")
        self._scenarios = list(scenarios)
        self._machine = machine
        self._horizon = horizon_seconds
        self._epoch_seconds = epoch_seconds
        base = registry or default_registry()
        self._registry = base if registry_scale == 1.0 else base.scaled(registry_scale)

    @property
    def scenarios(self) -> List[FleetScenario]:
        return list(self._scenarios)

    @property
    def fleet_size(self) -> int:
        return sum(s.fleet_size(self._machine) for s in self._scenarios)

    def _mix_pool(self, scenario: FleetScenario) -> List[FunctionSpec]:
        """The scenario's resolved function pool (explicit traffic pool wins)."""
        try:
            if scenario.traffic is not None and scenario.traffic.functions:
                return resolve_mix("+".join(scenario.traffic.functions), self._registry)
            return resolve_mix(scenario.mix, self._registry)
        except ValueError as error:
            raise ValueError(f"scenario {scenario.name!r}: {error}") from None

    def _make_mixer(self, scenario: FleetScenario, machine_index: int) -> Mixer:
        """One churn mixer per machine, seeded by the machine's index.

        The seed depends only on the scenario's own seed and the machine's
        index *within the scenario*, never on grid position or shard, so
        results are independent of how scenarios are batched or partitioned.
        """
        traffic = scenario.traffic or TrafficModel()
        pool = self._mix_pool(scenario)
        try:
            return traffic.build_mixer(pool, seed=scenario.seed + machine_index)
        except ValueError as error:
            raise ValueError(f"scenario {scenario.name!r}: {error}") from None

    def validate(self) -> None:
        """Resolve every scenario's mix and core count, raising on bad input.

        Callers that want clean user-facing errors (the CLI) run this before
        :meth:`run`, so failures during the simulation itself surface as
        real tracebacks rather than being mistaken for input errors.
        """
        for scenario in self._scenarios:
            self._make_mixer(scenario, 0)
            scenario.cores(self._machine)

    def run(self, backend: str = "vector") -> FleetSweepResult:
        """Simulate every scenario on ``backend`` (``vector`` or ``scalar``)."""
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        start = time.perf_counter()
        if backend == "vector":
            results = self._run_vector()
        else:
            results = self._run_scalar()
        wall = time.perf_counter() - start
        return FleetSweepResult(
            backend=backend,
            scenarios=tuple(results),
            wall_seconds=wall,
            horizon_seconds=self._horizon,
        )

    def compare(self) -> Tuple[FleetSweepResult, FleetSweepResult, float]:
        """Run both backends; returns (vector, scalar, speedup)."""
        vector = self.run("vector")
        scalar = self.run("scalar")
        speedup = scalar.wall_seconds / max(vector.wall_seconds, 1e-9)
        return vector, scalar, speedup

    # ------------------------------------------------------------------ #
    # Vector backend: one engine, every machine of every scenario
    # ------------------------------------------------------------------ #
    def _run_vector(self) -> List[ScenarioResult]:
        spec = self._machine
        total_machines = sum(s.machines for s in self._scenarios)
        engine = VectorEngine(
            spec,
            machines=total_machines,
            config=VectorEngineConfig(epoch_seconds=self._epoch_seconds),
            materialize_handles=False,
            initial_capacity=max(4 * self.fleet_size, 1024),
        )
        mixers: Dict[int, Mixer] = {}
        scenario_of_machine: Dict[int, int] = {}
        submitted = [0] * len(self._scenarios)
        completed = [0] * len(self._scenarios)

        offset = 0
        for s, scenario in enumerate(self._scenarios):
            cores = scenario.cores(spec)
            for machine in range(offset, offset + scenario.machines):
                scenario_of_machine[machine] = s
                mixers[machine] = self._make_mixer(scenario, machine - offset)
                for thread in range(cores):
                    for _ in range(scenario.colocation):
                        engine.submit(
                            mixers[machine].next(), machine=machine, thread_id=thread
                        )
                        submitted[s] += 1
            offset += scenario.machines

        def on_finish(index: object, eng: VectorEngine) -> None:
            machine = int(eng.machine_of[index])
            thread = int(eng.gthread[index]) - machine * eng.threads_per_machine
            s = scenario_of_machine[machine]
            completed[s] += 1
            eng.submit(mixers[machine].next(), machine=machine, thread_id=thread)
            submitted[s] += 1

        engine.add_finish_listener(on_finish)
        engine.run_for(self._horizon)

        results: List[ScenarioResult] = []
        offset = 0
        for s, scenario in enumerate(self._scenarios):
            machines = range(offset, offset + scenario.machines)
            instructions = cycles = stall = l3 = 0.0
            for machine in machines:
                counters = engine.machine_counters(machine)
                instructions += counters.instructions
                cycles += counters.cycles
                stall += counters.stall_cycles_l2_miss
                l3 += counters.l3_misses
            results.append(
                ScenarioResult(
                    name=scenario.name,
                    backend="vector",
                    fleet_size=scenario.fleet_size(spec),
                    machines=scenario.machines,
                    colocation=scenario.colocation,
                    submitted=submitted[s],
                    completed=completed[s],
                    simulated_seconds=self._horizon,
                    instructions=instructions,
                    cycles=cycles,
                    stall_cycles=stall,
                    l3_misses=l3,
                )
            )
            offset += scenario.machines
        return results

    # ------------------------------------------------------------------ #
    # Scalar backend: the fast-path engine, machine by machine
    # ------------------------------------------------------------------ #
    def _run_scalar(self) -> List[ScenarioResult]:
        spec = self._machine
        results: List[ScenarioResult] = []
        for scenario in self._scenarios:
            cores = scenario.cores(spec)
            submitted = 0
            completed = 0
            instructions = cycles = stall = l3 = 0.0
            for machine in range(scenario.machines):
                mixer = self._make_mixer(scenario, machine)
                engine = SimulationEngine(
                    CPU(spec),
                    LeastOccupancyScheduler(),
                    # No event log: the vector side keeps none, and a heavy
                    # churn horizon would otherwise grow it unboundedly and
                    # bias the recorded speedup in the vector's favour.
                    config=EngineConfig(
                        epoch_seconds=self._epoch_seconds, record_events=False
                    ),
                )
                counts = {"submitted": 0, "completed": 0}
                for thread in range(cores):
                    for _ in range(scenario.colocation):
                        engine.submit(mixer.next(), thread_id=thread)
                        counts["submitted"] += 1

                def on_finish(invocation, eng, mixer=mixer, counts=counts):
                    counts["completed"] += 1
                    eng.submit(mixer.next(), thread_id=invocation.thread_id)
                    counts["submitted"] += 1

                engine.add_finish_listener(on_finish)
                engine.run_for(self._horizon)
                submitted += counts["submitted"]
                completed += counts["completed"]
                counters = engine.cpu.global_counters
                instructions += counters.instructions
                cycles += counters.cycles
                stall += counters.stall_cycles_l2_miss
                l3 += counters.l3_misses
            results.append(
                ScenarioResult(
                    name=scenario.name,
                    backend="scalar",
                    fleet_size=scenario.fleet_size(spec),
                    machines=scenario.machines,
                    colocation=scenario.colocation,
                    submitted=submitted,
                    completed=completed,
                    simulated_seconds=self._horizon,
                    instructions=instructions,
                    cycles=cycles,
                    stall_cycles=stall,
                    l3_misses=l3,
                )
            )
        return results
