"""Fleet-scale scenario sweeps.

A :class:`FleetScenario` describes one co-running environment — a traffic
mix, a number of machines, and a co-location level (functions per hardware
thread).  :class:`FleetSweep` simulates a whole grid of scenarios at once:
with the vector backend every machine of every scenario lives in a single
:class:`repro.platform.batch.VectorEngine`, so the entire grid advances in
one batched NumPy pass per epoch.  The scalar backend runs the identical
scenarios machine-by-machine on the bit-exact
:class:`repro.platform.engine.SimulationEngine` (fast path enabled) and is
what the vector backend's throughput claims are measured against.

Both backends keep the congestion level steady the way the paper does:
whenever an invocation finishes, a new one drawn from the scenario's mix is
launched on the same hardware thread (deterministically, from a per-machine
seed), so the fleet size stays constant for the whole horizon.  The draw
policy defaults to a uniform random pick but any
:class:`repro.workloads.synthetic.TrafficModel` (weighted, round-robin, or
an explicit replayed trace) can be attached per scenario — this is how
declarative scenario specs (:mod:`repro.scenarios`) describe traffic.

Because every machine's churn stream is seeded by ``scenario.seed`` plus the
machine's index *within its scenario*, a scenario's results do not depend on
which other scenarios share the engine — the invariant that lets
:mod:`repro.platform.batch.shard` split a grid across worker processes and
merge results identical to the single-process run.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.hardware.cpu import CPU
from repro.hardware.topology import CASCADE_LAKE_5218, MachineSpec
from repro.obs.series import SeriesPoint
from repro.platform.batch.vector_engine import VectorEngine, VectorEngineConfig
from repro.platform.churn import WindowedBurst
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.faults import FAULT_ROLE, FaultCounters, FaultSpec, FaultStats
from repro.platform.metering import MeterFaultInjector, MeteringLedger, TenantBilling
from repro.platform.scheduler import LeastOccupancyScheduler
from repro.workloads.function import FunctionSpec
from repro.workloads.registry import FunctionRegistry, default_registry
from repro.workloads.synthetic import Mixer, TrafficModel, WorkloadMixer

#: Progress callback: receives a plain payload dict (see ``repro.obs``).
ProgressCallback = Callable[[Dict[str, object]], None]

_BACKENDS = ("vector", "scalar")

#: Mix strings with a built-in meaning (anything else must name functions).
NAMED_MIXES = ("all", "memory-intensive")


def resolve_mix(mix: str, registry: FunctionRegistry) -> List[FunctionSpec]:
    """Resolve a mix string to a function pool, with token-level errors.

    Accepted forms: ``all`` (every Table-1 function), ``memory-intensive``
    (the eight high-L2-miss functions), or function abbreviations joined
    with ``+`` or ``,`` (e.g. ``bfs-py+float-py``).  Unknown tokens raise a
    :class:`ValueError` that names the offending token and lists the valid
    choices, so CLI users see what to fix rather than a bare traceback.
    """
    stripped = mix.strip()
    if stripped == "all":
        return registry.all()
    if stripped == "memory-intensive":
        return registry.memory_intensive()
    tokens = [token.strip() for token in re.split(r"[+,]", stripped) if token.strip()]
    if not tokens:
        raise ValueError(
            f"empty mix {mix!r}; valid mixes: {', '.join(NAMED_MIXES)}, or "
            f"function abbreviations joined with '+'"
        )
    pool: List[FunctionSpec] = []
    for token in tokens:
        if token not in registry:
            known = ", ".join(sorted(registry.abbreviations()))
            raise ValueError(
                f"unknown function {token!r} in mix {mix!r}; valid mixes: "
                f"{', '.join(NAMED_MIXES)}, or function abbreviations: {known}"
            )
        pool.append(registry.get(token))
    return pool


@dataclass(frozen=True)
class FleetScenario:
    """One cell of the sweep grid."""

    name: str
    #: Traffic mix: ``all``, ``memory-intensive`` or a comma-separated list
    #: of function abbreviations.
    mix: str = "all"
    machines: int = 1
    #: Functions co-located per hardware thread.
    colocation: int = 1
    #: Cores hosting functions on each machine (default: every core).
    cores_per_machine: Optional[int] = None
    seed: int = 2024
    #: Optional declarative churn-traffic description.  ``None`` means the
    #: default: uniform random draws from the pool the ``mix`` string names.
    #: A model with explicit ``functions`` overrides the ``mix`` pool.
    traffic: Optional[TrafficModel] = None
    #: Faults applied to this scenario (already filtered by scenario glob —
    #: see :func:`repro.scenarios.expand_grid`).  Empty = healthy fleet.
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.machines < 1:
            raise ValueError("machines must be >= 1")
        if self.colocation < 1:
            raise ValueError("colocation must be >= 1")
        if self.cores_per_machine is not None and self.cores_per_machine < 1:
            raise ValueError("cores_per_machine must be >= 1")

    def cores(self, machine: MachineSpec) -> int:
        cores = self.cores_per_machine or machine.cores
        if cores > machine.cores:
            raise ValueError(
                f"scenario {self.name!r} wants {cores} cores but "
                f"{machine.name} has {machine.cores}"
            )
        return cores

    def fleet_size(self, machine: MachineSpec) -> int:
        """Concurrent invocations this scenario keeps alive."""
        return self.machines * self.cores(machine) * self.colocation


@dataclass(frozen=True)
class ScenarioResult:
    """Aggregate outcome of one scenario over the sweep horizon."""

    name: str
    backend: str
    fleet_size: int
    machines: int
    colocation: int
    submitted: int
    completed: int
    simulated_seconds: float
    instructions: float
    cycles: float
    stall_cycles: float
    l3_misses: float
    #: Per-tenant billing ledger; populated when metering was enabled
    #: (``FleetSweep(meter=True)`` or any fault on the scenario).
    billing: Optional[TenantBilling] = None
    #: Fault accounting; populated when the scenario declared faults.
    fault_stats: Optional[FaultStats] = None

    @property
    def throughput_per_machine_second(self) -> float:
        """Completed invocations per machine per simulated second."""
        denominator = self.machines * self.simulated_seconds
        return self.completed / denominator if denominator > 0 else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def shared_fraction(self) -> float:
        return self.stall_cycles / self.cycles if self.cycles > 0 else 0.0


@dataclass(frozen=True)
class FleetSweepResult:
    """Outcome of a full sweep on one backend."""

    backend: str
    scenarios: Tuple[ScenarioResult, ...]
    wall_seconds: float
    horizon_seconds: float

    @property
    def fleet_size(self) -> int:
        return sum(s.fleet_size for s in self.scenarios)

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.scenarios)

    def render(self) -> str:
        rows = [
            {
                "scenario": s.name,
                "machines": s.machines,
                "colocation": s.colocation,
                "fleet": s.fleet_size,
                "completed": s.completed,
                "throughput": s.throughput_per_machine_second,
                "ipc": s.ipc,
                "shared_frac": s.shared_fraction,
            }
            for s in self.scenarios
        ]
        table = format_table(
            rows,
            columns=(
                "scenario",
                "machines",
                "colocation",
                "fleet",
                "completed",
                "throughput",
                "ipc",
                "shared_frac",
            ),
            title=(
                f"Fleet sweep [{self.backend}]: {self.fleet_size} concurrent "
                f"invocations, {self.horizon_seconds:g}s horizon"
            ),
        )
        return table


@dataclass(frozen=True)
class _BoundaryAction:
    """One thing to do at a fault-window boundary."""

    kind: str  # "burst-open" | "throttle-open" | "throttle-close"
    fault: FaultSpec
    window: Tuple[float, float]


def _fault_boundaries(
    faults: Sequence[FaultSpec], horizon_seconds: float
) -> List[Tuple[float, List[_BoundaryAction]]]:
    """Time-sorted fault-window boundaries for one scenario.

    Both backends segment the horizon at exactly these times (and with the
    identical ``target = time + (boundary - time)`` arithmetic), so a fault
    takes effect at the same epoch on either engine.  Burst windows only
    need an opening boundary — their drivers stop resubmitting once the
    engine clock passes the window end; throttles need a closing boundary
    to restore the clock.
    """
    by_time: Dict[float, List[_BoundaryAction]] = {}
    for fault in faults:
        window = fault.window(horizon_seconds)
        if window is None:
            continue
        start, end = window
        if fault.type == "freq-throttle":
            by_time.setdefault(start, []).append(
                _BoundaryAction("throttle-open", fault, window)
            )
            if end < horizon_seconds:
                by_time.setdefault(end, []).append(
                    _BoundaryAction("throttle-close", fault, window)
                )
        else:
            by_time.setdefault(start, []).append(
                _BoundaryAction("burst-open", fault, window)
            )
    return sorted(by_time.items())


def advance_to_boundary(engine, until: float, *, on_epoch=None) -> None:
    """Step ``engine`` epoch-by-epoch up to the segment boundary ``until``.

    The one piece of arithmetic both backends must share for segmented
    horizons to agree: the target is computed as
    ``time + (until - time)`` so that accumulated float error in the
    engine clock cancels identically on either engine, and the loop stops
    within one epoch of the boundary.  Used by the fault windows here and
    by the hardware-drift boundaries of :mod:`repro.calibrate.drift` —
    any engine exposing ``time_seconds`` and ``run_epoch()`` qualifies.
    ``on_epoch`` (when given) runs after every stepped epoch.
    """
    target = engine.time_seconds + (until - engine.time_seconds)
    while engine.time_seconds < target - 1e-12:
        engine.run_epoch()
        if on_epoch is not None:
            on_epoch()


def _throttle_scale(active_factors: Sequence[float]) -> float:
    """Combined frequency multiplier of the currently open throttles."""
    scale = 1.0
    for factor in active_factors:
        scale *= factor
    return scale


class _BurstState:
    """Vector-side burst bookkeeping: one instance per opened burst window."""

    __slots__ = ("fault", "end_seconds", "mixers", "scenario_index")

    def __init__(
        self,
        fault: FaultSpec,
        end_seconds: float,
        mixers: Dict[int, WorkloadMixer],
        scenario_index: int,
    ) -> None:
        self.fault = fault
        self.end_seconds = end_seconds
        self.mixers = mixers
        self.scenario_index = scenario_index


def scenario_grid(
    mixes: Sequence[str],
    machine_counts: Sequence[int],
    colocations: Sequence[int],
    *,
    cores_per_machine: Optional[int] = None,
    seed: int = 2024,
) -> List[FleetScenario]:
    """The full cross product of mixes × machine counts × co-location."""
    scenarios: List[FleetScenario] = []
    for mix in mixes:
        for machines in machine_counts:
            for colocation in colocations:
                scenarios.append(
                    FleetScenario(
                        name=f"{mix}-m{machines}-c{colocation}",
                        mix=mix,
                        machines=machines,
                        colocation=colocation,
                        cores_per_machine=cores_per_machine,
                        seed=seed,
                    )
                )
    return scenarios


class FleetSweep:
    """Simulates a grid of fleet scenarios on either backend.

    Construction is cheap and side-effect free; :meth:`run` does the work.

    Parameters: ``scenarios`` is the compiled grid (see
    :func:`scenario_grid` or :func:`repro.scenarios.compile_spec`);
    ``machine`` the socket-level hardware description every machine of the
    fleet shares; ``horizon_seconds`` the simulated duration per scenario;
    ``epoch_seconds`` the engine time step; ``registry_scale`` shrinks every
    function body by that factor (the usual way to trade fidelity for
    wall-clock in large grids).

    To run a grid across worker processes instead of one engine, hand the
    same scenarios to :func:`repro.platform.batch.run_sharded` — results
    merge back identical to a single-process :meth:`run`.
    """

    def __init__(
        self,
        scenarios: Sequence[FleetScenario],
        *,
        machine: MachineSpec = CASCADE_LAKE_5218,
        horizon_seconds: float = 2.0,
        epoch_seconds: float = 1e-3,
        registry: Optional[FunctionRegistry] = None,
        registry_scale: float = 0.1,
        meter: bool = False,
    ) -> None:
        if not scenarios:
            raise ValueError("at least one scenario is required")
        if horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if registry_scale <= 0:
            raise ValueError("registry_scale must be positive")
        self._scenarios = list(scenarios)
        self._machine = machine
        self._horizon = horizon_seconds
        self._epoch_seconds = epoch_seconds
        base = registry or default_registry()
        self._registry = base if registry_scale == 1.0 else base.scaled(registry_scale)
        #: Bill per-tenant GB-seconds even for healthy scenarios.  Scenarios
        #: with any declared fault are always metered, so a faulted run and
        #: its faults-stripped baseline both carry billing ledgers.
        self._meter = meter

    @property
    def scenarios(self) -> List[FleetScenario]:
        return list(self._scenarios)

    @property
    def fleet_size(self) -> int:
        return sum(s.fleet_size(self._machine) for s in self._scenarios)

    @property
    def machine_spec(self) -> MachineSpec:
        """The hardware description every machine of the fleet shares."""
        return self._machine

    @property
    def horizon_seconds(self) -> float:
        """Simulated duration per scenario."""
        return self._horizon

    @property
    def epoch_seconds(self) -> float:
        """Engine time step."""
        return self._epoch_seconds

    def _mix_pool(self, scenario: FleetScenario) -> List[FunctionSpec]:
        """The scenario's resolved function pool (explicit traffic pool wins)."""
        try:
            if scenario.traffic is not None and scenario.traffic.functions:
                return resolve_mix("+".join(scenario.traffic.functions), self._registry)
            return resolve_mix(scenario.mix, self._registry)
        except ValueError as error:
            raise ValueError(f"scenario {scenario.name!r}: {error}") from None

    def _make_mixer(self, scenario: FleetScenario, machine_index: int) -> Mixer:
        """One churn mixer per machine, seeded by the machine's index.

        The seed depends only on the scenario's own seed and the machine's
        index *within the scenario*, never on grid position or shard, so
        results are independent of how scenarios are batched or partitioned.
        """
        traffic = scenario.traffic or TrafficModel()
        pool = self._mix_pool(scenario)
        try:
            return traffic.build_mixer(pool, seed=scenario.seed + machine_index)
        except ValueError as error:
            raise ValueError(f"scenario {scenario.name!r}: {error}") from None

    def validate(self) -> None:
        """Resolve every scenario's mix and core count, raising on bad input.

        Callers that want clean user-facing errors (the CLI) run this before
        :meth:`run`, so failures during the simulation itself surface as
        real tracebacks rather than being mistaken for input errors.
        """
        for scenario in self._scenarios:
            self._make_mixer(scenario, 0)
            scenario.cores(self._machine)

    def run(
        self, backend: str = "vector", *, progress: Optional[ProgressCallback] = None
    ) -> FleetSweepResult:
        """Simulate every scenario on ``backend`` (``vector`` or ``scalar``).

        ``progress``, when given, receives payload dicts (see
        :mod:`repro.obs`) a few times per second while the sweep advances,
        plus one final payload with ``done=True``.  Observability never
        changes results: the instrumented paths step the same epochs with
        the same arithmetic as the plain ones.
        """
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        start = time.perf_counter()
        if backend == "vector":
            results = self._run_vector(progress)
        else:
            results = self._run_scalar(progress)
        wall = time.perf_counter() - start
        return FleetSweepResult(
            backend=backend,
            scenarios=tuple(results),
            wall_seconds=wall,
            horizon_seconds=self._horizon,
        )

    def compare(self) -> Tuple[FleetSweepResult, FleetSweepResult, float]:
        """Run both backends; returns (vector, scalar, speedup)."""
        vector = self.run("vector")
        scalar = self.run("scalar")
        speedup = scalar.wall_seconds / max(vector.wall_seconds, 1e-9)
        return vector, scalar, speedup

    # ------------------------------------------------------------------ #
    # Fault plumbing shared by both backends
    # ------------------------------------------------------------------ #
    def _scenario_metered(self, scenario: FleetScenario) -> bool:
        return self._meter or bool(scenario.faults)

    def _meter_injector(
        self, scenario: FleetScenario, machine_index: int
    ) -> Optional[MeterFaultInjector]:
        """The machine's metering-fault injector, or ``None`` when healthy.

        Seeded per machine (``fault.seed`` + the machine's index within its
        scenario) so decisions depend only on that machine's own completion
        order — shard membership and co-resident scenarios cannot change
        them.  When a spec declares several faults of the same meter type
        matching one scenario, the last one wins.
        """
        drop_p = dup_p = 0.0
        drop_seed = dup_seed = 0
        for fault in scenario.faults:
            if fault.type == "meter-drop":
                drop_p = fault.probability
                drop_seed = fault.seed + machine_index
            elif fault.type == "meter-dup":
                dup_p = fault.probability
                dup_seed = fault.seed + machine_index
        if drop_p == 0.0 and dup_p == 0.0:
            return None
        return MeterFaultInjector(
            drop_probability=drop_p,
            duplicate_probability=dup_p,
            drop_seed=drop_seed,
            duplicate_seed=dup_seed,
        )

    def _burst_mixer(
        self, scenario: FleetScenario, fault: FaultSpec, machine_index: int
    ) -> WorkloadMixer:
        """The burst draw stream for one fault on one machine.

        ``churn-spike`` surges the scenario's own mix; ``noisy-neighbor``
        draws from the fault's explicit function list or, by default, the
        memory-intensive mix.  Seeded like the steady mixers: by the
        machine's index within its scenario, never by grid position.
        """
        if fault.type == "noisy-neighbor":
            if fault.functions:
                pool = resolve_mix("+".join(fault.functions), self._registry)
            else:
                pool = self._registry.memory_intensive()
        else:
            pool = self._mix_pool(scenario)
        return WorkloadMixer(pool, seed=fault.seed + machine_index)

    def _nominal_throttled_epochs(self, scenario: FleetScenario) -> int:
        """Machine-epochs the scenario nominally spends throttled."""
        total = 0
        for fault in scenario.faults:
            if fault.type != "freq-throttle":
                continue
            window = fault.window(self._horizon)
            if window is None:
                continue
            total += int(round((window[1] - window[0]) / self._epoch_seconds))
        return total * scenario.machines

    def _fill_meter_counts(
        self, counters: Optional[FaultCounters], ledger: Optional[MeteringLedger]
    ) -> None:
        if counters is None or ledger is None:
            return
        counters.meter_events = ledger.events
        counters.meter_dropped = ledger.dropped
        counters.meter_duplicated = ledger.duplicated

    def _progress_payload(
        self,
        backend: str,
        *,
        scenarios_done: int,
        epochs_done: int,
        epochs_total: int,
        completions: int,
        submissions: int,
        counters: Sequence[Optional[FaultCounters]],
        ledgers: Sequence[Optional[MeteringLedger]],
        done: bool = False,
    ) -> Dict[str, object]:
        injections = dropped = duplicated = 0
        billed = true = 0.0
        for counter in counters:
            if counter is not None:
                injections += counter.spike_submissions + counter.neighbor_submissions
        for ledger in ledgers:
            if ledger is not None:
                dropped += ledger.dropped
                duplicated += ledger.duplicated
                billed += ledger.billed_total
                true += ledger.true_total
        return {
            "backend": backend,
            "scenarios_total": len(self._scenarios),
            "scenarios_done": scenarios_done,
            "epochs_done": epochs_done,
            "epochs_total": epochs_total,
            "completions": completions,
            "submissions": submissions,
            "fault_injections": injections,
            "meter_dropped": dropped,
            "meter_duplicated": duplicated,
            "billed_gb_seconds": billed,
            "true_gb_seconds": true,
            "done": done,
        }

    # ------------------------------------------------------------------ #
    # Vector backend: one engine, every machine of every scenario
    # ------------------------------------------------------------------ #
    def _run_vector(
        self, progress: Optional[ProgressCallback] = None
    ) -> List[ScenarioResult]:
        spec = self._machine
        total_machines = sum(s.machines for s in self._scenarios)
        engine = VectorEngine(
            spec,
            machines=total_machines,
            config=VectorEngineConfig(epoch_seconds=self._epoch_seconds),
            materialize_handles=False,
            initial_capacity=max(4 * self.fleet_size, 1024),
        )
        mixers: Dict[int, Mixer] = {}
        scenario_of_machine: Dict[int, int] = {}
        submitted = [0] * len(self._scenarios)
        completed = [0] * len(self._scenarios)
        machine_offset = [0] * len(self._scenarios)

        offset = 0
        for s, scenario in enumerate(self._scenarios):
            cores = scenario.cores(spec)
            machine_offset[s] = offset
            for machine in range(offset, offset + scenario.machines):
                scenario_of_machine[machine] = s
                mixers[machine] = self._make_mixer(scenario, machine - offset)
                for thread in range(cores):
                    for _ in range(scenario.colocation):
                        engine.submit(
                            mixers[machine].next(), machine=machine, thread_id=thread
                        )
                        submitted[s] += 1
            offset += scenario.machines

        ledgers: List[Optional[MeteringLedger]] = [
            MeteringLedger() if self._scenario_metered(s) else None
            for s in self._scenarios
        ]
        fault_counters: List[Optional[FaultCounters]] = [
            FaultCounters() if s.faults else None for s in self._scenarios
        ]
        boundaries: Dict[float, List[Tuple[int, _BoundaryAction]]] = {}
        for s, scenario in enumerate(self._scenarios):
            if fault_counters[s] is not None:
                fault_counters[s].throttled_machine_epochs = (
                    self._nominal_throttled_epochs(scenario)
                )
            for when, actions in _fault_boundaries(scenario.faults, self._horizon):
                boundaries.setdefault(when, []).extend((s, a) for a in actions)
        plain = (
            progress is None
            and not boundaries
            and not any(ledger is not None for ledger in ledgers)
        )

        if plain:

            def on_finish(index: object, eng: VectorEngine) -> None:
                machine = int(eng.machine_of[index])
                thread = int(eng.gthread[index]) - machine * eng.threads_per_machine
                s = scenario_of_machine[machine]
                completed[s] += 1
                eng.submit(mixers[machine].next(), machine=machine, thread_id=thread)
                submitted[s] += 1

            engine.add_finish_listener(on_finish)
            engine.run_for(self._horizon)
        else:
            self._run_vector_instrumented(
                engine,
                mixers,
                scenario_of_machine,
                machine_offset,
                submitted,
                completed,
                ledgers,
                fault_counters,
                boundaries,
                progress,
            )

        for s in range(len(self._scenarios)):
            self._fill_meter_counts(fault_counters[s], ledgers[s])

        results: List[ScenarioResult] = []
        offset = 0
        for s, scenario in enumerate(self._scenarios):
            machines = range(offset, offset + scenario.machines)
            instructions = cycles = stall = l3 = 0.0
            for machine in machines:
                counters = engine.machine_counters(machine)
                instructions += counters.instructions
                cycles += counters.cycles
                stall += counters.stall_cycles_l2_miss
                l3 += counters.l3_misses
            results.append(
                ScenarioResult(
                    name=scenario.name,
                    backend="vector",
                    fleet_size=scenario.fleet_size(spec),
                    machines=scenario.machines,
                    colocation=scenario.colocation,
                    submitted=submitted[s],
                    completed=completed[s],
                    simulated_seconds=self._horizon,
                    instructions=instructions,
                    cycles=cycles,
                    stall_cycles=stall,
                    l3_misses=l3,
                    billing=None if ledgers[s] is None else ledgers[s].freeze(),
                    fault_stats=(
                        None
                        if fault_counters[s] is None
                        else fault_counters[s].freeze()
                    ),
                )
            )
            offset += scenario.machines
        return results

    def _run_vector_instrumented(
        self,
        engine: VectorEngine,
        mixers: Dict[int, Mixer],
        scenario_of_machine: Dict[int, int],
        machine_offset: List[int],
        submitted: List[int],
        completed: List[int],
        ledgers: List[Optional[MeteringLedger]],
        fault_counters: List[Optional[FaultCounters]],
        boundaries: Dict[float, List[Tuple[int, "_BoundaryAction"]]],
        progress: Optional[ProgressCallback],
    ) -> None:
        """The fault/metering/metrics-aware vector drive loop.

        Steps the very same epochs as ``run_for`` would — the horizon is
        segmented at fault boundaries with the identical
        ``target = time + (boundary - time)`` float arithmetic, so with no
        faults declared this path is bit-exact against the plain one.
        """
        injectors: Dict[int, MeterFaultInjector] = {}
        for machine, s in scenario_of_machine.items():
            if ledgers[s] is not None:
                injector = self._meter_injector(
                    self._scenarios[s], machine - machine_offset[s]
                )
                if injector is not None:
                    injectors[machine] = injector
        burst_of: Dict[int, _BurstState] = {}

        def on_finish(index: object, eng: VectorEngine) -> None:
            machine = int(eng.machine_of[index])
            s = scenario_of_machine[machine]
            burst = burst_of.pop(index, None)
            if burst is not None:
                fault_counters[s].count_burst_finish(burst.fault.type)
                if eng.time_seconds < burst.end_seconds:
                    replacement = eng.submit(
                        burst.mixers[machine].next(), machine=machine
                    )
                    burst_of[replacement] = burst
                    fault_counters[s].count_burst_submit(burst.fault.type)
                return
            ledger = ledgers[s]
            if ledger is not None:
                function = eng.invocation_spec(index)
                injector = injectors.get(machine)
                ledger.observe(
                    function.abbreviation,
                    function.memory_gb,
                    eng.invocation_elapsed_seconds(index),
                    injector.copies() if injector is not None else 1,
                )
            thread = int(eng.gthread[index]) - machine * eng.threads_per_machine
            completed[s] += 1
            eng.submit(mixers[machine].next(), machine=machine, thread_id=thread)
            submitted[s] += 1

        engine.add_finish_listener(on_finish)

        epochs_total = int(round(self._horizon / self._epoch_seconds))

        def emit(done: bool = False) -> None:
            if progress is None:
                return
            progress(
                self._progress_payload(
                    "vector",
                    scenarios_done=len(self._scenarios) if done else 0,
                    epochs_done=engine.stats.epochs,
                    epochs_total=epochs_total,
                    completions=sum(completed),
                    submissions=sum(submitted),
                    counters=fault_counters,
                    ledgers=ledgers,
                    done=done,
                )
            )

        # Per-epoch series sampling is duck-typed: a MetricsEmitter with a
        # series budget exposes ``epoch_sample`` (repro.obs.series); plain
        # callbacks don't, and pay nothing.  Sampling is read-only — it
        # sums counters the engines already maintain — so it cannot
        # perturb the simulated numbers.
        sampler = (
            None if progress is None else getattr(progress, "epoch_sample", None)
        )

        def sample_epoch() -> None:
            injections = dropped = 0
            billed = true = 0.0
            for counter in fault_counters:
                if counter is not None:
                    injections += (
                        counter.spike_submissions + counter.neighbor_submissions
                    )
            for ledger in ledgers:
                if ledger is not None:
                    dropped += ledger.dropped
                    billed += ledger.billed_total
                    true += ledger.true_total
            sampler(
                SeriesPoint(
                    shard="",
                    epoch=int(engine.stats.epochs),
                    time_seconds=float(engine.time_seconds),
                    completions=sum(completed),
                    shared_stall_fraction=engine.fleet_shared_stall_fraction,
                    fault_injections=injections,
                    meter_dropped=dropped,
                    billing_error_fraction=(
                        (billed - true) / true if true > 0 else 0.0
                    ),
                )
            )

        def on_epoch() -> None:
            if sampler is not None:
                sample_epoch()
            if progress is not None and engine.stats.epochs % 64 == 0:
                emit()

        def advance(until: float) -> None:
            advance_to_boundary(engine, until, on_epoch=on_epoch)

        active_factors: List[List[float]] = [[] for _ in self._scenarios]
        for when, entries in sorted(boundaries.items()):
            advance(when)
            for s, action in entries:
                scenario = self._scenarios[s]
                first = machine_offset[s]
                fleet = range(first, first + scenario.machines)
                if action.kind == "burst-open":
                    burst = _BurstState(
                        fault=action.fault,
                        end_seconds=action.window[1],
                        mixers={
                            machine: self._burst_mixer(
                                scenario, action.fault, machine - first
                            )
                            for machine in fleet
                        },
                        scenario_index=s,
                    )
                    for machine in fleet:
                        for _ in range(action.fault.count):
                            index = engine.submit(
                                burst.mixers[machine].next(), machine=machine
                            )
                            burst_of[index] = burst
                            fault_counters[s].count_burst_submit(action.fault.type)
                else:
                    if action.kind == "throttle-open":
                        active_factors[s].append(action.fault.factor)
                    else:
                        active_factors[s].remove(action.fault.factor)
                    engine.set_frequency_scale(
                        fleet, _throttle_scale(active_factors[s])
                    )
        advance(self._horizon)
        emit(done=True)

    # ------------------------------------------------------------------ #
    # Scalar backend: the fast-path engine, machine by machine
    # ------------------------------------------------------------------ #
    def _run_scalar(
        self, progress: Optional[ProgressCallback] = None
    ) -> List[ScenarioResult]:
        spec = self._machine
        results: List[ScenarioResult] = []
        epochs_per_machine = int(round(self._horizon / self._epoch_seconds))
        epochs_total = epochs_per_machine * sum(s.machines for s in self._scenarios)
        epochs_done = 0
        completions_total = 0
        submissions_total = 0
        ledgers: List[Optional[MeteringLedger]] = []
        all_counters: List[Optional[FaultCounters]] = []
        for scenario in self._scenarios:
            cores = scenario.cores(spec)
            submitted = 0
            completed = 0
            instructions = cycles = stall = l3 = 0.0
            boundaries = _fault_boundaries(scenario.faults, self._horizon)
            ledger = MeteringLedger() if self._scenario_metered(scenario) else None
            fault_counters = FaultCounters() if scenario.faults else None
            if fault_counters is not None:
                fault_counters.throttled_machine_epochs = (
                    self._nominal_throttled_epochs(scenario)
                )
            ledgers.append(ledger)
            all_counters.append(fault_counters)
            for machine in range(scenario.machines):
                mixer = self._make_mixer(scenario, machine)
                injector = (
                    None if ledger is None else self._meter_injector(scenario, machine)
                )
                engine = SimulationEngine(
                    CPU(spec),
                    LeastOccupancyScheduler(),
                    # No event log: the vector side keeps none, and a heavy
                    # churn horizon would otherwise grow it unboundedly and
                    # bias the recorded speedup in the vector's favour.
                    config=EngineConfig(
                        epoch_seconds=self._epoch_seconds, record_events=False
                    ),
                )
                counts = {"submitted": 0, "completed": 0}
                for thread in range(cores):
                    for _ in range(scenario.colocation):
                        engine.submit(mixer.next(), thread_id=thread)
                        counts["submitted"] += 1

                def on_finish(
                    invocation,
                    eng,
                    mixer=mixer,
                    counts=counts,
                    ledger=ledger,
                    injector=injector,
                ):
                    if invocation.role() == FAULT_ROLE:
                        return  # burst co-runner: its own driver resubmits
                    if ledger is not None:
                        ledger.observe(
                            invocation.spec.abbreviation,
                            invocation.spec.memory_gb,
                            invocation.occupied_seconds,
                            injector.copies() if injector is not None else 1,
                        )
                    counts["completed"] += 1
                    eng.submit(mixer.next(), thread_id=invocation.thread_id)
                    counts["submitted"] += 1

                engine.add_finish_listener(on_finish)
                if not boundaries:
                    engine.run_for(self._horizon)
                else:
                    bursts: List[Tuple[FaultSpec, WindowedBurst]] = []
                    active_factors: List[float] = []
                    for when, actions in boundaries:
                        delta = when - engine.time_seconds
                        if delta > 0:
                            engine.run_for(delta)
                        for action in actions:
                            if action.kind == "burst-open":
                                burst = WindowedBurst(
                                    self._burst_mixer(scenario, action.fault, machine),
                                    action.fault.count,
                                    action.window[1],
                                )
                                burst.attach(engine)
                                bursts.append((action.fault, burst))
                            else:
                                if action.kind == "throttle-open":
                                    active_factors.append(action.fault.factor)
                                else:
                                    active_factors.remove(action.fault.factor)
                                engine.set_frequency_scale(
                                    _throttle_scale(active_factors)
                                )
                    delta = self._horizon - engine.time_seconds
                    if delta > 0:
                        engine.run_for(delta)
                    for fault, burst in bursts:
                        fault_counters.count_burst_submit(
                            fault.type, burst.launched_count
                        )
                        fault_counters.count_burst_finish(
                            fault.type, burst.completed_count
                        )
                submitted += counts["submitted"]
                completed += counts["completed"]
                counters = engine.cpu.global_counters
                instructions += counters.instructions
                cycles += counters.cycles
                stall += counters.stall_cycles_l2_miss
                l3 += counters.l3_misses
                epochs_done += epochs_per_machine
                if progress is not None:
                    progress(
                        self._progress_payload(
                            "scalar",
                            scenarios_done=len(results),
                            epochs_done=epochs_done,
                            epochs_total=epochs_total,
                            completions=completions_total + completed,
                            submissions=submissions_total + submitted,
                            counters=all_counters,
                            ledgers=ledgers,
                        )
                    )
            completions_total += completed
            submissions_total += submitted
            self._fill_meter_counts(fault_counters, ledger)
            results.append(
                ScenarioResult(
                    name=scenario.name,
                    backend="scalar",
                    fleet_size=scenario.fleet_size(spec),
                    machines=scenario.machines,
                    colocation=scenario.colocation,
                    submitted=submitted,
                    completed=completed,
                    simulated_seconds=self._horizon,
                    instructions=instructions,
                    cycles=cycles,
                    stall_cycles=stall,
                    l3_misses=l3,
                    billing=None if ledger is None else ledger.freeze(),
                    fault_stats=(
                        None if fault_counters is None else fault_counters.freeze()
                    ),
                )
            )
        if progress is not None:
            progress(
                self._progress_payload(
                    "scalar",
                    scenarios_done=len(results),
                    epochs_done=epochs_done,
                    epochs_total=epochs_total,
                    completions=completions_total,
                    submissions=submissions_total,
                    counters=all_counters,
                    ledgers=ledgers,
                    done=True,
                )
            )
        return results
