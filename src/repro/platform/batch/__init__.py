"""Batched (vectorized) fleet-simulation backend.

:class:`VectorEngine` advances an entire fleet of machines and invocations
per epoch with NumPy array operations; :class:`FleetSweep` simulates a grid
of scenarios (traffic mixes × machine counts × co-location levels) in one
batched run.  The scalar :mod:`repro.platform.engine` remains the bit-exact
reference backend for the committed figures.
"""

from repro.platform.batch.vector_engine import (
    VectorEngine,
    VectorEngineConfig,
    VectorEngineStats,
)
from repro.platform.batch.sweep import (
    FleetScenario,
    FleetSweep,
    FleetSweepResult,
    ScenarioResult,
    scenario_grid,
)

__all__ = [
    "VectorEngine",
    "VectorEngineConfig",
    "VectorEngineStats",
    "FleetScenario",
    "FleetSweep",
    "FleetSweepResult",
    "ScenarioResult",
    "scenario_grid",
]
