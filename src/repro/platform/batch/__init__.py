"""Batched (vectorized) fleet-simulation backend.

:class:`VectorEngine` advances an entire fleet of machines and invocations
per epoch with NumPy array operations; :class:`FleetSweep` simulates a grid
of scenarios (traffic mixes × machine counts × co-location levels) in one
batched run, and :func:`run_sharded` partitions such a grid across worker
processes — one fleet per shard, deterministic seeds, results merged
identical to the single-process run.  The scalar
:mod:`repro.platform.engine` remains the bit-exact reference backend for
the committed figures.

Scenario grids are usually *compiled*, not hand-built: declarative TOML or
JSON scenario specs live in :mod:`repro.scenarios` and turn into the
:class:`FleetScenario` lists these classes consume.  See
``docs/backends.md`` for how the two backends relate and
``docs/scenarios.md`` for the spec format.
"""

from repro.platform.batch.vector_engine import (
    VectorEngine,
    VectorEngineConfig,
    VectorEngineStats,
)
from repro.platform.batch.sweep import (
    FleetScenario,
    advance_to_boundary,
    FleetSweep,
    FleetSweepResult,
    NAMED_MIXES,
    ScenarioResult,
    resolve_mix,
    scenario_grid,
)
from repro.platform.batch.shard import (
    ShardTiming,
    ShardedSweepResult,
    partition_scenarios,
    run_sharded,
)
from repro.platform.faults import (
    FAULT_TYPES,
    FaultSpec,
    FaultStats,
    faults_for_scenario,
)
from repro.platform.metering import (
    MeterFaultInjector,
    MeteringLedger,
    TenantBilling,
)

__all__ = [
    "VectorEngine",
    "VectorEngineConfig",
    "VectorEngineStats",
    "FleetScenario",
    "advance_to_boundary",
    "FleetSweep",
    "FleetSweepResult",
    "NAMED_MIXES",
    "ScenarioResult",
    "resolve_mix",
    "scenario_grid",
    "ShardTiming",
    "ShardedSweepResult",
    "partition_scenarios",
    "run_sharded",
    "FAULT_TYPES",
    "FaultSpec",
    "FaultStats",
    "faults_for_scenario",
    "MeterFaultInjector",
    "MeteringLedger",
    "TenantBilling",
]
