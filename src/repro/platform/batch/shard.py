"""Sharded multi-process execution of fleet-scenario grids.

A :class:`repro.platform.batch.FleetSweep` advances its whole grid inside
one process.  That is the fastest shape for a single NumPy-vectorized fleet,
but a *grid* of scenarios is embarrassingly parallel across scenarios: every
machine's churn stream is seeded by the scenario's own seed plus the
machine's index within its scenario, so no scenario's numbers depend on
which other scenarios share the engine.  :func:`run_sharded` exploits that —
it partitions a compiled grid into shards, runs one fleet (one
``VectorEngine`` or one scalar loop) per shard on a
:class:`~concurrent.futures.ProcessPoolExecutor`, and merges the per-shard
results back into the original scenario order.

Guarantees:

* **Determinism** — partitioning is a pure function of the scenario list
  and the shard count (greedy largest-fleet-first into the least-loaded
  shard), and per-machine seeds never depend on shard membership.
* **Merge identity** — each scenario's ``completed``/``submitted`` counts
  and hardware counters are bit-exact against the same scenario in a
  single-process :meth:`FleetSweep.run` (asserted by
  ``tests/test_pf_shard_executor.py``); only wall-clock fields differ.
* **Inline fallback** — one effective shard short-circuits to an in-process
  :meth:`FleetSweep.run`, so ``--shards 1`` *is* the single-process run.

The CLI (``python -m repro sweep --spec … --shards N``) records the
per-shard and aggregate wall-clock of every sharded run in
``BENCH_engine.json``; see :mod:`repro.benchlog`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.hardware.topology import CASCADE_LAKE_5218, MachineSpec
from repro.obs.metrics import MetricsEmitter
from repro.obs.trace import SpanContext, Tracer
from repro.platform.batch.sweep import (
    FleetScenario,
    FleetSweep,
    FleetSweepResult,
    ProgressCallback,
    ScenarioResult,
)
from repro.workloads.registry import FunctionRegistry


@dataclass(frozen=True)
class ShardTiming:
    """Wall-clock and contents of one shard of a sharded sweep."""

    shard: int
    scenario_names: Tuple[str, ...]
    fleet_size: int
    wall_seconds: float


@dataclass(frozen=True)
class ShardedSweepResult:
    """A merged sharded run: the combined result plus per-shard timings.

    ``result`` holds the scenario results in the original grid order with
    ``wall_seconds`` set to the *aggregate* wall-clock of the whole sharded
    run (pool setup and merge included), which is the number comparable to a
    single-process :meth:`FleetSweep.run`.  ``shard_timings`` break the same
    run down per worker.
    """

    result: FleetSweepResult
    shard_timings: Tuple[ShardTiming, ...]

    @property
    def shards(self) -> int:
        return len(self.shard_timings)

    @property
    def wall_seconds(self) -> float:
        return self.result.wall_seconds

    @property
    def completed(self) -> int:
        return self.result.completed

    def render(self) -> str:
        """The underlying sweep table plus one timing line per shard."""
        lines = [self.result.render()]
        if self.shards > 1:
            for timing in self.shard_timings:
                lines.append(
                    f"  shard {timing.shard}: {len(timing.scenario_names)} "
                    f"scenario(s), fleet {timing.fleet_size}, "
                    f"{timing.wall_seconds:.2f}s"
                )
        return "\n".join(lines)


def partition_scenarios(
    scenarios: Sequence[FleetScenario],
    shards: int,
    *,
    machine: MachineSpec = CASCADE_LAKE_5218,
) -> List[List[int]]:
    """Deterministically partition scenario indices into balanced shards.

    Greedy longest-processing-time heuristic: scenarios are considered
    largest fleet first (ties broken by grid position) and each goes to the
    currently least-loaded shard (ties broken by shard index).  Empty shards
    are dropped, so asking for more shards than scenarios just yields one
    scenario per shard.  Pure function of its inputs — the same grid and
    shard count always produce the same partition.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if not scenarios:
        raise ValueError("at least one scenario is required")
    shards = min(shards, len(scenarios))
    order = sorted(
        range(len(scenarios)),
        key=lambda i: (-scenarios[i].fleet_size(machine), i),
    )
    loads = [0] * shards
    parts: List[List[int]] = [[] for _ in range(shards)]
    for index in order:
        target = min(range(shards), key=lambda s: (loads[s], s))
        parts[target].append(index)
        loads[target] += scenarios[index].fleet_size(machine)
    # Keep each shard's scenarios in grid order; drop impossible empties.
    return [sorted(part) for part in parts if part]


@dataclass(frozen=True)
class _ShardJob:
    """Everything one worker process needs to simulate its shard."""

    shard: int
    scenarios: Tuple[FleetScenario, ...]
    machine: MachineSpec
    horizon_seconds: float
    epoch_seconds: float
    registry_scale: float
    backend: str
    #: Optional custom registry (specs are frozen dataclasses: picklable).
    registry: Optional[FunctionRegistry] = None
    #: Meter every scenario (not just fault-carrying ones).
    meter: bool = False
    #: Manager queue proxy for live metrics; None disables emission.
    metrics_queue: Optional[Any] = None
    metrics_interval: float = 0.5
    metrics_label: str = ""
    #: Parent trace handle; workers open their shard span under it and
    #: push finished spans onto ``metrics_queue`` (see repro.obs.trace).
    trace: Optional[SpanContext] = None
    #: Per-epoch series point budget; None disables series sampling.
    series_budget: Optional[int] = None


def _shard_progress(job: _ShardJob) -> Optional[ProgressCallback]:
    if job.metrics_queue is None:
        return None
    return MetricsEmitter(
        job.metrics_queue,
        shard=job.shard,
        label=job.metrics_label,
        min_interval_seconds=job.metrics_interval,
        series_budget=job.series_budget,
    )


def _run_shard(job: _ShardJob) -> Tuple[int, FleetSweepResult]:
    """Worker entry point: one fleet per shard (module-level: picklable).

    With a trace context attached, the worker builds its own tracer on
    the inherited trace ID, wraps the whole shard in one span parented on
    the parent's sweep span, and ships it back over the metrics queue —
    so the parent's collector files every process into one span tree.
    The shard span is closed ``root=True``: it carries this worker's
    ``obs_overhead_seconds``, which the parent folds into the run root.
    """
    sweep = FleetSweep(
        job.scenarios,
        machine=job.machine,
        horizon_seconds=job.horizon_seconds,
        epoch_seconds=job.epoch_seconds,
        registry=job.registry,
        registry_scale=job.registry_scale,
        meter=job.meter,
    )
    tracer = None
    span = None
    if job.trace is not None and job.metrics_queue is not None:
        queue = job.metrics_queue
        tracer = Tracer(trace_id=job.trace.trace_id, sink=queue.put)
        span = tracer.start(
            f"shard-{job.metrics_label}{job.shard}",
            parent=job.trace,
            tags={
                "phase": "shard",
                "shard": job.shard,
                "scenarios": len(job.scenarios),
                "backend": job.backend,
            },
        )
    try:
        result = sweep.run(job.backend, progress=_shard_progress(job))
    finally:
        if tracer is not None and span is not None:
            tracer.finish(span, root=True)
    return job.shard, result


def run_sharded(
    scenarios: Sequence[FleetScenario],
    *,
    shards: int = 1,
    backend: str = "vector",
    machine: MachineSpec = CASCADE_LAKE_5218,
    horizon_seconds: float = 2.0,
    epoch_seconds: float = 1e-3,
    registry_scale: float = 0.1,
    registry: Optional[FunctionRegistry] = None,
    max_workers: Optional[int] = None,
    meter: bool = False,
    metrics_queue: Optional[Any] = None,
    metrics_interval: float = 0.5,
    metrics_label: str = "",
    trace: Optional[SpanContext] = None,
    series_budget: Optional[int] = None,
) -> ShardedSweepResult:
    """Run a scenario grid partitioned across worker processes.

    The grid is split with :func:`partition_scenarios`; each shard becomes
    one :class:`FleetSweep` in its own process (``backend`` selects the
    vector or scalar engine inside every shard).  Results come back merged
    into the original scenario order, identical to the single-process run.

    ``registry`` replaces the default Table-1 registry in every worker
    (it is pickled into the shard jobs).  ``max_workers`` caps concurrent
    processes (default: the shard count, bounded by the CPU count);
    lowering it only queues shards, it cannot change any result.

    ``meter`` bills every scenario (fault-carrying scenarios always bill).
    ``metrics_queue`` — typically a ``multiprocessing.Manager().Queue()``
    proxy, which pickles into workers — turns on live progress snapshots:
    each shard emits :class:`~repro.obs.metrics.ProgressSnapshot` objects at
    most every ``metrics_interval`` seconds, tagged ``metrics_label + shard``
    (see :mod:`repro.obs`).  Metrics are read-only and cannot change any
    simulated number.

    ``trace`` — a picklable :class:`~repro.obs.trace.SpanContext` — makes
    every shard worker emit one ``phase=shard`` span (over the metrics
    queue) parented on the caller's span, so a sharded run still yields a
    single coherent trace tree.  ``series_budget`` turns on per-epoch
    :class:`~repro.obs.series.SeriesPoint` sampling inside each shard,
    ring-buffered to that many points.  Both are observability-only.
    """
    start = time.perf_counter()
    parts = partition_scenarios(scenarios, shards, machine=machine)
    if len(parts) == 1:
        sweep = FleetSweep(
            scenarios,
            machine=machine,
            horizon_seconds=horizon_seconds,
            epoch_seconds=epoch_seconds,
            registry=registry,
            registry_scale=registry_scale,
            meter=meter,
        )
        progress: Optional[ProgressCallback] = None
        if metrics_queue is not None:
            progress = MetricsEmitter(
                metrics_queue,
                shard=0,
                label=metrics_label,
                min_interval_seconds=metrics_interval,
                series_budget=series_budget,
            )
        tracer = span = None
        if trace is not None and metrics_queue is not None:
            tracer = Tracer(trace_id=trace.trace_id, sink=metrics_queue.put)
            span = tracer.start(
                f"shard-{metrics_label}0",
                parent=trace,
                tags={
                    "phase": "shard",
                    "shard": 0,
                    "scenarios": len(scenarios),
                    "backend": backend,
                },
            )
        try:
            result = sweep.run(backend, progress=progress)
        finally:
            if tracer is not None and span is not None:
                tracer.finish(span, root=True)
        timing = ShardTiming(
            shard=0,
            scenario_names=tuple(s.name for s in scenarios),
            fleet_size=sum(s.fleet_size(machine) for s in scenarios),
            wall_seconds=result.wall_seconds,
        )
        merged = FleetSweepResult(
            backend=backend,
            scenarios=result.scenarios,
            wall_seconds=time.perf_counter() - start,
            horizon_seconds=horizon_seconds,
        )
        return ShardedSweepResult(result=merged, shard_timings=(timing,))

    jobs = [
        _ShardJob(
            shard=shard,
            scenarios=tuple(scenarios[i] for i in part),
            machine=machine,
            horizon_seconds=horizon_seconds,
            epoch_seconds=epoch_seconds,
            registry_scale=registry_scale,
            backend=backend,
            registry=registry,
            meter=meter,
            metrics_queue=metrics_queue,
            metrics_interval=metrics_interval,
            metrics_label=metrics_label,
            trace=trace,
            series_budget=series_budget,
        )
        for shard, part in enumerate(parts)
    ]
    workers = max_workers or min(len(jobs), os.cpu_count() or len(jobs))
    shard_results: List[Optional[FleetSweepResult]] = [None] * len(jobs)
    with ProcessPoolExecutor(max_workers=max(workers, 1)) as pool:
        for shard, result in pool.map(_run_shard, jobs):
            shard_results[shard] = result

    by_index: List[Optional[ScenarioResult]] = [None] * len(scenarios)
    timings: List[ShardTiming] = []
    for shard, (part, result) in enumerate(zip(parts, shard_results)):
        assert result is not None
        for index, scenario_result in zip(part, result.scenarios):
            by_index[index] = scenario_result
        timings.append(
            ShardTiming(
                shard=shard,
                scenario_names=tuple(s.name for s in result.scenarios),
                fleet_size=result.fleet_size,
                wall_seconds=result.wall_seconds,
            )
        )
    merged = FleetSweepResult(
        backend=backend,
        scenarios=tuple(r for r in by_index if r is not None),
        wall_seconds=time.perf_counter() - start,
        horizon_seconds=horizon_seconds,
    )
    return ShardedSweepResult(result=merged, shard_timings=tuple(timings))
