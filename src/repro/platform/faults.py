"""Deterministic fault injection for fleet sweeps.

Real serverless fleets are not healthy: traffic spikes, noisy neighbors,
thermally throttled hosts, and lossy metering pipelines all perturb the
measurements Litmus prices from.  This module defines the *fault axis* a
scenario spec can declare (``[[faults]]`` tables, parsed by
:mod:`repro.scenarios.faults`) and the small value objects the sweep
engines use to apply and account for them.

Five fault types exist (:data:`FAULT_TYPES`):

``churn-spike``
    A windowed traffic surge: ``count`` extra invocations drawn from the
    scenario's own mix are kept alive on every machine for the window.
``noisy-neighbor``
    Like a spike, but the burst pool is a *different* mix — by default the
    memory-intensive subset, the worst co-runners for LLC contention.
``freq-throttle``
    Every machine of the scenario runs at ``factor`` × its governed
    frequency for the window (thermal capping / power braking).
``meter-drop`` / ``meter-dup``
    The metering pipeline loses (or double-delivers) each completion event
    with probability ``probability`` — billing noise, not engine noise.

Every fault is seeded: burst draws come from a mixer seeded by
``fault.seed`` plus the machine's index within its scenario, and metering
faults consume one per-machine ``random.Random`` stream per fault — so a
faulted sweep is exactly as deterministic and shard-invariant as a healthy
one.  Faults take effect at the first epoch boundary at or after their
window start; both backends segment time identically, so the schedule is
backend-consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterable, Optional, Tuple

#: Every declarable fault type, in documentation order.
FAULT_TYPES = (
    "churn-spike",
    "noisy-neighbor",
    "freq-throttle",
    "meter-drop",
    "meter-dup",
)

#: Faults that perturb the simulation itself (windowed).
ENGINE_FAULT_TYPES = ("churn-spike", "noisy-neighbor", "freq-throttle")

#: Faults that perturb only the metering/billing pipeline.
METER_FAULT_TYPES = ("meter-drop", "meter-dup")

#: Tag value stamped on burst invocations so steady churn ignores them.
FAULT_ROLE = "fault"


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault, matched against scenarios by name glob.

    Only the fields meaningful for ``type`` are consulted; the spec parser
    (:func:`repro.scenarios.faults.parse_faults`) rejects entries that set
    the others.  ``duration_seconds=None`` means "until the horizon".
    """

    type: str
    #: ``fnmatch``-style glob over scenario names (``*`` = every scenario).
    scenario: str = "*"
    start_seconds: float = 0.0
    duration_seconds: Optional[float] = None
    #: Extra invocations per machine (churn-spike / noisy-neighbor).
    count: int = 0
    #: Frequency multiplier in (0, 1] (freq-throttle).
    factor: float = 1.0
    #: Per-event probability in [0, 1] (meter-drop / meter-dup).
    probability: float = 0.0
    #: Burst pool for noisy-neighbor; empty = the memory-intensive mix.
    functions: Tuple[str, ...] = ()
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.type not in FAULT_TYPES:
            raise ValueError(
                f"unknown fault type {self.type!r}; valid choices: "
                f"{', '.join(FAULT_TYPES)}"
            )
        if self.start_seconds < 0:
            raise ValueError("start_seconds must be >= 0")
        if self.duration_seconds is not None and self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.type in ("churn-spike", "noisy-neighbor") and self.count < 1:
            raise ValueError(f"{self.type} requires count >= 1")
        if self.type == "freq-throttle" and not 0.0 < self.factor <= 1.0:
            raise ValueError("freq-throttle requires factor in (0, 1]")
        if self.type in METER_FAULT_TYPES and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"{self.type} requires probability in [0, 1]")

    @property
    def is_engine_fault(self) -> bool:
        return self.type in ENGINE_FAULT_TYPES

    @property
    def is_meter_fault(self) -> bool:
        return self.type in METER_FAULT_TYPES

    def window(self, horizon_seconds: float) -> Optional[Tuple[float, float]]:
        """The fault's active ``(start, end)`` clipped to the horizon.

        Returns ``None`` for meter faults (always on) and for windows that
        never open within the horizon.
        """
        if not self.is_engine_fault:
            return None
        if self.start_seconds >= horizon_seconds:
            return None
        end = (
            horizon_seconds
            if self.duration_seconds is None
            else self.start_seconds + self.duration_seconds
        )
        return self.start_seconds, min(end, horizon_seconds)

    def matches(self, scenario_name: str) -> bool:
        return fnmatchcase(scenario_name, self.scenario)


def faults_for_scenario(
    faults: Iterable[FaultSpec], scenario_name: str
) -> Tuple[FaultSpec, ...]:
    """The subset of ``faults`` whose glob matches ``scenario_name``."""
    return tuple(f for f in faults if f.matches(scenario_name))


@dataclass(frozen=True)
class FaultStats:
    """Per-scenario accounting of what the fault axis actually did."""

    #: churn-spike submissions / completions (burst invocations only).
    spike_submissions: int = 0
    spike_completions: int = 0
    #: noisy-neighbor submissions / completions.
    neighbor_submissions: int = 0
    neighbor_completions: int = 0
    #: machine-epochs spent under a frequency throttle.
    throttled_machine_epochs: int = 0
    #: metering events observed / dropped / duplicated.
    meter_events: int = 0
    meter_dropped: int = 0
    meter_duplicated: int = 0

    @property
    def injections(self) -> int:
        """Burst invocations injected on top of the steady workload."""
        return self.spike_submissions + self.neighbor_submissions

    @property
    def empty(self) -> bool:
        return self == FaultStats()


@dataclass
class FaultCounters:
    """Mutable accumulator behind :class:`FaultStats` (one per scenario)."""

    spike_submissions: int = 0
    spike_completions: int = 0
    neighbor_submissions: int = 0
    neighbor_completions: int = 0
    throttled_machine_epochs: int = 0
    meter_events: int = 0
    meter_dropped: int = 0
    meter_duplicated: int = 0

    def count_burst_submit(self, fault_type: str, n: int = 1) -> None:
        if fault_type == "churn-spike":
            self.spike_submissions += n
        else:
            self.neighbor_submissions += n

    def count_burst_finish(self, fault_type: str, n: int = 1) -> None:
        if fault_type == "churn-spike":
            self.spike_completions += n
        else:
            self.neighbor_completions += n

    def freeze(self) -> FaultStats:
        return FaultStats(
            spike_submissions=self.spike_submissions,
            spike_completions=self.spike_completions,
            neighbor_submissions=self.neighbor_submissions,
            neighbor_completions=self.neighbor_completions,
            throttled_machine_epochs=self.throttled_machine_epochs,
            meter_events=self.meter_events,
            meter_dropped=self.meter_dropped,
            meter_duplicated=self.meter_duplicated,
        )
