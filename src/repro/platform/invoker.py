"""Invocation lifecycle tracking.

An :class:`Invocation` is the platform's record of one function execution:
which spec is running, where it was placed, how far it has progressed, and —
crucially for Litmus — its private performance counters plus the snapshots
taken when its startup window (the Litmus-probe window) completed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.pmu import CounterSnapshot, PMUCounters
from repro.platform.sandbox import Sandbox
from repro.workloads.function import FunctionSpec, PhaseCursor


class InvocationState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass
class Invocation:
    """One in-flight or completed function execution."""

    invocation_id: int
    spec: FunctionSpec
    sandbox: Sandbox
    submit_time: float
    tags: Dict[str, str] = field(default_factory=dict)

    state: InvocationState = InvocationState.PENDING
    thread_id: Optional[int] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None

    cursor: PhaseCursor = field(init=False)
    counters: PMUCounters = field(init=False)

    # Litmus-probe window (startup) measurements, filled by the engine when
    # the last STARTUP phase retires.
    startup_end_time: Optional[float] = None
    startup_counters: Optional[CounterSnapshot] = None
    machine_counters_at_start: Optional[CounterSnapshot] = None
    machine_counters_at_startup_end: Optional[CounterSnapshot] = None

    # Average number of invocations sharing this invocation's hardware
    # thread while it ran (used by Method 1's switching-overhead calibration).
    _occupancy_weighted_sum: float = 0.0
    _occupancy_weight: float = 0.0

    def __post_init__(self) -> None:
        self.cursor = PhaseCursor(self.spec)
        self.counters = PMUCounters()

    # ------------------------------------------------------------------ #
    # State transitions (driven by the engine)
    # ------------------------------------------------------------------ #
    def mark_started(self, thread_id: int, time_seconds: float) -> None:
        if self.state is not InvocationState.PENDING:
            raise ValueError(
                f"invocation {self.invocation_id} cannot start from {self.state}"
            )
        self.state = InvocationState.RUNNING
        self.thread_id = thread_id
        self.start_time = time_seconds

    def mark_finished(self, time_seconds: float) -> None:
        if self.state is not InvocationState.RUNNING:
            raise ValueError(
                f"invocation {self.invocation_id} cannot finish from {self.state}"
            )
        self.state = InvocationState.COMPLETED
        self.finish_time = time_seconds

    def record_startup_completion(
        self,
        time_seconds: float,
        machine_counters_at_startup_end: CounterSnapshot,
    ) -> None:
        """Capture the probe-window snapshots once startup has retired."""
        if self.startup_counters is not None:
            raise ValueError(
                f"startup already recorded for invocation {self.invocation_id}"
            )
        self.startup_end_time = time_seconds
        self.startup_counters = self.counters.snapshot()
        self.machine_counters_at_startup_end = machine_counters_at_startup_end

    def observe_occupancy(self, occupancy: int, weight_seconds: float) -> None:
        """Accumulate the occupancy of the hosting thread over time."""
        if occupancy < 1:
            raise ValueError("occupancy must be >= 1 while running")
        if weight_seconds < 0:
            raise ValueError("weight_seconds must be >= 0")
        self._occupancy_weighted_sum += occupancy * weight_seconds
        self._occupancy_weight += weight_seconds

    def span_observe_occupancy(
        self, occupancy: int, weight_seconds: float, epochs: int
    ) -> None:
        """Replay ``epochs`` sequential :meth:`observe_occupancy` calls.

        Used by the engine's skip-ahead path; performs the same float
        additions one by one so the accumulated values match the
        epoch-by-epoch path bit for bit.
        """
        increment = occupancy * weight_seconds
        weighted = self._occupancy_weighted_sum
        weight = self._occupancy_weight
        for _ in range(epochs):
            weighted += increment
            weight += weight_seconds
        self._occupancy_weighted_sum = weighted
        self._occupancy_weight = weight

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def is_running(self) -> bool:
        return self.state is InvocationState.RUNNING

    @property
    def is_completed(self) -> bool:
        return self.state is InvocationState.COMPLETED

    @property
    def is_traffic_generator(self) -> bool:
        return self.spec.is_traffic_generator

    @property
    def startup_recorded(self) -> bool:
        return self.startup_counters is not None

    @property
    def mean_thread_occupancy(self) -> float:
        """Average number of functions sharing the thread while this ran."""
        if self._occupancy_weight <= 0:
            return 1.0
        return self._occupancy_weighted_sum / self._occupancy_weight

    @property
    def wall_time_seconds(self) -> Optional[float]:
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def occupied_seconds(self) -> float:
        """CPU time the invocation actually occupied (its billed time)."""
        return self.counters.elapsed_seconds

    def role(self) -> str:
        """The experiment role this invocation plays (test / churn / ...)."""
        return self.tags.get("role", "unspecified")
