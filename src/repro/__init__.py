"""repro: a reproduction of "Litmus: Fair Pricing for Serverless Computing".

The package is organised in layers, bottom-up:

``repro.hardware``
    An analytic multicore substrate: machine topologies, shared-resource
    contention models (L3 capacity, ring/uncore bandwidth, memory bandwidth),
    SMT and frequency effects, and performance-counter bookkeeping.

``repro.workloads``
    Phase-based synthetic serverless functions (the 27 benchmarks of the
    paper's Table 1), per-language runtime startup models, and the CT-Gen /
    MB-Gen traffic generators used to calibrate congestion.

``repro.platform``
    A serverless platform substrate: sandboxes, invoker, schedulers
    (dedicated cores, temporal sharing, SMT), co-runner churn and a
    Perf-like metering session, all driven by an epoch-based engine.

``repro.core``
    The paper's contribution: the Litmus test probe, congestion and
    performance tables, regression + logarithmic interpolation models, the
    split private/shared pricing equation, and the Method 1 / Method 2
    adaptations for temporal sharing, plus ideal / commercial / POPPA
    baselines.

``repro.scenarios``
    Declarative scenario specs: TOML/JSON files (schema-validated, with
    named presets shipped in the package) that expand into scenario grids
    and compile into fleet sweeps for the batched backend, optionally
    sharded across worker processes.

``repro.analysis`` and ``repro.experiments``
    Statistics helpers, error metrics and one module per paper figure/table
    that regenerates the corresponding result.
"""

from repro._version import __version__

__all__ = ["__version__"]
