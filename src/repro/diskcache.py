"""Versioned on-disk cache for expensive, deterministic artefacts.

Calibration sweeps and solo profiles are the most expensive parts of a
figure run, and they are pure functions of the machine topology, the
workload registry and the engine configuration.  This module gives them a
process-independent cache so that a full figure sweep — whether sequential
or fanned out over worker processes — computes each artefact exactly once
and every later sweep starts warm.

Layout and guarantees:

* Entries live under ``$REPRO_CACHE_DIR`` (default
  ``~/.cache/repro-litmus``) as ``<kind>-<key>.json``, where ``key`` is a
  SHA-256 fingerprint of everything the artefact depends on (CPU topology,
  registry contents, scenario, engine config, ...).
* Every file embeds :data:`CACHE_VERSION`.  Bumping the version — done
  whenever the simulation's numerical behaviour changes — invalidates all
  old entries on load; they are simply recomputed and rewritten.
* Floats survive the JSON round trip exactly (``repr``-based encoding), so
  a figure regenerated from a cached artefact is byte-identical to one
  computed cold.
* Writes go through a temporary file plus :func:`os.replace`, so
  concurrent worker processes can race on the same entry safely — one of
  them wins, all of them read back identical data.

Set ``REPRO_DISK_CACHE=0`` to disable the cache entirely (every lookup
misses, nothing is written), which the determinism checks use to compare
cold and warm runs.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

#: Bump when simulation semantics change so stale artefacts cannot leak
#: into freshly generated figures.
CACHE_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLED = "REPRO_DISK_CACHE"


def cache_enabled() -> bool:
    """Whether the on-disk cache is active (``REPRO_DISK_CACHE=0`` disables)."""
    return os.environ.get(_ENV_ENABLED, "1") not in ("0", "false", "no", "off")


def cache_dir() -> Path:
    """The cache directory (not created until something is stored)."""
    override = os.environ.get(_ENV_DIR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-litmus"


def canonical(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable primitives, deterministically.

    Dataclasses become field dicts, enums their values, mappings get their
    keys stringified, and sets/tuples become sorted/ordered lists — enough
    to fingerprint machine specs, scenarios, registries and configs.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return canonical(value.value)
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonical(item) for item in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def fingerprint(*parts: Any) -> str:
    """SHA-256 fingerprint of the canonical JSON encoding of ``parts``."""
    blob = json.dumps([canonical(part) for part in parts], sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def _entry_path(kind: str, key: str) -> Path:
    return cache_dir() / f"{kind}-{key}.json"


def atomic_write_text(path: Path, text: str, *, prefix: str = ".atomic-") -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Concurrent writers can race on the same path safely: readers only ever
    observe a complete old or complete new file, never a torn one.  Used by
    the cache entries here and by the ``BENCH_engine.json`` trajectory,
    both of which parallel figure workers write concurrently.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w",
        encoding="utf-8",
        dir=path.parent,
        prefix=prefix,
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
        os.replace(handle.name, path)
    except OSError:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def load(kind: str, key: str) -> Optional[Dict[str, Any]]:
    """Return a stored payload, or ``None`` on miss/corruption/version skew."""
    if not cache_enabled():
        return None
    path = _entry_path(kind, key)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or document.get("cache_version") != CACHE_VERSION:
        return None
    payload = document.get("payload")
    return payload if isinstance(payload, dict) else None


def store(kind: str, key: str, payload: Dict[str, Any]) -> Optional[Path]:
    """Atomically persist ``payload``; returns the path (None when disabled)."""
    if not cache_enabled():
        return None
    path = _entry_path(kind, key)
    document = {"cache_version": CACHE_VERSION, "kind": kind, "payload": payload}
    try:
        return atomic_write_text(
            path, json.dumps(document, sort_keys=True), prefix=f".{kind}-"
        )
    except OSError:
        return None


def registry_fingerprint(specs: Iterable[Any]) -> str:
    """Fingerprint a registry's full contents (phases included).

    Unlike the in-memory cache key — which only needs to separate registries
    within one process — the on-disk key must capture everything that feeds
    the simulation, so the whole spec (language, memory, startup scale and
    each phase's profile) goes into the hash.
    """
    return fingerprint(
        sorted(
            (canonical(spec) for spec in specs),
            key=lambda entry: entry["abbreviation"],
        )
    )
