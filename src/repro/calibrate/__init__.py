"""Drift-aware continuous calibration of the contention model.

The paper calibrates its coefficients once against the testbed
(Section 6); this package keeps that fit honest over time.  It bundles:

* :mod:`repro.calibrate.profile` — hardware profiles as data
  (machine topology + contention coefficients), dot-path parameter
  addressing, and the shipped alternate platforms
  (``sg2042-like``, ``icelake-like``).
* :mod:`repro.calibrate.drift` — mid-run hardware drift, segmented with
  the fault machinery so both engine backends flip coefficients at the
  same epoch.
* :mod:`repro.calibrate.measure` — the "measured" stream: per-epoch
  cumulative shared-stall fractions from a steady-churn co-location
  window, scalar engine as ground truth.
* :mod:`repro.calibrate.service` — the loop: sliding-window MAPE drift
  detection, parallel linspace grid search, atomic republish through the
  versioned diskcache.

See docs/calibration.md for the cookbook.
"""

from repro.calibrate.drift import DriftEvent, DriftInjector, no_drift
from repro.calibrate.measure import MEASURE_BACKENDS, MeasureConfig, measure_series
from repro.calibrate.profile import (
    PROFILE_DIR,
    HardwareProfile,
    ProfileError,
    default_profile,
    get_param,
    list_profiles,
    load_profile,
    numeric_paths,
    perturbed,
    profile_by_name,
    set_param,
)
from repro.calibrate.service import (
    PUBLISH_KIND,
    CalibrationConfig,
    CandidateScore,
    ContinuousCalibrator,
    RoundResult,
    best_candidate,
    calibrate_once,
    fit_key,
    fitted_profile,
    grid_search,
    linspace,
    load_fit,
    publish_fit,
)

__all__ = [
    "MEASURE_BACKENDS",
    "PROFILE_DIR",
    "PUBLISH_KIND",
    "CalibrationConfig",
    "CandidateScore",
    "ContinuousCalibrator",
    "DriftEvent",
    "DriftInjector",
    "HardwareProfile",
    "MeasureConfig",
    "ProfileError",
    "RoundResult",
    "best_candidate",
    "calibrate_once",
    "default_profile",
    "fit_key",
    "fitted_profile",
    "get_param",
    "grid_search",
    "linspace",
    "list_profiles",
    "load_fit",
    "load_profile",
    "measure_series",
    "no_drift",
    "numeric_paths",
    "perturbed",
    "profile_by_name",
    "publish_fit",
    "set_param",
]
